"""Table 3 — main performance comparison.

Trains every implemented method on each simulated dataset and reports
MAE / RMSE / MAPE at horizons 3, 6 and 12, alongside the paper's reference
numbers.  The validated *shape* properties:

* deep spatial-temporal models beat the statistical baselines (HA/VAR/SVR);
* D2STGNN places at or near the top on every dataset;
* error grows with horizon for every method.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    DATASETS,
    get_data,
    print_metric_table,
    save_results,
    train_and_evaluate,
)
from benchmarks.paper_reference import TABLE3

METHODS = (
    "HA",
    "VAR",
    "SVR",
    "FC-LSTM",
    "DCRNN",
    "STGCN",
    "GraphWaveNet",
    "ASTGCN",
    "STSGCN",
    "GMAN",
    "MTGNN",
    "DGCRN",
    "D2STGNN",
)

STATISTICAL = ("HA", "VAR", "SVR")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table3_performance(benchmark, dataset_name):
    data = get_data(dataset_name)

    def run():
        return {name: train_and_evaluate(name, data, seed=0) for name in METHODS}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print_metric_table(f"Table 3 ({dataset_name}): measured", reports)
    reference = TABLE3[dataset_name]
    print(f"--- paper reference MAE (H3/H6/H12) ---")
    for name in METHODS:
        r = reference[name]
        print(f"{name:<14} {r['3'][0]:6.2f} {r['6'][0]:6.2f} {r['12'][0]:6.2f}")

    avg = {name: reports[name]["avg"]["mae"] for name in METHODS}

    # Shape checks (see module docstring).
    best_statistical = min(avg[name] for name in STATISTICAL)
    best_deep = min(avg[name] for name in METHODS if name not in STATISTICAL)
    assert best_deep < best_statistical, "deep ST models must beat statistical baselines"

    ranked = sorted(avg, key=avg.get)
    assert "D2STGNN" in ranked[:4], f"D2STGNN must be near the top, got ranking {ranked}"

    for name in METHODS:
        assert reports[name]["3"]["mae"] <= reports[name]["12"]["mae"] * 1.1, (
            f"{name}: error should grow with horizon"
        )

    save_results(f"table3_{dataset_name}", reports)
