"""Table 4 — decoupled vs coupled spatial-temporal framework.

All dynamic-graph machinery is removed for a fair comparison (the paper's
setup): GraphWaveNet, DGCRN† (static graph), D2STGNN‡ (coupled: no gate, no
residual decomposition) and D2STGNN† (decoupled, static graph).  The claim
under test: D2STGNN† beats D2STGNN‡, i.e. the decoupling framework itself —
not the primary models — carries the improvement.
"""

from __future__ import annotations

import pytest

from benchmarks.common import DATASETS, get_data, print_metric_table, save_results, train_and_evaluate
from benchmarks.paper_reference import TABLE4_METR_LA_MAE

# "+" = † (static graph), "#" = ‡ (coupled) — ASCII-safe aliases.
VARIANTS = ("GraphWaveNet", "DGCRN+", "D2STGNN#", "D2STGNN+")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table4_decoupled_vs_coupled(benchmark, dataset_name):
    data = get_data(dataset_name)

    def run():
        return {name: train_and_evaluate(name, data, seed=0) for name in VARIANTS}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print_metric_table(f"Table 4 ({dataset_name}): measured", reports)
    if dataset_name == "metr-la-sim":
        print("--- paper reference MAE (METR-LA, H3/H6/H12) ---")
        for name in VARIANTS:
            r = TABLE4_METR_LA_MAE[name]
            print(f"{name:<14} {r['3']:6.2f} {r['6']:6.2f} {r['12']:6.2f}")

    avg = {name: reports[name]["avg"]["mae"] for name in VARIANTS}
    # The headline claim: decoupled D2STGNN† beats coupled D2STGNN‡.
    assert avg["D2STGNN+"] < avg["D2STGNN#"], (
        f"decoupled variant must beat the coupled one: {avg}"
    )
    # And the decoupled variant is competitive with the best of the four
    # (at reduced scale the seq2seq baselines occasionally edge it out on a
    # single dataset; the paper-scale claim is strict dominance).
    assert avg["D2STGNN+"] <= min(avg.values()) * 1.3, avg

    save_results(f"table4_{dataset_name}", reports)
