"""Figure 8 — prediction visualisation on two nodes of METR-LA.

Trains D2STGNN, renders prediction-vs-ground-truth for two sensors over a
test stretch (ASCII sparklines in lieu of matplotlib), and reproduces the
figure's robustness observation: when a sensor fails (records zeros), the
model "does not forcefully fit these noises" — its prediction stays at a
plausible traffic level instead of chasing the zeros.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import d2stgnn_config, get_data, save_results, train_and_evaluate
from repro.core import D2STGNN
from repro.data import SimulationConfig, build_forecasting_data, load_dataset
from repro.data.datasets import TrafficDataset
from repro.data.simulator import simulate_traffic
from repro.graph import gaussian_kernel_adjacency, generate_road_network, shortest_path_distances
from repro.training import predict_split
from repro.utils import sparkline
from repro.utils.seed import set_seed


def _dataset_with_outage(num_nodes: int, num_steps: int):
    """METR-LA-style dataset with a guaranteed sensor outage in the test span."""
    rng = np.random.default_rng(101)
    network = generate_road_network(num_nodes, rng)
    series = simulate_traffic(
        network, num_steps, kind="speed",
        config=SimulationConfig(failure_rate=0.0), rng=rng,
    )
    # Inject a hard outage on node 0 inside the test portion (last 20%).
    start = int(num_steps * 0.85)
    stop = start + 24  # two hours of zeros
    series.values[start:stop, 0] = 0.0
    series.failure_mask[start:stop, 0] = True
    adjacency = gaussian_kernel_adjacency(shortest_path_distances(network.distances))
    from repro.data.datasets import PRESETS

    dataset = TrafficDataset(
        spec=PRESETS["metr-la-sim"].scaled(num_nodes=num_nodes, num_steps=num_steps),
        series=series, network=network, adjacency=adjacency,
    )
    return build_forecasting_data(dataset), (start, stop)


def test_fig8_prediction_visualization(benchmark):
    base = get_data("metr-la-sim")
    num_nodes = base.dataset.num_nodes
    data, (fail_start, fail_stop) = _dataset_with_outage(
        num_nodes, base.dataset.num_steps
    )

    def run():
        set_seed(0)
        model = D2STGNN(d2stgnn_config(data), data.adjacency)
        train_and_evaluate("D2STGNN-fig8", data, seed=0, model=model)
        prediction, target = predict_split(model, data, split="test")
        return model, prediction, target

    model, prediction, target = benchmark.pedantic(run, rounds=1, iterations=1)

    # Stitch horizon-1 predictions into a continuous test series per node.
    horizon1_pred = prediction[:, 0, :, 0]  # (num_test_windows, N)
    horizon1_true = target[:, 0, :, 0]

    nodes = [1, num_nodes - 1]  # two sensors with different peak patterns
    stretch = slice(0, min(288, horizon1_pred.shape[0]))
    print("\n=== Figure 8: prediction vs ground truth (horizon 1) ===")
    for node in nodes:
        print(f"node {node:>3} true: {sparkline(horizon1_true[stretch, node])}")
        print(f"node {node:>3} pred: {sparkline(horizon1_pred[stretch, node])}")

    # Quantitative agreement on healthy sensors.
    healthy = horizon1_true[:, 1] > 0
    mae_node1 = np.abs(horizon1_pred[healthy, 1] - horizon1_true[healthy, 1]).mean()
    print(f"node 1 horizon-1 MAE: {mae_node1:.3f}")
    assert mae_node1 < 10.0

    # Robustness to the injected outage (the paper's June-13 anecdote):
    # windows whose *target* falls inside the outage have a zero ground
    # truth, but the model must keep predicting plausible traffic.
    test_target_zero = horizon1_true[:, 0] == 0.0
    if test_target_zero.any():
        during = horizon1_pred[test_target_zero, 0]
        print(f"outage: mean prediction while sensor reads 0: {during.mean():.1f} mph")
        assert during.mean() > 15.0, "model should not chase the outage to zero"

    save_results(
        "fig8_visualization",
        {
            "node1_h1_mae": float(mae_node1),
            "outage_windows": int(test_target_zero.sum()),
            "outage_mean_prediction": float(
                horizon1_pred[test_target_zero, 0].mean()
            ) if test_target_zero.any() else None,
        },
    )
