"""Design-choice ablation: per-window vs per-step dynamic graphs.

Sec. 5.3 of the paper notes that "the calculation of the adjacency matrix
is expensive, so to reduce the computational cost, we assume that given a
limited time range T_h, P^dy is static".  This bench measures what that
approximation actually trades: it trains D2STGNN with

* the paper's approximation (one dynamic graph per window),
* the exact formulation (one dynamic graph per time step), and
* no dynamic graph at all (D2STGNN†),

and reports accuracy and per-epoch cost for each.  Expected shape: the
per-window approximation retains (nearly) all of the accuracy of the exact
version at a fraction of its cost — which is why the paper adopts it.
"""

from __future__ import annotations

import pytest

from benchmarks.common import d2stgnn_config, get_data, print_metric_table, save_results, train_and_evaluate
from repro.core import D2STGNN

VARIANTS = {
    "per-window (paper)": dict(use_dynamic_graph=True, dynamic_graph_per_step=False),
    "per-step (exact)": dict(use_dynamic_graph=True, dynamic_graph_per_step=True),
    "static (wo dg)": dict(use_dynamic_graph=False),
}


def test_ablation_dynamic_graph_granularity(benchmark):
    data = get_data("metr-la-sim")

    def run():
        reports = {}
        for name, overrides in VARIANTS.items():
            model = D2STGNN(d2stgnn_config(data, **overrides), data.adjacency)
            reports[name] = train_and_evaluate(name, data, seed=0, model=model)
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print_metric_table("Dynamic-graph granularity ablation (metr-la-sim)", reports)
    print(f"\n{'variant':<20} {'avg MAE':>8} {'s/epoch':>8}")
    for name, report in reports.items():
        print(f"{name:<20} {report['avg']['mae']:>8.3f} {report['epoch_seconds']:>8.2f}")

    # The paper's approximation should not be dramatically less accurate
    # than the exact per-step graphs...
    approx = reports["per-window (paper)"]["avg"]["mae"]
    exact = reports["per-step (exact)"]["avg"]["mae"]
    assert approx < exact * 1.3, (approx, exact)
    # ...and must be cheaper to train.
    assert (
        reports["per-window (paper)"]["epoch_seconds"]
        < reports["per-step (exact)"]["epoch_seconds"]
    )

    save_results(
        "ablation_dynamic_graph",
        {
            name: {"avg_mae": report["avg"]["mae"], "epoch_seconds": report["epoch_seconds"]}
            for name, report in reports.items()
        },
    )
