"""Serving throughput — the regression gate for the micro-batching engine.

Measures the one claim the serving subsystem stands on: coalescing requests
into a batched forward beats serving them one at a time.  Sixteen distinct
request windows from the metr-la-sim tail are served twice through the same
:class:`~repro.serve.MicroBatcher` — sequentially (sixteen batch-1 forwards)
and coalesced (one batch-16 forward) — and the coalesced leg must be at
least 3x faster *and* bit-identical per request (a batched numpy matmul
against 2-D weights is the same per-sample GEMMs stacked, so batching is
exact, not approximate).

A full-stack replay through :class:`~repro.serve.ServingEngine` then
records end-to-end latency percentiles, cache hit counters and a forced
outage-degradation, landing in ``benchmarks/results/serve.json`` and the
tracked repo-root ``BENCH_serve.json``.  The CLI equivalent for one-off
runs is ``repro serve``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from benchmarks.common import get_data, profile, save_results
from repro.models import build_model
from repro.serve import (
    ForecastRequest,
    MicroBatcher,
    ModelRegistry,
    ServeConfig,
    ServingEngine,
    SlidingWindowStore,
    make_servable,
    replay_split,
)
from repro.utils.seed import set_seed
from repro.utils.timer import now

MODEL = "D2STGNN"
DATASET = "metr-la-sim"
BATCH = 16
TIMING_ROUNDS = 3
REPLAY_STEPS = 12
REQUESTS_PER_STEP = 4


def _distinct_requests(data, history: int, count: int) -> list[ForecastRequest]:
    """``count`` distinct request windows from the tail of the series."""
    series = data.dataset.series
    values, tod, dow = series.values, series.time_of_day, series.day_of_week
    total = values.shape[0]
    requests = []
    for index in range(count):
        start = total - history - count + index
        window = data.scaler.transform(values[start : start + history])
        requests.append(
            ForecastRequest(
                x=window[None, :, :, None],
                tod=tod[start : start + history][None, :].astype(np.int64),
                dow=dow[start : start + history][None, :].astype(np.int64),
            )
        )
    return requests


def _bench_microbatch(registry, requests) -> dict:
    """Sequential batch-1 forwards vs one coalesced forward, same batcher."""
    batcher = MicroBatcher(registry.resolve, max_batch=BATCH)

    sequential_outputs = [batcher.run_batch([request])[0][0] for request in requests]
    batched_outputs, _ = batcher.run_batch(requests)
    identical = all(
        a.tobytes() == b.tobytes()
        for a, b in zip(sequential_outputs, batched_outputs)
    )

    def best_of(run) -> float:
        best = float("inf")
        for _ in range(TIMING_ROUNDS):
            begin = now()
            run()
            best = min(best, now() - begin)
        return best

    sequential_s = best_of(
        lambda: [batcher.run_batch([request]) for request in requests]
    )
    batched_s = best_of(lambda: batcher.run_batch(requests))
    return {
        "batch_size": len(requests),
        "bitwise_identical": identical,
        "sequential_ms": sequential_s * 1000.0,
        "batched_ms": batched_s * 1000.0,
        "speedup": sequential_s / batched_s,
    }


def _bench_engine(data, registry, bundle) -> dict:
    """Full-stack replay: latency percentiles, cache and fallback counters."""
    store = SlidingWindowStore.for_bundle(bundle)
    with ServingEngine(registry, store, ServeConfig(max_wait_s=0.001)) as engine:
        summary = replay_split(
            engine, data, steps=REPLAY_STEPS, requests_per_step=REQUESTS_PER_STEP
        )
        # Force the degradation path: a full window of zero-coded outage
        # rows pushes outage_fraction to 1.0, above any sane threshold.
        last_tod, last_dow = store.last_time()
        dark = np.zeros(store.num_nodes, dtype=np.float32)
        for step in range(store.history):
            engine.observe(dark, (last_tod + 1 + step) % bundle.spec.steps_per_day, last_dow)
        outage_result = engine.forecast()
        telemetry = engine.telemetry_report()
    return {
        "replay": {key: summary[key] for key in ("steps", "requests", "sources", "fallback_reasons")},
        "outage_source": outage_result.source,
        "outage_reason": outage_result.reason,
        "telemetry": {
            key: telemetry[key]
            for key in (
                "requests", "batches", "mean_batch_size",
                "latency_ms_p50", "latency_ms_p95", "latency_ms_p99",
                "queue_depth_max", "cache_hits", "cache_misses",
                "cache_hit_rate", "fallbacks", "fallback_reasons",
                "served_by_model", "served_by_cache", "active_version",
            )
        },
    }


def test_serve_throughput(benchmark):
    data = get_data(DATASET)
    p = profile()
    set_seed(0)
    model, _ = build_model(MODEL, data, hidden=p.hidden_dim, layers=p.num_layers)
    bundle = make_servable(
        MODEL, model, data, hidden=p.hidden_dim, layers=p.num_layers
    )
    registry = ModelRegistry()
    registry.publish(bundle)
    requests = _distinct_requests(data, bundle.spec.history, BATCH)

    def run():
        return {
            "microbatch": _bench_microbatch(registry, requests),
            "engine": _bench_engine(data, registry, bundle),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    profile_name = os.environ.get("REPRO_BENCH_PROFILE", "bench").lower()
    m = results["microbatch"]
    t = results["engine"]["telemetry"]
    print(f"\n=== Serving throughput ({MODEL} on {DATASET}, {profile_name} profile) ===")
    print(f"micro-batch: {m['sequential_ms']:.2f} ms sequential vs "
          f"{m['batched_ms']:.2f} ms batched at batch {m['batch_size']} "
          f"(x{m['speedup']:.2f}, bit-identical: {m['bitwise_identical']})")
    print(f"engine:      p50 {t['latency_ms_p50']:.2f} / p95 {t['latency_ms_p95']:.2f} / "
          f"p99 {t['latency_ms_p99']:.2f} ms, cache hit rate {t['cache_hit_rate']:.2f}, "
          f"fallbacks {t['fallbacks']} {t['fallback_reasons']}")

    assert m["bitwise_identical"], "batched forward diverged from single-request forwards"
    assert m["speedup"] >= 3.0, f"micro-batching speedup x{m['speedup']:.2f} below the 3x gate"
    assert results["engine"]["outage_source"] == "fallback"
    assert results["engine"]["outage_reason"] == "outage"
    assert t["cache_hits"] > 0, "replay produced no cache hits"
    assert t["fallbacks"] > 0, "forced outage did not register as a fallback"

    payload = {
        "schema": "repro.bench.serve/v1",
        "dataset": DATASET,
        "model": MODEL,
        "profile": profile_name,
        **results,
    }
    save_results("serve", payload)
    root = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    with open(root, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
