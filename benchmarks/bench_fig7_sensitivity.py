"""Figure 7 — parameter sensitivity on METR-LA.

Sweeps the three hyper-parameters the paper analyses: spatial kernel size
``k_s``, temporal kernel size ``k_t`` (Fig. 7a) and hidden dimension ``d``
(Fig. 7b).  Shape claims: small kernels (2-3) suffice — the diffusion
process is spatially/temporally local — and MAE versus ``d`` is U-shaped
(too small underfits, too large overfits/undertrains).
"""

from __future__ import annotations

import pytest

from benchmarks.common import d2stgnn_config, get_data, profile, save_results, train_and_evaluate
from repro.core import D2STGNN

K_VALUES = (1, 2, 3, 4)
D_VALUES = (4, 16, 64)


def _run_with(data, **overrides) -> float:
    model = D2STGNN(d2stgnn_config(data, **overrides), data.adjacency)
    report = train_and_evaluate("D2STGNN-sweep", data, seed=0, model=model)
    return report["avg"]["mae"]


def test_fig7_parameter_sensitivity(benchmark):
    data = get_data("metr-la-sim")

    def run():
        results = {"k_s": {}, "k_t": {}, "d": {}}
        for k in K_VALUES:
            results["k_s"][k] = _run_with(data, k_s=k)
        for k in K_VALUES:
            results["k_t"][k] = _run_with(data, k_t=k)
        for d in D_VALUES:
            heads = 2 if d >= 8 else 1
            results["d"][d] = _run_with(data, hidden_dim=d, num_heads=heads)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Figure 7(a): kernel sensitivity (avg MAE, metr-la-sim) ===")
    print("k_s: " + "  ".join(f"{k}->{v:.3f}" for k, v in results["k_s"].items()))
    print("k_t: " + "  ".join(f"{k}->{v:.3f}" for k, v in results["k_t"].items()))
    print("=== Figure 7(b): hidden dimension ===")
    print("d:   " + "  ".join(f"{d}->{v:.3f}" for d, v in results["d"].items()))

    # Shape: some small kernel (2 or 3) is at least as good as the extremes.
    ks = results["k_s"]
    assert min(ks[2], ks[3]) <= min(ks[1], ks[4]) * 1.1, f"k_s locality violated: {ks}"
    kt = results["k_t"]
    assert min(kt[2], kt[3]) <= min(kt[1], kt[4]) * 1.1, f"k_t locality violated: {kt}"

    # Shape: tiny hidden dim underfits relative to the middle setting.
    d = results["d"]
    assert d[16] < d[4], f"d=16 should beat underfit d=4: {d}"

    save_results("fig7_sensitivity", {k: {str(i): v for i, v in vals.items()} for k, vals in results.items()})
