"""Shared harness for the per-table / per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(Sec. 6) on the simulated datasets.  Absolute values differ from the paper —
the substrate is a pure-numpy engine on synthetic data at reduced scale — but
each bench prints the paper's reference numbers next to the measured ones so
the *shape* of the result (who wins, by how much, where crossovers fall) can
be compared directly.  See EXPERIMENTS.md for the recorded comparison.

Scale is controlled by ``REPRO_BENCH_PROFILE`` (tiny | bench | full).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.baselines import (
    ASTGCN,
    DCRNN,
    DGCRN,
    FCLSTM,
    GMAN,
    MTGNN,
    STGCN,
    STSGCN,
    SVR,
    VAR,
    GraphWaveNet,
    HistoricalAverage,
)
from repro.core import D2STGNN, D2STGNNConfig
from repro.data import ForecastingData, build_forecasting_data, load_dataset
from repro.training import Trainer, TrainerConfig, evaluate_split
from repro.utils.seed import set_seed

RESULTS_DIR = Path(__file__).parent / "results"

DATASETS = ("metr-la-sim", "pems-bay-sim", "pems04-sim", "pems08-sim")


@dataclass(frozen=True)
class BenchProfile:
    """Sizes of one benchmark scale profile."""

    num_nodes: int
    num_steps: int
    hidden_dim: int
    embed_dim: int
    num_layers: int
    epochs: int
    batch_size: int
    num_heads: int = 2


_PROFILES = {
    "tiny": BenchProfile(
        num_nodes=8, num_steps=900, hidden_dim=16, embed_dim=8,
        num_layers=1, epochs=4, batch_size=32,
    ),
    "bench": BenchProfile(
        num_nodes=12, num_steps=1400, hidden_dim=16, embed_dim=8,
        num_layers=2, epochs=4, batch_size=32,
    ),
    "full": BenchProfile(
        num_nodes=32, num_steps=4032, hidden_dim=32, embed_dim=12,
        num_layers=2, epochs=12, batch_size=32, num_heads=4,
    ),
}


def profile() -> BenchProfile:
    name = os.environ.get("REPRO_BENCH_PROFILE", "bench").lower()
    return _PROFILES[name]


_DATA_CACHE: dict[str, ForecastingData] = {}


def get_data(name: str) -> ForecastingData:
    """Load (and cache) one simulated dataset at the active profile's size."""
    if name not in _DATA_CACHE:
        p = profile()
        dataset = load_dataset(name, num_nodes=p.num_nodes, num_steps=p.num_steps)
        _DATA_CACHE[name] = build_forecasting_data(dataset)
    return _DATA_CACHE[name]


# ---------------------------------------------------------------------------
# Model zoo
# ---------------------------------------------------------------------------

def d2stgnn_config(data: ForecastingData, **overrides) -> D2STGNNConfig:
    p = profile()
    defaults = dict(
        num_nodes=data.dataset.num_nodes,
        steps_per_day=data.steps_per_day,
        hidden_dim=p.hidden_dim,
        embed_dim=p.embed_dim,
        num_layers=p.num_layers,
        num_heads=p.num_heads,
        dropout=0.0,
    )
    defaults.update(overrides)
    return D2STGNNConfig(**defaults)


def build_model(name: str, data: ForecastingData):
    """Instantiate a forecaster by its Table 3 name.

    Returns ``(model, is_statistical)``; statistical models are ``fit`` rather
    than gradient-trained.
    """
    p = profile()
    num_nodes = data.dataset.num_nodes
    adjacency = data.adjacency
    h = p.hidden_dim
    builders = {
        "HA": lambda: HistoricalAverage(data.steps_per_day),
        "VAR": lambda: VAR(lags=3),
        "SVR": lambda: SVR(epochs=30),
        "FC-LSTM": lambda: FCLSTM(hidden_dim=h),
        "DCRNN": lambda: DCRNN(adjacency, hidden_dim=h),
        "STGCN": lambda: STGCN(adjacency, hidden_dim=h),
        "GraphWaveNet": lambda: GraphWaveNet(adjacency, hidden_dim=h),
        "ASTGCN": lambda: ASTGCN(adjacency, hidden_dim=h),
        "STSGCN": lambda: STSGCN(adjacency, hidden_dim=h),
        "GMAN": lambda: GMAN(num_nodes, data.steps_per_day, hidden_dim=h, num_heads=p.num_heads),
        "MTGNN": lambda: MTGNN(num_nodes, hidden_dim=h),
        "DGCRN": lambda: DGCRN(adjacency, hidden_dim=h),
        "DGCRN+": lambda: DGCRN(adjacency, hidden_dim=h, dynamic=False),  # DGCRN†
        "D2STGNN": lambda: D2STGNN(d2stgnn_config(data), adjacency),
        # Table 4 variants: † static graph, ‡ coupled (no DSTF).
        "D2STGNN+": lambda: D2STGNN(d2stgnn_config(data, use_dynamic_graph=False), adjacency),
        "D2STGNN#": lambda: D2STGNN(
            d2stgnn_config(data, use_dynamic_graph=False, use_decouple=False), adjacency
        ),
    }
    statistical = name in ("HA", "VAR", "SVR")
    return builders[name](), statistical


def train_and_evaluate(
    name: str,
    data: ForecastingData,
    seed: int = 0,
    epochs: int | None = None,
    curriculum: bool = True,
    model=None,
) -> dict:
    """Fit/train one forecaster and return its horizon metrics report."""
    set_seed(seed)
    if model is None:
        model, statistical = build_model(name, data)
    else:
        statistical = False
    history = None
    if statistical:
        model.fit(data)
    else:
        p = profile()
        trainer = Trainer(
            model,
            data,
            TrainerConfig(
                epochs=epochs if epochs is not None else p.epochs,
                batch_size=p.batch_size,
                curriculum=curriculum,
                curriculum_step=max(4, len(data.train) // p.batch_size // 3),
                seed=seed,
            ),
        )
        history = trainer.train()
    report = evaluate_split(model, data, split="test")
    if history is not None:
        report["epoch_seconds"] = history.mean_epoch_seconds
    return report


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def save_results(bench_name: str, payload: dict) -> Path:
    """Persist a benchmark's measurements for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{bench_name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def print_metric_table(title: str, rows: dict[str, dict], horizons=("3", "6", "12")) -> None:
    """Render {model: report} as a Table 3-style block."""
    print(f"\n=== {title} ===")
    header = f"{'model':<14}" + "".join(
        f"  H{h}: MAE  RMSE  MAPE%   " for h in horizons
    )
    print(header)
    for model, report in rows.items():
        cells = []
        for h in horizons:
            m = report[h]
            cells.append(f"  {m['mae']:7.3f} {m['rmse']:7.3f} {m['mape']:6.2f}  ")
        print(f"{model:<14}" + "".join(cells))
