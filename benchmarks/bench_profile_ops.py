"""Op-level profile baseline — where do training steps spend their time?

Not a table or figure of the paper: this bench produces the *measurement
baseline* that future performance work is judged against (the paper's own
Fig. 6 / Table 3 efficiency numbers presuppose exactly this plumbing).  For
D2STGNN and two baselines it profiles steady-state training steps with
:class:`repro.obs.Profiler` and records the hottest ops (count / inclusive
time / bytes, forward and backward) plus the module-scope breakdown.

Asserted shape: the profiler sees a rich op mix for D2STGNN (>= 10 distinct
ops), both phases are represented, and ``matmul`` — the op a numpy substrate
ultimately reduces to — is among the hottest for every model.

Results land in ``benchmarks/results/profile_ops.json`` (summarised in
EXPERIMENTS.md); the CLI equivalent for one-off runs is ``repro profile``.
"""

from __future__ import annotations

from benchmarks.common import build_model, get_data, profile, save_results
from repro.obs import Profiler, annotate_model_scopes
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, functional as F
from repro.utils.seed import set_seed

MODELS = ("D2STGNN", "GraphWaveNet", "DCRNN")

WARMUP_BATCHES = 1
PROFILED_BATCHES = 2
TOP_K = 10


def _profile_model(name: str, data) -> dict:
    """Profile steady-state training steps of one model; return the summary."""
    set_seed(0)
    model, _ = build_model(name, data)
    annotate_model_scopes(model)
    optimizer = Adam(model.parameters(), lr=0.001)
    scaler = data.scaler
    loader = data.loader("train", batch_size=profile().batch_size, shuffle=False)
    batches = []
    for batch in loader:
        batches.append(batch)
        if len(batches) >= WARMUP_BATCHES + PROFILED_BATCHES:
            break

    def step(batch) -> None:
        optimizer.zero_grad()
        prediction = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
        loss = F.masked_mae_loss(prediction, Tensor(batch.y))
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()

    for batch in batches[:WARMUP_BATCHES]:
        step(batch)
    with Profiler() as prof:
        for batch in batches[WARMUP_BATCHES:]:
            step(batch)

    summary = prof.to_dict()
    summary["ops"] = summary["ops"][:TOP_K]
    summary["scopes"] = summary["scopes"][:TOP_K]
    summary["model"] = name
    summary["batches"] = len(batches) - WARMUP_BATCHES
    return summary


def test_profile_ops_baseline(benchmark):
    data = get_data("metr-la-sim")

    def run():
        return {name: _profile_model(name, data) for name in MODELS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Op-level profile baseline (metr-la-sim, top ops by time) ===")
    for name in MODELS:
        summary = results[name]
        print(f"\n{name}: {summary['distinct_ops']} distinct ops, "
              f"{summary['elapsed_seconds']:.3f}s over {summary['batches']} steps")
        print(f"  {'op':<14} {'phase':<9} {'count':>7} {'time s':>9} {'MB':>9}")
        for row in summary["ops"][:5]:
            print(f"  {row['op']:<14} {row['phase']:<9} {row['count']:>7} "
                  f"{row['time']:>9.4f} {row['bytes'] / 1e6:>9.2f}")

    for name in MODELS:
        summary = results[name]
        phases = {row["phase"] for row in summary["ops"]}
        hottest = {row["op"] for row in summary["ops"][:TOP_K]}
        assert {"forward", "backward"} <= phases, f"{name}: missing a phase in {phases}"
        assert "matmul" in hottest, f"{name}: matmul not among hottest ops"
        assert all(
            row["count"] > 0 and row["time"] >= 0 and row["bytes"] >= 0
            for row in summary["ops"]
        ), name
    assert results["D2STGNN"]["distinct_ops"] >= 10, results["D2STGNN"]["distinct_ops"]

    save_results("profile_ops", results)
