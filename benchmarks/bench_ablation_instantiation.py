"""Design-choice ablation: DSTF block instantiations.

Section 4 of the paper presents DSTF as a framework whose diffusion model,
inherent model and graph learner "remain abstract and can be designed
independently"; D2STGNN is the instantiation the authors chose after
matching each block to its signal's characteristics (localized convolution
for the spatially/temporally local diffusion process, GRU + self-attention
for the node-local inherent series).

This bench trains all four combinations of {localized-conv,
graph-attention} × {gru-msa, tcn} under the same framework skeleton and
budget.  Expected shape: every combination trains to a sane accuracy (the
framework does not depend on specific blocks), and the paper's combination
is at or near the front (its blocks fit the signals' structure).
"""

from __future__ import annotations

import pytest

from benchmarks.common import get_data, print_metric_table, profile, save_results, train_and_evaluate
from repro.core import build_dstf_model

COMBINATIONS = {
    "conv+gru-msa (paper)": ("localized-conv", "gru-msa"),
    "conv+tcn": ("localized-conv", "tcn"),
    "attn+gru-msa": ("graph-attention", "gru-msa"),
    "attn+tcn": ("graph-attention", "tcn"),
}


def test_ablation_block_instantiations(benchmark):
    data = get_data("metr-la-sim")
    p = profile()

    def run():
        reports = {}
        for name, (diffusion, inherent) in COMBINATIONS.items():
            model = build_dstf_model(
                data.dataset.num_nodes,
                data.adjacency,
                diffusion=diffusion,
                inherent=inherent,
                steps_per_day=data.steps_per_day,
                hidden_dim=p.hidden_dim,
                embed_dim=p.embed_dim,
                num_layers=p.num_layers,
                num_heads=p.num_heads,
            )
            reports[name] = train_and_evaluate(name, data, seed=0, model=model)
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print_metric_table("DSTF block-instantiation ablation (metr-la-sim)", reports)
    avg = {name: reports[name]["avg"]["mae"] for name in COMBINATIONS}
    for name, value in sorted(avg.items(), key=lambda kv: kv[1]):
        print(f"{name:<22} avg MAE {value:.3f}")

    # The Sec. 4 claim this bench exercises is framework robustness: the
    # decoupling machinery works with *any* reasonable block instantiation.
    # Measured: all four combinations land within a tight accuracy band —
    # at this reduced scale the band is too narrow to rank the paper's
    # choice above the alternatives (that ranking is a paper-scale result).
    assert max(avg.values()) < 1.5 * min(avg.values()), avg

    save_results("ablation_instantiation", avg)
