"""Serving chaos — the regression gate for self-healing sharded serving.

Proves the three claims docs/scaling.md makes for the supervision layer
(:class:`~repro.serve.ShardSupervisor` + :class:`~repro.serve.ReplayJournal`),
using the seeded fault schedules of :mod:`repro.faults.serving` so the
supervised and unsupervised arms face *identical* chaos:

1. **SIGKILL recovery.**  A K-shard closed-loop run with one seeded
   worker kill: with supervision the model tier returns on the killed
   shard within the run (recovery time in requests and seconds is read
   off the load generator's per-request timeline and reported); without
   supervision the same schedule degrades that shard permanently — every
   request after the kill is answered partly from the fallback profile.
2. **Hang containment.**  A seeded worker hang under tight per-op
   timeouts: supervision detects the unresponsive-but-alive worker via
   its consecutive-failure streak, replaces it, and keeps model-tier
   availability high; unsupervised serving pays the forecast timeout on
   every request until the hang passes.
3. **K=1 no-fault serving stays bit-identical** to the plain
   :class:`~repro.serve.ServingEngine` — the self-healing layer costs
   nothing when nothing fails.

Every request in every arm must be *answered* — chaos may degrade
answers, never lose them.

Results land in ``benchmarks/results/serve_chaos.json`` and (outside the
tiny profile) the tracked repo-root ``BENCH_serve_chaos.json``.  The tiny
profile is the ``make serve-chaos-smoke`` CI arm: a K=2 process run with
one kill, gating zero unanswered requests and at least one successful
supervised restart.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.common import save_results
from repro.data import build_forecasting_data, load_dataset
from repro.faults import ServeFaultSchedule
from repro.models import build_model_from_parts
from repro.serve import (
    DegradationPolicy,
    ModelRegistry,
    ServeConfig,
    ServingEngine,
    ShardedServingEngine,
    SlidingWindowStore,
    SupervisionPolicy,
    make_servable,
    run_load,
)
from repro.utils.seed import set_seed

DATASET = "pems08-sim"

_SCALE = {
    "tiny": dict(
        model="STGCN", num_nodes=24, num_steps=480, hidden=8, layers=1,
        num_shards=2, steps=24, fault_window=12, hang_arm=False,
        hang_steps=0, hang_seconds=0.0, write_root=False,
    ),
    "bench": dict(
        model="STGCN", num_nodes=48, num_steps=480, hidden=16, layers=1,
        num_shards=4, steps=60, fault_window=30, hang_arm=True,
        hang_steps=40, hang_seconds=3.0, write_root=True,
    ),
    "full": dict(
        model="STGCN", num_nodes=48, num_steps=480, hidden=16, layers=1,
        num_shards=4, steps=80, fault_window=30, hang_arm=True,
        hang_steps=60, hang_seconds=3.0, write_root=True,
    ),
}

# Tight chaos-run deadlines: a worker that cannot forecast in 300 ms is a
# failed shard, and the supervisor reacts on the failure streak quickly.
_OP_TIMEOUTS = {"observe": 0.3, "forecast": 0.3, "telemetry": 2.0}
_SUPERVISION = SupervisionPolicy(
    check_interval_s=0.02, failure_threshold=2, backoff_base_s=0.01,
    backoff_max_s=0.5, max_restarts=8,
)


def _config(supervised: bool) -> ServeConfig:
    return ServeConfig(
        max_wait_s=0.0005,
        policy=DegradationPolicy(),
        op_timeouts_s=dict(_OP_TIMEOUTS),
        supervision=_SUPERVISION if supervised else None,
    )


def _drive(bundle, data, cfg, *, supervised: bool, schedule, steps: int) -> dict:
    """One closed-loop chaos run; returns the summary + recovery readout."""
    engine = ShardedServingEngine(
        bundle, num_shards=cfg["num_shards"], config=_config(supervised),
        transport="process",
    )
    with engine:
        result = run_load(
            engine, data, steps=steps, requests_per_step=1, concurrency=1,
            faults=schedule,
        )
        # Deterministic settle: force one supervision pass (a no-op if the
        # background thread already restarted mid-run), advance the stream by
        # one row so the forecast cannot come from the prediction cache, then
        # ask once more — the tiny CI profile gates on this instead of
        # in-run timing.
        if engine.supervisor is not None:
            engine.supervisor.poll_now()
        series = data.dataset.series
        engine.observe(
            series.values[-1],
            int(series.time_of_day[-1]),
            int(series.day_of_week[-1]),
        )
        settled_source = engine.forecast().source
        report = engine.telemetry_report()
    fault_request = schedule.fired[0]["request"] if schedule.fired else None
    recovery = _recovery(result.timeline, fault_request)
    return {
        "supervised": supervised,
        "requests": result.requests,
        "answered_all": result.requests == steps,
        "availability_model": result.sources.get("model", 0) / max(result.requests, 1),
        "sources": dict(result.sources),
        "fallback_reasons": dict(result.fallback_reasons),
        "latency_ms_p50": result.latency_ms_p50,
        "latency_ms_p99": result.latency_ms_p99,
        "fault_request": fault_request,
        "fired": list(schedule.fired),
        "restarts": report["restarts"],
        "partial_fallbacks": report["partial_fallbacks"],
        "model_tier_after_fault": _model_tier_after(result.timeline, fault_request),
        "settled_source": settled_source,
        **recovery,
    }


def _recovery(timeline, fault_request) -> dict:
    """Requests/seconds from the fault until the model tier answers again."""
    if fault_request is None or fault_request >= len(timeline):
        return {"recovery_requests": None, "recovery_time_s": None}
    fault_t = timeline[fault_request][0]
    for offset, (t, source, _reason) in enumerate(timeline[fault_request:]):
        if source == "model":
            return {"recovery_requests": offset, "recovery_time_s": t - fault_t}
    return {"recovery_requests": None, "recovery_time_s": None}


def _model_tier_after(timeline, fault_request) -> int:
    """How many requests after the fault were answered by the model tier."""
    if fault_request is None:
        return 0
    return sum(1 for _t, source, _r in timeline[fault_request:] if source == "model")


def _bench_identity(bundle, data) -> bool:
    """K=1 sharded loopback (supervision on) vs plain engine: bitwise equal."""
    series = data.dataset.series
    history = bundle.spec.history
    warm = (
        series.values[:history], series.time_of_day[:history],
        series.day_of_week[:history],
    )
    registry = ModelRegistry()
    registry.publish(bundle)
    store = SlidingWindowStore.for_bundle(bundle)
    with ServingEngine(registry, store, ServeConfig(max_wait_s=0.0005)) as plain:
        plain.store.warm_from(*warm)
        reference = plain.forecast()
    with ShardedServingEngine(
        bundle, num_shards=1, config=_config(supervised=True),
        transport="loopback",
    ) as sharded:
        sharded.store.warm_from(*warm)
        result = sharded.forecast()
    return (
        result.source == reference.source == "model"
        and result.values.tobytes() == reference.values.tobytes()
    )


def test_serve_chaos(benchmark):
    profile_name = os.environ.get("REPRO_BENCH_PROFILE", "bench").lower()
    cfg = _SCALE[profile_name]
    set_seed(0)
    data = build_forecasting_data(
        load_dataset(DATASET, num_nodes=cfg["num_nodes"], num_steps=cfg["num_steps"])
    )
    model, _ = build_model_from_parts(
        cfg["model"],
        num_nodes=cfg["num_nodes"],
        steps_per_day=data.dataset.steps_per_day,
        adjacency=data.adjacency,
        hidden=cfg["hidden"],
        layers=cfg["layers"],
    )
    bundle = make_servable(
        cfg["model"], model, data, hidden=cfg["hidden"], layers=cfg["layers"]
    )

    def kill_schedule():
        # fault_window < steps keeps the kill early enough that recovery
        # has room to land inside the run; both arms share the seed, so
        # they share the schedule.
        return ServeFaultSchedule.seeded(
            cfg["num_shards"], cfg["fault_window"], kills=1, seed=7
        )

    def hang_schedule():
        return ServeFaultSchedule.seeded(
            cfg["num_shards"], cfg["fault_window"], hangs=1, seed=11,
            hang_seconds=cfg["hang_seconds"],
        )

    def run():
        results = {
            "kill_supervised": _drive(
                bundle, data, cfg, supervised=True, schedule=kill_schedule(),
                steps=cfg["steps"],
            ),
            "kill_unsupervised": _drive(
                bundle, data, cfg, supervised=False, schedule=kill_schedule(),
                steps=cfg["steps"],
            ),
            "k1_bitwise_identical": _bench_identity(bundle, data),
        }
        if cfg["hang_arm"]:
            results["hang_supervised"] = _drive(
                bundle, data, cfg, supervised=True, schedule=hang_schedule(),
                steps=cfg["hang_steps"],
            )
            results["hang_unsupervised"] = _drive(
                bundle, data, cfg, supervised=False, schedule=hang_schedule(),
                steps=cfg["hang_steps"],
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sup, unsup = results["kill_supervised"], results["kill_unsupervised"]
    print(f"\n=== Serving chaos ({cfg['model']} on {DATASET}, "
          f"N={cfg['num_nodes']}, K={cfg['num_shards']} process workers, "
          f"{profile_name} profile) ===")
    print(f"kill @ request {sup['fault_request']}: "
          f"supervised availability {sup['availability_model']:.2f} "
          f"(recovered after {sup['recovery_requests']} requests, "
          f"{(sup['recovery_time_s'] or 0) * 1000:.0f} ms; "
          f"{sup['restarts']} restart) vs "
          f"unsupervised {unsup['availability_model']:.2f} "
          f"({unsup['model_tier_after_fault']} model-tier answers after the kill)")
    if cfg["hang_arm"]:
        hsup, hunsup = results["hang_supervised"], results["hang_unsupervised"]
        print(f"hang @ request {hsup['fault_request']} "
              f"({cfg['hang_seconds']}s stall, {_OP_TIMEOUTS['forecast']}s deadline): "
              f"supervised availability {hsup['availability_model']:.2f}, "
              f"p50 {hsup['latency_ms_p50']:.1f} ms, p99 {hsup['latency_ms_p99']:.1f} ms "
              f"vs unsupervised {hunsup['availability_model']:.2f}, "
              f"p50 {hunsup['latency_ms_p50']:.1f} ms, "
              f"p99 {hunsup['latency_ms_p99']:.1f} ms")
    print(f"K=1 no-fault serving bit-identical to plain engine: "
          f"{results['k1_bitwise_identical']}")

    # --- gates ---------------------------------------------------------
    for arm, row in results.items():
        if isinstance(row, dict):
            assert row["answered_all"], f"{arm} lost requests: {row['requests']}"
    assert results["k1_bitwise_identical"], (
        "K=1 sharded serving (supervision on) diverged from the plain engine"
    )
    assert sup["restarts"] >= 1, "supervised kill arm never restarted the worker"
    assert sup["settled_source"] == "model", (
        "the restarted worker did not return to model-tier serving"
    )
    assert unsup["restarts"] == 0, "unsupervised arm restarted a worker"
    assert unsup["model_tier_after_fault"] == 0, (
        "unsupervised kill arm served model-tier after the kill — not degraded?"
    )
    assert unsup["settled_source"] == "fallback", (
        "unsupervised arm recovered without supervision — the kill never landed?"
    )
    if profile_name != "tiny":
        # In-run recovery timing: only the larger profiles leave the
        # supervisor enough post-kill requests to gate wall-clock recovery.
        assert sup["recovery_requests"] is not None, (
            "supervised kill arm never recovered the model tier in-run"
        )
        assert sup["availability_model"] > unsup["availability_model"], (
            "supervision did not improve model-tier availability under the kill"
        )
    if cfg["hang_arm"]:
        hsup, hunsup = results["hang_supervised"], results["hang_unsupervised"]
        assert hsup["restarts"] >= 1, "supervised hang arm never replaced the worker"
        assert hsup["availability_model"] > hunsup["availability_model"], (
            "supervision did not improve model-tier availability under the hang"
        )

    payload = {
        "schema": "repro.bench.serve_chaos/v1",
        "dataset": DATASET,
        "model": cfg["model"],
        "profile": profile_name,
        "num_nodes": cfg["num_nodes"],
        "num_shards": cfg["num_shards"],
        "op_timeouts_s": dict(_OP_TIMEOUTS),
        "hang_seconds": cfg["hang_seconds"],
        **results,
    }
    save_results("serve_chaos", payload)
    if cfg["write_root"]:
        root = Path(__file__).resolve().parent.parent / "BENCH_serve_chaos.json"
        with open(root, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
