"""Table 2 — dataset statistics.

Regenerates the statistics table (#nodes, #edges, #time steps) for the four
simulated datasets and prints them next to the real datasets' numbers.  The
simulated sizes are intentionally scaled down (see DESIGN.md); what must
match is the *structure*: two speed datasets + two flow datasets, speed
graphs denser than flow graphs, 5-minute sampling.
"""

from __future__ import annotations

import pytest

from benchmarks.common import DATASETS, get_data, save_results
from benchmarks.paper_reference import TABLE2

_PAPER_NAME = {
    "metr-la-sim": "METR-LA",
    "pems-bay-sim": "PEMS-BAY",
    "pems04-sim": "PEMS04",
    "pems08-sim": "PEMS08",
}


def _collect_statistics() -> dict:
    stats = {}
    for name in DATASETS:
        dataset = get_data(name).dataset
        stats[name] = {
            "kind": dataset.spec.kind,
            "nodes": dataset.num_nodes,
            "edges": dataset.num_edges,
            "steps": dataset.num_steps,
        }
    return stats


def test_table2_dataset_statistics(benchmark):
    stats = benchmark.pedantic(_collect_statistics, rounds=1, iterations=1)

    print("\n=== Table 2: dataset statistics (simulated vs paper) ===")
    print(f"{'dataset':<14} {'kind':<6} {'nodes':>6} {'edges':>6} {'steps':>7}"
          f"   | paper: {'nodes':>6} {'edges':>6} {'steps':>7}")
    for name, row in stats.items():
        ref = TABLE2[_PAPER_NAME[name]]
        print(
            f"{name:<14} {row['kind']:<6} {row['nodes']:>6} {row['edges']:>6} "
            f"{row['steps']:>7}   |        {ref['nodes']:>6} {ref['edges']:>6} {ref['steps']:>7}"
        )

    # Structural checks mirroring the paper's table.
    for name, row in stats.items():
        assert row["kind"] == TABLE2[_PAPER_NAME[name]]["kind"]
        assert row["edges"] > 0
        assert row["steps"] >= 288  # at least a simulated day

    save_results("table2_datasets", stats)
