"""Figure 6 — average training time per epoch on METR-LA.

Times steady-state training batches of each model at identical batch size
(two warm-up batches excluded, since first-touch allocation costs would
otherwise dominate at this scale) and scales to a per-epoch figure.

Substrate caveat, recorded in EXPERIMENTS.md: the paper's headline gap —
parallel convolutional models (GWNet, MTGNN) far cheaper than step-recurrent
seq2seq models (DGCRN, GMAN) — comes from GPU parallelism across the time
axis, which a CPU numpy engine does not enjoy; on this substrate the models
are much closer together.  The *intra-model* claim that is substrate-robust
and asserted here: dropping the dynamic graph learner (D2STGNN†) does not
make D2STGNN more expensive — the learner is pure overhead at fixed
accuracy machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import build_model, get_data, profile, save_results
from benchmarks.paper_reference import FIG6_EPOCH_SECONDS
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, functional as F
from repro.utils.seed import set_seed
from repro.utils.timer import now

MODELS = ("GraphWaveNet", "MTGNN", "GMAN", "DGCRN", "D2STGNN+", "D2STGNN")

WARMUP_BATCHES = 2
TIMED_BATCHES = 8


def _steady_state_epoch_seconds(name: str, data) -> float:
    """Per-epoch training time extrapolated from steady-state batches."""
    set_seed(0)
    model, _ = build_model(name, data)
    optimizer = Adam(model.parameters(), lr=0.001)
    batch_size = profile().batch_size
    loader = data.loader("train", batch_size=batch_size, shuffle=False)
    batches = []
    for batch in loader:
        batches.append(batch)
        if len(batches) >= WARMUP_BATCHES + TIMED_BATCHES:
            break
    scaler = data.scaler

    def step(batch):
        optimizer.zero_grad()
        prediction = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
        loss = F.masked_mae_loss(prediction, Tensor(batch.y))
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()

    for batch in batches[:WARMUP_BATCHES]:
        step(batch)
    # Two timed passes, keeping the faster one: wall-clock measurements on a
    # shared host are right-skewed by background load, so min-of-passes is
    # the robust estimator of the model's intrinsic cost.
    per_batch = float("inf")
    for _ in range(2):
        start = now()
        for batch in batches[WARMUP_BATCHES:]:
            step(batch)
        elapsed = (now() - start) / max(1, len(batches) - WARMUP_BATCHES)
        per_batch = min(per_batch, elapsed)
    batches_per_epoch = int(np.ceil(len(data.train) / batch_size))
    return per_batch * batches_per_epoch


def test_fig6_training_efficiency(benchmark):
    data = get_data("metr-la-sim")

    def run():
        return {name: _steady_state_epoch_seconds(name, data) for name in MODELS}

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Figure 6: avg training time per epoch (metr-la-sim) ===")
    print(f"{'model':<14} {'measured s':>10}   {'paper s (GPU)':>13}")
    for name in MODELS:
        print(f"{name:<14} {seconds[name]:>10.2f}   {FIG6_EPOCH_SECONDS[name]:>13}")
    scale = max(seconds.values())
    for name in sorted(seconds, key=seconds.get):
        bar = "#" * max(1, int(40 * seconds[name] / scale))
        print(f"{name:<14} {bar}")

    # Substrate-robust shape checks (see module docstring).
    assert seconds["D2STGNN+"] <= seconds["D2STGNN"] * 1.15, (
        "removing dynamic graph learning should not make training slower"
    )
    assert all(value > 0 for value in seconds.values())
    # No model is an outlier by more than ~an order of magnitude: the paper's
    # Fig. 6 spread is within 7x, and ours should be in the same ballpark.
    assert max(seconds.values()) < 12 * min(seconds.values()), seconds

    save_results("fig6_efficiency", seconds)
