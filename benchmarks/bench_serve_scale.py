"""Sharded serving scale — the regression gate for the engine/transport split.

Measures the three claims ``docs/scaling.md`` makes for the sharded stack
(:class:`~repro.serve.ShardedServingEngine`):

1. **Throughput scales with workers.**  On one machine the win comes from
   compute reduction, not parallelism: the graph ops are superlinear in the
   node count (the diffusion matmuls are O(N²)), so K shards of ~N/K nodes
   each do strictly less arithmetic than one N-node engine.  The gate is
   ≥1.8x closed-loop throughput at K=2 over K=1 and monotone improvement to
   K=4, measured on DCRNN over a 768-node sparse road graph where the
   quadratic term dominates.
2. **K=1 sharded serving is bit-identical** to the plain
   :class:`~repro.serve.ServingEngine` — the sharded stack is a superset,
   not a fork.
3. **Load shedding beats queueing under overload.**  An open-loop Poisson
   arrival stream at 2x the measured K=2 capacity is served twice — with
   admission control shedding (``max_inflight`` set) and without — and the
   shedding arm must come out with the lower p99.

Results land in ``benchmarks/results/serve_scale.json`` and (outside the
tiny profile) the tracked repo-root ``BENCH_serve_scale.json``.  The tiny
profile is the ``make serve-scale-smoke`` CI arm: a small loopback run that
asserts the identity and that scaling is alive, without gating on exact
ratios the CI box cannot reproduce.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from benchmarks.common import save_results
from repro.data import build_forecasting_data, load_dataset
from repro.models import build_model_from_parts
from repro.serve import (
    DegradationPolicy,
    ModelRegistry,
    ServeConfig,
    ServingEngine,
    ShardedServingEngine,
    SlidingWindowStore,
    make_servable,
    partition_graph,
    run_load,
)
from repro.serve.shard import partition_cut_edges
from repro.utils.seed import set_seed

# The flow presets carry the sparse binary road connectivity (mean degree
# ~6), where a 2-way cut leaves boundary-sized halos and each shard really
# holds ~N/2 nodes.  The speed presets' DCRNN-style Gaussian-kernel
# adjacency is ~33% dense at this scale — its 1-hop halo is nearly the
# whole graph and sharding buys nothing (see docs/scaling.md).
DATASET = "pems08-sim"

# The scaling argument needs the O(N²) diffusion term to dominate, so this
# bench sizes its own graph instead of using the shared profile sizes.
_SCALE = {
    "tiny": dict(
        model="STGCN", num_nodes=48, num_steps=480, hidden=16, layers=1,
        shard_counts=(1, 2), transport="loopback", steps=6,
        overload_duration_s=0.8, speedup_k2_gate=0.3, monotone_gate=False,
        write_root=False,
    ),
    "bench": dict(
        model="DCRNN", num_nodes=768, num_steps=576, hidden=16, layers=1,
        shard_counts=(1, 2, 4), transport="process", steps=6,
        overload_duration_s=2.0, speedup_k2_gate=1.8, monotone_gate=True,
        write_root=True,
    ),
    "full": dict(
        model="DCRNN", num_nodes=768, num_steps=576, hidden=16, layers=1,
        shard_counts=(1, 2, 4), transport="process", steps=10,
        overload_duration_s=3.0, speedup_k2_gate=1.8, monotone_gate=True,
        write_root=True,
    ),
}


def _config(**policy) -> ServeConfig:
    return ServeConfig(max_wait_s=0.0005, policy=DegradationPolicy(**policy))


def _bench_throughput(bundle, data, cfg) -> dict:
    """Closed-loop requests/s for each worker count, same drive each time."""
    throughput = {}
    for num_shards in cfg["shard_counts"]:
        engine = ShardedServingEngine(
            bundle, num_shards=num_shards, config=_config(),
            transport=cfg["transport"],
        )
        with engine:
            result = run_load(
                engine, data, steps=cfg["steps"], requests_per_step=1,
                concurrency=1,
            )
        assert result.sources.get("model", 0) == result.requests, (
            f"K={num_shards} throughput arm left the model path: {result.sources}"
        )
        throughput[str(num_shards)] = {
            "requests": result.requests,
            "duration_s": result.duration_s,
            "requests_per_s": result.achieved_rps,
            "latency_ms_p50": result.latency_ms_p50,
        }
    return throughput


def _bench_identity(bundle, data) -> bool:
    """K=1 sharded loopback vs the plain engine: bitwise-equal forecasts."""
    series = data.dataset.series
    history = bundle.spec.history
    warm = (
        series.values[:history], series.time_of_day[:history],
        series.day_of_week[:history],
    )
    registry = ModelRegistry()
    registry.publish(bundle)
    store = SlidingWindowStore.for_bundle(bundle)
    with ServingEngine(registry, store, _config()) as plain:
        plain.store.warm_from(*warm)
        reference = plain.forecast()
    with ShardedServingEngine(
        bundle, num_shards=1, config=_config(), transport="loopback"
    ) as sharded:
        sharded.store.warm_from(*warm)
        result = sharded.forecast()
    return (
        result.source == reference.source == "model"
        and result.values.tobytes() == reference.values.tobytes()
    )


def _bench_overload(bundle, data, cfg, capacity_rps: float) -> dict:
    """2x-capacity Poisson overload, shedding on vs off, same schedule."""
    offered = 2.0 * capacity_rps
    arms = {}
    for arm, shed in (("shed", True), ("no_shed", False)):
        engine = ShardedServingEngine(
            bundle, num_shards=2,
            config=_config(max_inflight=2, shed_on_overload=shed),
            transport=cfg["transport"],
        )
        with engine:
            # Two knobs keep overload on the model path instead of letting
            # the prediction cache absorb the duplicate arrivals: fast
            # observation ticks keep the window signature moving, and
            # cycling the requested horizon gives consecutive requests
            # distinct cache keys at identical forward cost.
            result = run_load(
                engine, data, rps=offered,
                duration_s=cfg["overload_duration_s"],
                steps=max(cfg["steps"], 8), concurrency=12, seed=17,
                observe_interval_s=0.05,
                horizons=tuple(range(1, bundle.spec.horizon + 1)),
            )
        arms[arm] = {
            "requests": result.requests,
            "achieved_rps": result.achieved_rps,
            "shed": result.shed,
            "sources": result.sources,
            "latency_ms_p50": result.latency_ms_p50,
            "latency_ms_p99": result.latency_ms_p99,
        }
    return {"offered_rps": offered, "capacity_rps": capacity_rps, **arms}


def test_serve_scale(benchmark):
    profile_name = os.environ.get("REPRO_BENCH_PROFILE", "bench").lower()
    cfg = _SCALE[profile_name]
    set_seed(0)
    data = build_forecasting_data(
        load_dataset(DATASET, num_nodes=cfg["num_nodes"], num_steps=cfg["num_steps"])
    )
    model, _ = build_model_from_parts(
        cfg["model"],
        num_nodes=cfg["num_nodes"],
        steps_per_day=data.dataset.steps_per_day,
        adjacency=data.adjacency,
        hidden=cfg["hidden"],
        layers=cfg["layers"],
    )
    bundle = make_servable(
        cfg["model"], model, data, hidden=cfg["hidden"], layers=cfg["layers"]
    )
    partition = partition_graph(bundle.adjacency, 2)

    def run():
        throughput = _bench_throughput(bundle, data, cfg)
        base = throughput["1"]["requests_per_s"]
        speedups = {
            k: v["requests_per_s"] / base for k, v in throughput.items() if k != "1"
        }
        return {
            "throughput": throughput,
            "speedups": speedups,
            "k1_bitwise_identical": _bench_identity(bundle, data),
            "overload": _bench_overload(
                bundle, data, cfg, throughput["2"]["requests_per_s"]
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Sharded serving scale ({cfg['model']} on {DATASET}, "
          f"N={cfg['num_nodes']}, {cfg['transport']} transport, "
          f"{profile_name} profile) ===")
    for k, row in results["throughput"].items():
        speedup = results["speedups"].get(k)
        note = f" (x{speedup:.2f} vs K=1)" if speedup else ""
        print(f"K={k}: {row['requests_per_s']:7.2f} req/s, "
              f"p50 {row['latency_ms_p50']:.2f} ms{note}")
    print(f"K=1 sharded bit-identical to plain engine: "
          f"{results['k1_bitwise_identical']}")
    o = results["overload"]
    print(f"overload at {o['offered_rps']:.1f} rps "
          f"(2x the {o['capacity_rps']:.1f} rps K=2 capacity): "
          f"p99 {o['shed']['latency_ms_p99']:.1f} ms with shedding "
          f"({o['shed']['shed']} shed) vs "
          f"{o['no_shed']['latency_ms_p99']:.1f} ms without")

    assert results["k1_bitwise_identical"], (
        "K=1 sharded serving diverged from the plain engine"
    )
    speedup_k2 = results["speedups"]["2"]
    assert speedup_k2 >= cfg["speedup_k2_gate"], (
        f"K=2 speedup x{speedup_k2:.2f} below the x{cfg['speedup_k2_gate']} gate"
    )
    if cfg["monotone_gate"]:
        assert results["speedups"]["4"] >= speedup_k2, (
            f"throughput not monotone: K=4 x{results['speedups']['4']:.2f} "
            f"below K=2 x{speedup_k2:.2f}"
        )
    assert o["shed"]["shed"] > 0, "overload arm never triggered shedding"
    assert o["shed"]["latency_ms_p99"] < o["no_shed"]["latency_ms_p99"], (
        "shedding did not lower the overload p99 tail"
    )

    payload = {
        "schema": "repro.bench.serve_scale/v1",
        "dataset": DATASET,
        "model": cfg["model"],
        "profile": profile_name,
        "num_nodes": cfg["num_nodes"],
        "transport": cfg["transport"],
        "partition": {
            "num_shards": 2,
            "owned_sizes": [p.num_owned for p in partition.plans],
            "halo_sizes": [int(p.halo.shape[0]) for p in partition.plans],
            "cut_edges": int(
                partition_cut_edges(bundle.adjacency, partition).shape[0]
            ),
        },
        **results,
    }
    save_results("serve_scale", payload)
    if cfg["write_root"]:
        root = Path(__file__).resolve().parent.parent / "BENCH_serve_scale.json"
        with open(root, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
