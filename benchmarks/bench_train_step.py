"""Train-step throughput — the regression gate for the engine's fast paths.

Times full optimisation steps (gather → forward → loss → backward → clip →
update) per model on metr-la-sim, once under the engine's fast backward
configuration and once under the reference configuration, and benchmarks
vectorized batch assembly against the per-sample reference loop.  Both fast
paths must be *bit-identical* to their slow counterparts — that is asserted
here on top of the dedicated equivalence suite
(``tests/test_fast_path_equivalence.py``).

Results land in ``benchmarks/results/train_step.json`` and the tracked
repo-root ``BENCH_train_step.json`` (summarised in EXPERIMENTS.md); the CLI
equivalent for one-off runs is ``repro profile --train-step``.  The
``seed_baseline`` block records a one-time A/B measurement against the
pre-fast-path tree, which the self-contained toggle comparison understates
(several engine optimisations — gradient donation, forward rewrites — are
not behind toggles); see docs/performance.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from benchmarks.common import build_model, get_data, profile, save_results
from repro.obs import compare_fast_reference, FAST_CONFIG, REFERENCE_CONFIG
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, configure_fast_backward, fast_backward_config
from repro.tensor import functional as F
from repro.utils.seed import set_seed
from repro.utils.timer import now

MODELS = ("D2STGNN", "GraphWaveNet", "DCRNN")
DATASET = "metr-la-sim"
TIMED_STEPS = 8
GATHER_BATCHES = 50
GATHER_BATCH_SIZE = 64

# One-time alternated A/B against the pre-fast-path tree (commit 90e48ea,
# the seed this PR started from), measured on the same machine with the same
# harness: 4 interleaved runs per leg, pooled minima, bench profile,
# D2STGNN × metr-la-sim, batch 32.  Kept as data because the seed tree is
# not part of this checkout; the toggle comparison below is re-measurable.
SEED_BASELINE = {
    "commit": "90e48ea",
    "seed_step_ms_min": 138.23,
    "current_step_ms_min": 113.68,
    "seed_backward_ms_min": 79.25,
    "current_backward_ms_min": 60.22,
    "speedup_end_to_end": 1.22,
    "speedup_backward": 1.32,
    "note": (
        "pooled minima over 4 alternated runs per tree; single-core "
        "OpenBLAS machine with +/-40% load drift, so medians vary more "
        "than minima"
    ),
}


def _grads_after_steps(name: str, data, config: dict, steps: int = 2) -> list[bytes]:
    """Deterministically train ``steps`` steps under ``config``; return grads.

    Rebuilds the model from a fixed seed so two calls differ only in the
    engine configuration — the grads (and therefore every update along the
    way) must match bit-for-bit between the fast and reference paths.
    """
    previous = fast_backward_config()
    configure_fast_backward(**config)
    try:
        set_seed(0)
        model, _ = build_model(name, data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        scaler = data.scaler
        loader = data.loader("train", batch_size=profile().batch_size, shuffle=False)
        iterator = iter(loader)
        for _ in range(steps):
            batch = next(iterator)
            optimizer.zero_grad()
            prediction = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
            loss = F.masked_mae_loss(prediction, Tensor(batch.y))
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
        return [p.grad.tobytes() for p in model.parameters()]
    finally:
        configure_fast_backward(**previous)


def _bench_gather(data) -> dict:
    """Vectorized gather vs the per-sample reference loop, same indices."""
    dataset = data.windows
    rng = np.random.default_rng(0)
    size = min(GATHER_BATCH_SIZE, len(dataset))
    index_sets = rng.integers(0, len(dataset), size=(GATHER_BATCHES, size))

    fast_batch = dataset.gather(index_sets[0])
    loop_batch = dataset.gather_loop(index_sets[0])
    identical = all(
        getattr(fast_batch, field).tobytes() == getattr(loop_batch, field).tobytes()
        for field in ("x", "y", "tod", "dow")
    )

    def run(gather) -> float:
        best = float("inf")
        for _ in range(3):
            begin = now()
            for indices in index_sets:
                gather(indices)
            best = min(best, now() - begin)
        return best / len(index_sets)

    fast_us = run(dataset.gather) * 1e6
    loop_us = run(dataset.gather_loop) * 1e6
    return {
        "batch_size": size,
        "bitwise_identical": identical,
        "vectorized_us_per_batch": fast_us,
        "loop_us_per_batch": loop_us,
        "speedup": loop_us / fast_us,
    }


def test_train_step_throughput(benchmark):
    data = get_data(DATASET)

    def run():
        results = {"models": {}, "gather": _bench_gather(data)}
        for name in MODELS:
            set_seed(0)
            model, _ = build_model(name, data)
            timing = compare_fast_reference(
                model, data, batch_size=profile().batch_size, steps=TIMED_STEPS
            )
            timing["grads_bit_identical"] = (
                _grads_after_steps(name, data, FAST_CONFIG)
                == _grads_after_steps(name, data, REFERENCE_CONFIG)
            )
            results["models"][name] = timing
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    profile_name = os.environ.get("REPRO_BENCH_PROFILE", "bench").lower()
    print(f"\n=== Train-step throughput ({DATASET}, {profile_name} profile) ===")
    print(f"{'model':<14} {'fast ms':>9} {'ref ms':>9} {'e2e x':>7} "
          f"{'fast bwd us':>12} {'ref bwd us':>12} {'bwd x':>7}")
    for name in MODELS:
        t = results["models"][name]
        print(f"{name:<14} {t['fast']['step_ms_min']:>9.2f} "
              f"{t['reference']['step_ms_min']:>9.2f} {t['speedup_end_to_end']:>7.2f} "
              f"{t['fast']['backward_us_min']:>12.0f} "
              f"{t['reference']['backward_us_min']:>12.0f} {t['speedup_backward']:>7.2f}")
    g = results["gather"]
    print(f"gather: vectorized {g['vectorized_us_per_batch']:.1f} us/batch vs "
          f"loop {g['loop_us_per_batch']:.1f} us/batch (x{g['speedup']:.1f})")

    for name in MODELS:
        t = results["models"][name]
        assert t["grads_bit_identical"], f"{name}: fast paths changed numerics"
        assert t["fast"]["samples_per_sec"] > 0
        # Noise guard, not a speedup claim: the fast paths must never make
        # the step slower than the reference configuration.
        assert t["speedup_end_to_end"] > 0.85, (name, t["speedup_end_to_end"])
    assert g["bitwise_identical"], "vectorized gather diverged from the loop"
    assert g["speedup"] > 1.5, g

    payload = {
        "schema": "repro.bench.train_step/v1",
        "dataset": DATASET,
        "profile": profile_name,
        "seed_baseline": SEED_BASELINE,
        **results,
    }
    save_results("train_step", payload)
    # The tracked repo-root baseline is a bench-profile artifact; smoke runs
    # at other scales (make bench-smoke) must not overwrite it.
    if profile_name == "bench":
        root = Path(__file__).resolve().parent.parent / "BENCH_train_step.json"
        with open(root, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
