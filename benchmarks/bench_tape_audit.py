"""Tape-IR audit baseline — how much memory does arena planning recover?

Not a table or figure of the paper: this bench records the static-analysis
side of ROADMAP item 1 (the tape-to-program compiler).  For D2STGNN and two
baselines it records one forward+backward at probe scale into the tape IR
(``repro.check.tape``), plans a greedy buffer arena from the lifetime
intervals, and cross-checks the IR's owned bytes against the
``MemoryWatermark``-measured allocation bytes (audit rule T001).

Asserted shape: zero error findings (no mutation hazards, no dead values,
byte accounting within tolerance) for every model, an arena plan that
reuses each byte at least 1.5x for D2STGNN (the headroom the planned
executor claims), and fusion candidates present for every model (the GRU
cell body / GEMM epilogues / the loss chain).

Results land in ``benchmarks/results/tape_audit.json``; the CLI equivalent
is ``repro check tape`` and the CI smoke target is ``make check-tape``.
"""

from __future__ import annotations

from benchmarks.common import save_results
from repro.check import audit_models, format_tape_report

MODELS = ("D2STGNN", "GraphWaveNet", "DCRNN")
DATASET = "metr-la-sim"


def test_tape_audit_baseline(benchmark):
    def run():
        return audit_models(models=list(MODELS), datasets=[DATASET])

    audits = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Tape-IR audit baseline ({DATASET}, probe scale) ===")
    print(format_tape_report(audits))

    by_model = {audit.model: audit for audit in audits}
    assert set(by_model) == set(MODELS)
    for name, audit in by_model.items():
        assert audit.ok, f"{name}: {[f.message for f in audit.findings()]}"
        assert audit.consistency["within_tolerance"], (name, audit.consistency)
        assert not audit.hazards and not audit.dead_values, name
        assert audit.fusion, f"{name}: no fusion candidates found"
    assert by_model["D2STGNN"].arena["reuse_ratio"] >= 1.5, by_model["D2STGNN"].arena

    save_results(
        "tape_audit",
        {
            "dataset": DATASET,
            "audits": {
                name: {
                    "instructions": audit.program.counts()["instructions"],
                    "arena": audit.arena,
                    "consistency": audit.consistency,
                    "fusion_candidates": len(audit.fusion),
                    "top_fusion": [c.to_dict() for c in audit.fusion[:3]],
                }
                for name, audit in by_model.items()
            },
        },
    )
