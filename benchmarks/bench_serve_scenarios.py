"""Scenario serving — the regression gate for the city-scale scenario engine.

Drives the named ``closure-rush`` event scenario (a demand surge, an
upstream incident, and a road closure that rewrites the adjacency
mid-stream) through K=2 sharded serving with :func:`repro.serve.run_scenario`
and gates the ``repro.serve.scenario/v1`` report:

1. **Availability.**  Every request in the drive is answered, and the
   model/cache tiers stay above the availability floor — a mid-stream
   graph rewrite must not black-hole serving.
2. **Graph rewrite round trip.**  The closure produces exactly two
   mid-stream graph updates (edges out, edges restored), each rolled out
   as a published bundle version.
3. **Conditional-MAE sanity.**  The surge's affected-during MAE exceeds
   its unaffected-during MAE — the conditional quadrants must actually
   separate perturbed from unperturbed traffic, or the effect masks are
   wired to the wrong nodes/ticks.
4. **Replay parity.**  The empty ``quiet-day`` scenario answers requests
   from exactly the same sources as the existing ``replay_split`` path.

Results land in ``benchmarks/results/serve_scenarios.json`` and (outside
the tiny profile) the tracked repo-root ``BENCH_serve_scenarios.json``.
The tiny profile is the ``make scenario-smoke`` CI arm.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from benchmarks.common import save_results
from repro.data import build_forecasting_data, load_dataset
from repro.data.events import Scenario, event_scenario
from repro.models import build_model_from_parts
from repro.serve import (
    ServeConfig,
    ShardedServingEngine,
    make_servable,
    replay_split,
    run_scenario,
)
from repro.utils.seed import set_seed

DATASET = "metr-la-sim"

_SCALE = {
    "tiny": dict(
        model="STGCN", num_nodes=16, num_steps=480, hidden=8, layers=1,
        num_shards=2, steps=24, requests_per_step=2, write_root=False,
    ),
    "bench": dict(
        model="STGCN", num_nodes=32, num_steps=600, hidden=16, layers=1,
        num_shards=2, steps=48, requests_per_step=4, write_root=True,
    ),
    "full": dict(
        model="STGCN", num_nodes=48, num_steps=600, hidden=16, layers=1,
        num_shards=4, steps=64, requests_per_step=4, write_root=True,
    ),
}

_AVAILABILITY_FLOOR = 0.9  # model+cache share of answered requests


def _engine(bundle, cfg) -> ShardedServingEngine:
    return ShardedServingEngine(
        bundle, num_shards=cfg["num_shards"],
        config=ServeConfig(max_wait_s=0.0005), transport="loopback",
    )


def test_serve_scenarios(benchmark):
    profile_name = os.environ.get("REPRO_BENCH_PROFILE", "bench").lower()
    cfg = _SCALE[profile_name]
    set_seed(0)
    data = build_forecasting_data(
        load_dataset(DATASET, num_nodes=cfg["num_nodes"], num_steps=cfg["num_steps"])
    )
    model, _ = build_model_from_parts(
        cfg["model"],
        num_nodes=cfg["num_nodes"],
        steps_per_day=data.dataset.steps_per_day,
        adjacency=data.adjacency,
        hidden=cfg["hidden"],
        layers=cfg["layers"],
    )
    bundle = make_servable(
        cfg["model"], model, data, hidden=cfg["hidden"], layers=cfg["layers"]
    )
    adjacency = np.asarray(data.adjacency)
    scenario = event_scenario("closure-rush", adjacency, cfg["steps"], seed=3)

    def run():
        with _engine(bundle, cfg) as engine:
            result = run_scenario(
                engine, data, scenario,
                steps=cfg["steps"], requests_per_step=cfg["requests_per_step"],
            )
        with _engine(bundle, cfg) as engine:
            quiet = run_scenario(
                engine, data, Scenario("quiet-day", (), seed=0),
                steps=cfg["steps"], requests_per_step=cfg["requests_per_step"],
            )
        with _engine(bundle, cfg) as engine:
            baseline = replay_split(
                engine, data,
                steps=cfg["steps"], requests_per_step=cfg["requests_per_step"],
            )
        return result.report, quiet.report, baseline

    report, quiet, baseline = benchmark.pedantic(run, rounds=1, iterations=1)

    serving = report["serving"]
    expected = cfg["steps"] * cfg["requests_per_step"]
    availability = (
        serving["sources"].get("model", 0) + serving["sources"].get("cache", 0)
    ) / max(serving["requests"], 1)
    surge_label = next(
        label for label in report["conditional"] if label.startswith("demandsurge")
    )
    surge = report["conditional"][surge_label]

    print(f"\n=== Scenario serving ({cfg['model']} on {DATASET}, "
          f"N={cfg['num_nodes']}, K={cfg['num_shards']} loopback shards, "
          f"{profile_name} profile) ===")
    print(f"closure-rush: {len(report['events'])} events, "
          f"{serving['requests']} requests, availability {availability:.2f}, "
          f"fallback rate {serving['fallback_rate']:.2f}")
    for update in report["graph_updates"]:
        closed = update["closed_nodes"]
        what = f"closed {closed}" if closed else "restored"
        print(f"  graph @ tick {update['tick']}: {what} -> {update['version']}")
    print(f"  overall mae {report['overall']['mae']:.3f} over "
          f"{report['overall']['scored_ticks']} scored ticks")
    print(f"  {surge_label}: affected-during mae "
          f"{surge['affected_during']['mae']:.3f} vs unaffected-during "
          f"{surge['unaffected_during']['mae']:.3f}")
    print(f"  latency p50 {serving['latency_ms']['p50']:.2f} ms, "
          f"p99 {serving['latency_ms']['p99']:.2f} ms")
    print(f"quiet-day parity with replay_split: "
          f"{quiet['serving']['sources'] == baseline['sources']}")

    # --- gates ---------------------------------------------------------
    assert serving["requests"] == expected, (
        f"lost requests: {serving['requests']} answered of {expected}"
    )
    assert availability >= _AVAILABILITY_FLOOR, (
        f"model+cache availability {availability:.2f} under the scenario "
        f"fell below {_AVAILABILITY_FLOOR}"
    )
    updates = report["graph_updates"]
    assert len(updates) == 2, f"expected closure + restore, got {updates}"
    assert updates[0]["closed_nodes"] and not updates[1]["closed_nodes"]
    assert all(u["version"] is not None for u in updates), (
        "the closure's rewritten adjacency was never published"
    )
    assert report["overall"]["mae"] is not None
    assert np.isfinite(report["overall"]["mae"])
    assert surge["affected_during"]["count"] > 0
    assert surge["affected_during"]["mae"] > surge["unaffected_during"]["mae"], (
        "the surge's conditional quadrants did not separate: the effect "
        "mask is not pointing at the perturbed traffic"
    )
    assert quiet["serving"]["sources"] == baseline["sources"], (
        "empty-scenario serving diverged from the replay_split path"
    )
    assert quiet["serving"]["fallback_reasons"] == baseline["fallback_reasons"]

    payload = {
        "schema": "repro.bench.serve_scenarios/v1",
        "dataset": DATASET,
        "profile": profile_name,
        "model": cfg["model"],
        "num_nodes": cfg["num_nodes"],
        "num_shards": cfg["num_shards"],
        "availability": availability,
        "availability_floor": _AVAILABILITY_FLOOR,
        "quiet_day_matches_replay": quiet["serving"]["sources"] == baseline["sources"],
        "scenario": report,
    }
    save_results("serve_scenarios", payload)
    if cfg["write_root"]:
        root = Path(__file__).resolve().parent.parent / "BENCH_serve_scenarios.json"
        with open(root, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
