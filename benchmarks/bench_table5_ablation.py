"""Table 5 — ablation study on METR-LA.

Eleven variants: the full model, *switch* (inherent block first), and the
removal of each component / training strategy.  Shape claims from the paper:
*switch* performs on par with the full model; every removal hurts; removing
the decoupling entirely (*w/o decouple*) hurts the most among the framework
ablations.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import d2stgnn_config, get_data, print_metric_table, save_results, train_and_evaluate
from benchmarks.paper_reference import TABLE5_MAE
from repro.core import D2STGNN

ABLATIONS: dict[str, dict] = {
    "D2STGNN": {},
    "switch": {"diffusion_first": False},
    "wo_gate": {"use_gate": False},
    "wo_res": {"use_residual": False},
    "wo_decouple": {"use_decouple": False},
    "wo_dg": {"use_dynamic_graph": False},
    "wo_apt": {"use_adaptive": False},
    "wo_gru": {"use_gru": False},
    "wo_msa": {"use_msa": False},
    "wo_ar": {"autoregressive": False},
    "wo_cl": {},  # trainer-level: curriculum disabled
}


def test_table5_ablation(benchmark):
    data = get_data("metr-la-sim")

    def run():
        reports = {}
        for name, overrides in ABLATIONS.items():
            model = D2STGNN(d2stgnn_config(data, **overrides), data.adjacency)
            reports[name] = train_and_evaluate(
                name, data, seed=0, curriculum=(name != "wo_cl"), model=model
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print_metric_table("Table 5 (metr-la-sim): measured", reports)
    print("--- paper reference MAE (H3/H6/H12) ---")
    for name in ABLATIONS:
        r = TABLE5_MAE[name]
        print(f"{name:<14} {r['3']:6.2f} {r['6']:6.2f} {r['12']:6.2f}")

    avg = {name: reports[name]["avg"]["mae"] for name in ABLATIONS}
    full = avg["D2STGNN"]

    # switch is interchangeable with the full model (Sec. 4.2): within noise.
    assert avg["switch"] < full * 1.25, f"switch should be on par with full: {avg}"

    # Removing the decoupling hurts the most among the framework ablations.
    framework = {k: avg[k] for k in ("switch", "wo_gate", "wo_res", "wo_decouple")}
    assert avg["wo_decouple"] >= np.median(list(framework.values())), (
        f"wo_decouple should be among the worst framework ablations: {framework}"
    )

    # No ablation is dramatically *better* than the full model.
    for name, value in avg.items():
        assert value > full * 0.8, f"{name} unexpectedly beats the full model by a lot"

    save_results("table5_ablation", reports)
