"""Linear, MLP, LayerNorm, Dropout, Embedding, activations, init schemes."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck


def t(shape, rng):
    return Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=True)


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(5, 3)
        assert layer(t((7, 5), rng)).shape == (7, 3)

    def test_applies_to_trailing_axis_of_4d(self, rng):
        layer = nn.Linear(5, 3)
        assert layer(t((2, 4, 6, 5), rng)).shape == (2, 4, 6, 3)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 4), np.float32))).numpy()
        np.testing.assert_array_equal(zero_out, np.zeros((1, 2)))

    def test_gradcheck(self, rng):
        layer = nn.Linear(3, 2)
        gradcheck(lambda x: layer(x), [t((4, 3), rng)])

    def test_matches_manual_affine(self, rng):
        layer = nn.Linear(3, 2)
        x = rng.normal(size=(5, 3)).astype(np.float32)
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected, rtol=1e-5)


class TestMLP:
    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            nn.MLP([4])

    def test_depth(self, rng):
        mlp = nn.MLP([4, 8, 8, 2])
        assert len(mlp.layers) == 3
        assert mlp(t((3, 4), rng)).shape == (3, 2)

    def test_final_activation_flag(self, rng):
        mlp = nn.MLP([4, 4], final_activation=True)
        out = mlp(t((10, 4), rng)).numpy()
        assert np.all(out >= 0.0)

    def test_no_final_activation_by_default(self, rng):
        mlp = nn.MLP([4, 4])
        outs = [mlp(t((10, 4), rng)).numpy() for _ in range(3)]
        assert any(np.any(o < 0) for o in outs)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        layer = nn.LayerNorm(6)
        out = layer(t((4, 6), rng)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_gradcheck(self, rng):
        layer = nn.LayerNorm(4)
        gradcheck(lambda x: layer(x), [t((3, 4), rng)], atol=2e-2)

    def test_gamma_beta_trainable(self):
        layer = nn.LayerNorm(4)
        assert len(layer.parameters()) == 2


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_eval_is_identity(self, rng):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = t((10, 10), rng)
        np.testing.assert_array_equal(layer(x).numpy(), x.numpy())

    def test_train_zeroes_some_and_rescales(self, rng):
        layer = nn.Dropout(0.5)
        x = Tensor(np.ones((100, 100), np.float32))
        out = layer(x).numpy()
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        # Inverted dropout: survivors scaled by 1/keep.
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, np.full_like(survivors, 2.0))

    def test_expected_value_preserved(self, rng):
        layer = nn.Dropout(0.3)
        x = Tensor(np.ones((200, 200), np.float32))
        assert layer(x).numpy().mean() == pytest.approx(1.0, abs=0.05)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values_match_table(self):
        emb = nn.Embedding(5, 3)
        np.testing.assert_array_equal(emb(np.array([2])).numpy()[0], emb.weight.data[2])

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 3)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_float_indices_rejected(self):
        emb = nn.Embedding(5, 3)
        with pytest.raises(TypeError):
            emb(np.array([1.5]))

    def test_gradient_accumulates_on_repeated_index(self):
        emb = nn.Embedding(4, 2)
        emb(np.array([1, 1])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestActivations:
    def test_relu_module(self, rng):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0], np.float32))).numpy()
        np.testing.assert_array_equal(out, [0.0, 2.0])

    def test_sigmoid_module_range(self, rng):
        out = nn.Sigmoid()(t((10,), rng)).numpy()
        assert np.all((out > 0) & (out < 1))

    def test_tanh_module_range(self, rng):
        out = nn.Tanh()(t((10,), rng)).numpy()
        assert np.all((out > -1) & (out < 1))

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.2)(Tensor(np.array([-1.0], np.float32))).numpy()
        assert out[0] == pytest.approx(-0.2)


class TestInit:
    def test_xavier_uniform_bound(self):
        w = nn.init.xavier_uniform(100, 100)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        w = nn.init.xavier_normal(200, 200)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.15)

    def test_kaiming_uniform_bound(self):
        w = nn.init.kaiming_uniform(50, 10)
        assert np.abs(w).max() <= np.sqrt(6.0 / 50) + 1e-6

    def test_zeros_ones(self):
        assert nn.init.zeros(3, 2).sum() == 0.0
        assert nn.init.ones(3, 2).sum() == 6.0

    def test_deterministic_after_seed(self):
        from repro.utils.seed import set_seed

        set_seed(3)
        a = nn.init.xavier_uniform(4, 4)
        set_seed(3)
        b = nn.init.xavier_uniform(4, 4)
        np.testing.assert_array_equal(a, b)

    def test_all_float32(self):
        for arr in (nn.init.uniform(2, 2), nn.init.normal(2, 2), nn.init.xavier_uniform(2, 2)):
            assert arr.dtype == np.float32
