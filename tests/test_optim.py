"""Optimizers, gradient clipping and LR schedules."""

import numpy as np
import pytest

from repro import nn
from repro.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.tensor import Tensor


def quadratic_param(value=5.0):
    return nn.Parameter(np.array([value], dtype=np.float32))


def minimise(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_minimises_quadratic(self):
        p = quadratic_param()
        assert abs(minimise(SGD([p], lr=0.1), p)) < 1e-3

    def test_momentum_accelerates(self):
        p_plain, p_momentum = quadratic_param(), quadratic_param()
        plain = abs(minimise(SGD([p_plain], lr=0.01), p_plain, steps=50))
        fast = abs(minimise(SGD([p_momentum], lr=0.01, momentum=0.9), p_momentum, steps=50))
        assert fast < plain

    def test_weight_decay_shrinks_weights(self):
        p = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()  # no grad yet: must not crash
        assert p.data[0] == 5.0


class TestAdam:
    def test_minimises_quadratic(self):
        p = quadratic_param()
        assert abs(minimise(Adam([p], lr=0.1), p)) < 1e-2

    def test_bias_correction_first_step_magnitude(self):
        # With bias correction, the first Adam step has magnitude ≈ lr.
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(0.9, abs=1e-3)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_weight_decay_applies(self):
        p = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = nn.Parameter(np.zeros(3, dtype=np.float32))
        p.grad = np.array([0.1, 0.2, 0.2], dtype=np.float32)
        before = p.grad.copy()
        norm = clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_array_equal(p.grad, before)
        assert norm == pytest.approx(np.linalg.norm(before), rel=1e-5)

    def test_clips_to_max_norm(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_handles_missing_grads(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float32))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_global_norm_across_params(self):
        a = nn.Parameter(np.zeros(1, dtype=np.float32))
        b = nn.Parameter(np.zeros(1, dtype=np.float32))
        a.grad = np.array([3.0], dtype=np.float32)
        b.grad = np.array([4.0], dtype=np.float32)
        assert clip_grad_norm([a, b], max_norm=100.0) == pytest.approx(5.0)


class TestSchedulers:
    def test_step_lr_decays(self):
        p = quadratic_param()
        opt = Adam([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_step_lr_validates(self):
        with pytest.raises(ValueError):
            StepLR(Adam([quadratic_param()], lr=1.0), step_size=0)

    def test_cosine_reaches_min(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1, abs=1e-6)

    def test_cosine_monotone_decreasing(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, total_epochs=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestOptimizerState:
    """state_dict round-trips are bit-identical and resume-equivalent."""

    def _grad_step(self, optimizer, param):
        optimizer.zero_grad()
        (param * param).sum().backward()
        optimizer.step()

    @pytest.mark.parametrize("make", [
        lambda p: Adam([p], lr=0.05, weight_decay=0.01),
        lambda p: SGD([p], lr=0.05, momentum=0.9, weight_decay=0.01),
    ])
    def test_roundtrip_bit_identical(self, make):
        p = quadratic_param()
        optimizer = make(p)
        for _ in range(5):
            self._grad_step(optimizer, p)
        state = optimizer.state_dict()

        q = quadratic_param()
        restored = make(q)
        restored.load_state_dict(state)
        for key, value in state.items():
            mirrored = restored.state_dict()[key]
            if isinstance(value, list):
                for a, b in zip(value, mirrored):
                    np.testing.assert_array_equal(a, b)
            else:
                assert mirrored == value

    @pytest.mark.parametrize("make", [
        lambda p: Adam([p], lr=0.05),
        lambda p: SGD([p], lr=0.05, momentum=0.9),
    ])
    def test_restored_optimizer_continues_identically(self, make):
        reference_param = quadratic_param()
        reference = make(reference_param)
        for _ in range(3):
            self._grad_step(reference, reference_param)

        interrupted_param = quadratic_param()
        interrupted = make(interrupted_param)
        for _ in range(2):
            self._grad_step(interrupted, interrupted_param)
        state = interrupted.state_dict()

        resumed_param = nn.Parameter(interrupted_param.data.copy())
        resumed = make(resumed_param)
        resumed.load_state_dict(state)
        self._grad_step(resumed, resumed_param)  # the "next" step after resume
        self._grad_step(interrupted, interrupted_param)
        np.testing.assert_array_equal(resumed_param.data, interrupted_param.data)
        np.testing.assert_array_equal(resumed_param.data, reference_param.data)

    def test_state_is_a_deep_copy(self):
        p = quadratic_param()
        optimizer = Adam([p], lr=0.05)
        self._grad_step(optimizer, p)
        state = optimizer.state_dict()
        moment_before = state["m"][0].copy()
        self._grad_step(optimizer, p)  # mutates the live moments
        np.testing.assert_array_equal(state["m"][0], moment_before)

    def test_rejects_wrong_array_count(self):
        p = quadratic_param()
        optimizer = Adam([p], lr=0.05)
        state = optimizer.state_dict()
        state["m"] = []
        with pytest.raises(ValueError, match="arrays"):
            Adam([quadratic_param()], lr=0.05).load_state_dict(state)

    def test_rejects_wrong_shape(self):
        p = quadratic_param()
        optimizer = Adam([p], lr=0.05)
        self._grad_step(optimizer, p)
        state = optimizer.state_dict()
        state["v"] = [np.zeros((2, 2))]
        with pytest.raises(ValueError, match="shape"):
            Adam([quadratic_param()], lr=0.05).load_state_dict(state)

    def test_rejects_missing_lr(self):
        with pytest.raises(ValueError, match="lr"):
            Adam([quadratic_param()], lr=0.05).load_state_dict({})


class TestSchedulerState:
    def test_step_lr_roundtrip(self):
        p = quadratic_param()
        optimizer = Adam([p], lr=0.1)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        for _ in range(3):
            scheduler.step()
        state = scheduler.state_dict()

        fresh_opt = Adam([quadratic_param()], lr=0.1)
        fresh = StepLR(fresh_opt, step_size=2, gamma=0.5)
        fresh.load_state_dict(state)
        assert fresh_opt.lr == optimizer.lr
        fresh.step()
        scheduler.step()
        assert fresh_opt.lr == optimizer.lr

    def test_cosine_roundtrip(self):
        p = quadratic_param()
        optimizer = Adam([p], lr=0.1)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.01)
        for _ in range(4):
            scheduler.step()
        state = scheduler.state_dict()

        fresh_opt = Adam([quadratic_param()], lr=0.1)
        fresh = CosineAnnealingLR(fresh_opt, total_epochs=10, min_lr=0.01)
        fresh.load_state_dict(state)
        fresh.step()
        scheduler.step()
        assert fresh_opt.lr == pytest.approx(optimizer.lr)
