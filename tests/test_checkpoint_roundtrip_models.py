"""Checkpoint round-trips across the whole neural model zoo.

Every servable model must survive save → load → forward with bit-identical
outputs at tiny scale — the property the serving registry's bundle format
(and the plain checkpoint format under it) is built on.
"""

import numpy as np
import pytest

from repro.models import NEURAL, build_model, build_model_from_parts
from repro.utils.checkpoint import load_checkpoint, save_checkpoint
from repro.utils.seed import set_seed


def _probe_forward(model, data) -> np.ndarray:
    batch = next(iter(data.loader("val", batch_size=2, shuffle=False)))
    with model.inference():
        return model(batch.x, batch.tod, batch.dow).numpy()


@pytest.mark.parametrize("name", NEURAL)
def test_save_load_forward_bit_identical(name, tiny_data, tmp_path):
    set_seed(0)
    model, config = build_model(name, tiny_data, hidden=8, layers=1)
    reference = _probe_forward(model, tiny_data)

    path = save_checkpoint(tmp_path / f"{name}.npz", model, config)
    set_seed(999)  # the reload must not depend on RNG state
    fresh, _ = build_model_from_parts(
        name,
        num_nodes=tiny_data.dataset.num_nodes,
        steps_per_day=tiny_data.dataset.steps_per_day,
        adjacency=tiny_data.adjacency,
        hidden=8,
        layers=1,
    )
    load_checkpoint(path, fresh)

    state, restored = model.state_dict(), fresh.state_dict()
    assert set(state) == set(restored)
    for key in state:
        np.testing.assert_array_equal(state[key], restored[key])
    assert _probe_forward(fresh, tiny_data).tobytes() == reference.tobytes()
