"""Composite functions: softmax, log-softmax, losses."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, gradcheck


def t(shape, rng, scale=1.0):
    return Tensor((rng.normal(size=shape) * scale).astype(np.float32), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(t((4, 6), rng)).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_axis_argument(self, rng):
        out = F.softmax(t((4, 6), rng), axis=0).numpy()
        np.testing.assert_allclose(out.sum(axis=0), np.ones(6), rtol=1e-5)

    def test_stability_with_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))).numpy()
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_gradcheck(self, rng):
        gradcheck(lambda a: F.softmax(a) * Tensor(np.arange(6, dtype=np.float32)), [t((3, 6), rng)])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        a = t((3, 5), rng)
        np.testing.assert_allclose(
            F.log_softmax(a).numpy(), np.log(F.softmax(a).numpy()), atol=1e-5
        )

    def test_log_softmax_gradcheck(self, rng):
        gradcheck(lambda a: F.log_softmax(a, axis=0).tanh(), [t((4, 3), rng)])


class TestLosses:
    def test_mae_matches_numpy(self, rng):
        a, b = t((5, 3), rng), t((5, 3), rng)
        expected = np.abs(a.numpy() - b.numpy()).mean()
        assert F.mae_loss(a, b).item() == pytest.approx(expected, rel=1e-5)

    def test_mse_matches_numpy(self, rng):
        a, b = t((5, 3), rng), t((5, 3), rng)
        expected = np.square(a.numpy() - b.numpy()).mean()
        assert F.mse_loss(a, b).item() == pytest.approx(expected, rel=1e-4)

    def test_mae_gradcheck(self, rng):
        a = t((4, 2), rng)
        gradcheck(lambda a: F.mae_loss(a, Tensor(np.ones((4, 2), np.float32))), [a])

    def test_masked_mae_ignores_nulls(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        target = Tensor(np.array([2.0, 0.0, 5.0], dtype=np.float32))
        # Only positions 0 and 2 count: (1 + 2) / 2 = 1.5
        assert F.masked_mae_loss(pred, target).item() == pytest.approx(1.5)

    def test_masked_mae_all_null_is_zero(self):
        pred = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        target = Tensor(np.zeros(3, dtype=np.float32))
        loss = F.masked_mae_loss(pred, target)
        assert loss.item() == 0.0
        loss.backward()  # must not crash; gradient is zero
        np.testing.assert_allclose(pred.grad, np.zeros(3))

    def test_masked_mae_equals_mae_without_nulls(self, rng):
        a = Tensor(rng.uniform(1, 2, (6,)).astype(np.float32))
        b = Tensor(rng.uniform(1, 2, (6,)).astype(np.float32))
        assert F.masked_mae_loss(a, b).item() == pytest.approx(F.mae_loss(a, b).item(), rel=1e-5)

    def test_huber_quadratic_inside_delta(self):
        pred = Tensor(np.array([0.5], dtype=np.float32))
        target = Tensor(np.array([0.0], dtype=np.float32))
        assert F.huber_loss(pred, target, delta=1.0).item() == pytest.approx(0.125)

    def test_huber_linear_outside_delta(self):
        pred = Tensor(np.array([3.0], dtype=np.float32))
        target = Tensor(np.array([0.0], dtype=np.float32))
        assert F.huber_loss(pred, target, delta=1.0).item() == pytest.approx(2.5)

    def test_huber_gradcheck(self, rng):
        a = t((6,), rng, scale=2.0)
        gradcheck(lambda a: F.huber_loss(a, Tensor(np.zeros(6, np.float32))), [a])
