"""Hypothesis property tests on the data substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SimulationConfig,
    SplitRatios,
    StandardScaler,
    WindowDataset,
    chronological_split,
    simulate_traffic,
    time_indices,
)
from repro.graph import generate_road_network


@given(
    st.integers(min_value=10, max_value=3000),
    st.sampled_from([48, 144, 288]),
    st.integers(min_value=0, max_value=6),
)
@settings(max_examples=50, deadline=None)
def test_time_indices_ranges(num_steps, steps_per_day, start_dow):
    tod, dow = time_indices(num_steps, steps_per_day, start_dow)
    assert tod.min() >= 0 and tod.max() < steps_per_day
    assert dow.min() >= 0 and dow.max() < 7
    assert dow[0] == start_dow
    # tod advances by exactly 1 modulo steps_per_day.
    np.testing.assert_array_equal(np.diff(tod) % steps_per_day, np.ones(num_steps - 1))


@given(
    st.floats(min_value=0.05, max_value=0.9),
    st.floats(min_value=0.05, max_value=0.9),
)
@settings(max_examples=50, deadline=None)
def test_chronological_split_partitions(train, val):
    total = train + val
    if total >= 0.95:
        return  # leave room for a positive test share
    ratios = SplitRatios(train=train, val=val, test=1.0 - total)
    n = 1000
    (a0, a1), (b0, b1), (c0, c1) = chronological_split(n, ratios)
    # A partition: contiguous, ordered, covering [0, n).
    assert a0 == 0 and c1 == n
    assert a1 == b0 and b1 == c0
    assert a0 < a1 <= b1 <= c1


@given(st.integers(min_value=24, max_value=200), st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_window_count_formula(total, horizon):
    history = 12
    if total < history + horizon:
        return
    rng = np.random.default_rng(0)
    values = rng.uniform(1, 5, size=(total, 2)).astype(np.float32)
    tod, dow = time_indices(total, 288)
    windows = WindowDataset(values, values, tod, dow, history=history, horizon=horizon)
    assert len(windows) == total - history - horizon + 1
    # First and last samples are valid and correctly aligned.
    x0, y0, _, _ = windows.sample(0)
    np.testing.assert_array_equal(y0[:, :, 0], values[history : history + horizon])
    x_last, y_last, _, _ = windows.sample(len(windows) - 1)
    np.testing.assert_array_equal(y_last[-1, :, 0], values[total - 1])


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_simulator_superposition_and_bounds(seed):
    rng = np.random.default_rng(seed)
    network = generate_road_network(5, rng)
    series = simulate_traffic(
        network, 300, kind="speed",
        config=SimulationConfig(failure_rate=0.0), rng=rng,
    )
    assert np.isfinite(series.values).all()
    assert series.values.min() >= 0.0
    assert series.values.max() <= series.config.speed_limit
    assert series.inherent.min() >= 0.0
    assert series.diffusion.min() >= 0.0


@given(st.floats(min_value=-100, max_value=100), st.floats(min_value=0.1, max_value=50))
@settings(max_examples=30, deadline=None)
def test_scaler_is_affine(mean, std):
    rng = np.random.default_rng(1)
    values = (rng.normal(mean, std, size=200)).astype(np.float32)
    scaler = StandardScaler(null_value=None).fit(values)
    a = np.array([0.0, 1.0], dtype=np.float32)
    b = np.array([2.0, -1.0], dtype=np.float32)
    # transform(a + b) + transform(0) == transform(a) + transform(b) for an
    # affine map f(x) = (x - m)/s  <=>  f(a+b) - f(a) - f(b) + f(0) == 0.
    lhs = scaler.transform(a + b) - scaler.transform(a) - scaler.transform(b) + scaler.transform(
        np.zeros(2, np.float32)
    )
    np.testing.assert_allclose(lhs, np.zeros(2), atol=1e-3)
