"""Scheduled sampling for the seq2seq baselines (the DCRNN recipe)."""

import numpy as np
import pytest

from repro.baselines import DCRNN, DGCRN, FCLSTM
from repro.training import Trainer, TrainerConfig
from repro.utils.seed import set_seed

N = 5


@pytest.fixture()
def adjacency():
    adj = np.eye(N, dtype=np.float32)
    adj += np.roll(adj, 1, axis=1)
    return adj


class TestModelLevel:
    @pytest.mark.parametrize("model_cls", [DCRNN, DGCRN])
    def test_teacher_forcing_changes_decoding(self, adjacency, rng, model_cls):
        set_seed(0)
        model = model_cls(adjacency, hidden_dim=8)
        model.eval()
        x = rng.normal(size=(1, 6, N, 1)).astype(np.float32)
        targets = rng.normal(size=(1, 12, N, 1)).astype(np.float32)
        free = model(x, None, None).numpy()
        forced = model(x, None, None, targets=targets, teacher_forcing=1.0).numpy()
        assert not np.allclose(free, forced)

    @pytest.mark.parametrize("model_cls", [DCRNN, DGCRN])
    def test_zero_ratio_is_identity(self, adjacency, rng, model_cls):
        set_seed(0)
        model = model_cls(adjacency, hidden_dim=8)
        model.eval()
        x = rng.normal(size=(1, 6, N, 1)).astype(np.float32)
        targets = rng.normal(size=(1, 12, N, 1)).astype(np.float32)
        free = model(x, None, None).numpy()
        with_zero = model(x, None, None, targets=targets, teacher_forcing=0.0).numpy()
        np.testing.assert_array_equal(free, with_zero)

    def test_first_forecast_step_unaffected(self, adjacency, rng):
        """Teacher forcing replaces decoder *inputs*, never outputs: the
        first step depends only on the encoder."""
        set_seed(0)
        model = DCRNN(adjacency, hidden_dim=8)
        model.eval()
        x = rng.normal(size=(1, 6, N, 1)).astype(np.float32)
        targets = rng.normal(size=(1, 12, N, 1)).astype(np.float32)
        free = model(x, None, None).numpy()
        forced = model(x, None, None, targets=targets, teacher_forcing=1.0).numpy()
        np.testing.assert_allclose(free[:, 0], forced[:, 0], atol=1e-6)


class TestTrainerIntegration:
    def test_ratio_decays_linearly(self, tiny_data, adjacency):
        model = DCRNN(tiny_data.adjacency, hidden_dim=8)
        trainer = Trainer(
            model, tiny_data,
            TrainerConfig(epochs=1, scheduled_sampling=True, sampling_decay_batches=10),
        )
        assert trainer._teacher_forcing_ratio() == pytest.approx(1.0)
        trainer._batches_seen = 5
        assert trainer._teacher_forcing_ratio() == pytest.approx(0.5)
        trainer._batches_seen = 50
        assert trainer._teacher_forcing_ratio() == 0.0

    def test_training_with_sampling_converges(self, tiny_data):
        set_seed(0)
        model = DCRNN(tiny_data.adjacency, hidden_dim=8)
        trainer = Trainer(
            model, tiny_data,
            TrainerConfig(epochs=2, batch_size=32, scheduled_sampling=True,
                          sampling_decay_batches=12),
        )
        history = trainer.train()
        assert history.train_loss[-1] < history.train_loss[0]
        assert np.isfinite(history.train_loss).all()

    def test_non_seq2seq_models_ignore_flag(self, tiny_data):
        """FC-LSTM's forward has no teacher_forcing parameter; the trainer
        must silently fall back to plain training."""
        set_seed(0)
        model = FCLSTM(hidden_dim=8)
        trainer = Trainer(
            model, tiny_data,
            TrainerConfig(epochs=1, batch_size=64, scheduled_sampling=True),
        )
        assert not trainer._supports_sampling
        trainer.train()  # must not crash
