"""End-to-end integration: the full pipeline on simulated data.

These tests assert the *shape* of the paper's headline results at miniature
scale: the trained D2STGNN must beat the naive baselines, the decoupled
variants must train stably, and error must grow with horizon.
"""

import numpy as np
import pytest

from repro.baselines import VAR, HistoricalAverage
from repro.core import D2STGNN, D2STGNNConfig
from repro.data import build_forecasting_data, load_dataset
from repro.training import (
    Trainer,
    TrainerConfig,
    masked_mae,
    paired_t_test,
    predict_split,
)
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def data():
    return build_forecasting_data(load_dataset("metr-la-sim", num_nodes=8, num_steps=900))


@pytest.fixture(scope="module")
def trained(data):
    set_seed(0)
    config = D2STGNNConfig(
        num_nodes=data.dataset.num_nodes,
        steps_per_day=data.steps_per_day,
        hidden_dim=16, embed_dim=8, num_layers=2, num_heads=2, dropout=0.0,
    )
    model = D2STGNN(config, data.adjacency)
    trainer = Trainer(model, data, TrainerConfig(epochs=4, batch_size=32, curriculum_step=4))
    trainer.train()
    return trainer


class TestEndToEnd:
    def test_beats_historical_average(self, trained, data):
        ha = HistoricalAverage(data.steps_per_day).fit(data)
        model_pred, target = predict_split(trained.model, data)
        ha_pred, _ = predict_split(ha, data)
        assert masked_mae(model_pred, target) < masked_mae(ha_pred, target)

    def test_beats_var(self, trained, data):
        var = VAR(lags=3).fit(data)
        model_pred, target = predict_split(trained.model, data)
        var_pred, _ = predict_split(var, data)
        assert masked_mae(model_pred, target) < masked_mae(var_pred, target)

    def test_error_grows_with_horizon(self, trained):
        report = trained.evaluate()
        assert report["3"]["mae"] < report["12"]["mae"]

    def test_significance_machinery_runs(self, trained, data):
        ha = HistoricalAverage(data.steps_per_day).fit(data)
        model_pred, target = predict_split(trained.model, data)
        ha_pred, _ = predict_split(ha, data)
        result = paired_t_test(model_pred, ha_pred, target)
        assert np.isfinite(result.p_value)

    def test_predictions_in_plausible_range(self, trained, data):
        pred, _ = predict_split(trained.model, data)
        # Speed data: predictions should stay loosely within the speed scale.
        assert pred.min() > -20.0
        assert pred.max() < 90.0

    def test_training_reproducible_after_seeding(self, data):
        def run():
            set_seed(5)
            config = D2STGNNConfig(
                num_nodes=data.dataset.num_nodes, steps_per_day=data.steps_per_day,
                hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
            )
            model = D2STGNN(config, data.adjacency)
            Trainer(model, data, TrainerConfig(epochs=1, batch_size=64)).train()
            pred, _ = predict_split(model, data)
            return pred

        np.testing.assert_array_equal(run(), run())


class TestVariantTraining:
    @pytest.mark.parametrize(
        "overrides",
        [dict(use_decouple=False), dict(use_dynamic_graph=False), dict(autoregressive=False)],
        ids=["coupled", "static-graph", "direct-forecast"],
    )
    def test_variant_trains_stably(self, data, overrides):
        set_seed(1)
        config = D2STGNNConfig(
            num_nodes=data.dataset.num_nodes, steps_per_day=data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
            **overrides,
        )
        model = D2STGNN(config, data.adjacency)
        trainer = Trainer(model, data, TrainerConfig(epochs=2, batch_size=32))
        history = trainer.train()
        assert np.isfinite(history.train_loss).all()
        assert history.train_loss[-1] < history.train_loss[0]


class TestFlowDataset:
    def test_flow_pipeline_end_to_end(self, tiny_flow_dataset):
        data = build_forecasting_data(tiny_flow_dataset)
        set_seed(2)
        config = D2STGNNConfig(
            num_nodes=data.dataset.num_nodes, steps_per_day=data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
        )
        model = D2STGNN(config, data.adjacency)
        trainer = Trainer(model, data, TrainerConfig(epochs=1, batch_size=32))
        trainer.train()
        report = trainer.evaluate()
        assert np.isfinite(report["avg"]["mae"])
