"""Self-healing serving: supervision, re-hydration, chaos injectors.

Covers the failure paths ``tests/test_serve_shard.py`` leaves alone: hung
workers and per-op deadlines, SIGKILL mid-run, per-shard partial
degradation, the replay-journal re-hydration contract (bit-identical
recovery), supervisor backoff/give-up, and the seeded chaos schedules the
benchmark arms share.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.faults import (
    ReplyDrop,
    ServeFault,
    ServeFaultSchedule,
    SlowReply,
    WorkerCrash,
    WorkerHang,
)
from repro.models import build_model
from repro.serve import (
    DegradationPolicy,
    ProcessTransport,
    ReplayJournal,
    ServeConfig,
    ShardSupervisor,
    ShardedServingEngine,
    SupervisionPolicy,
    TransportError,
    fallback_forecast,
    make_servable,
    run_load,
)
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def bundle(tiny_data):
    set_seed(0)
    model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
    return make_servable("STGCN", model, tiny_data, hidden=8, layers=1)


# Deterministic supervision for tests: the background thread idles (long
# check interval); tests drive restarts explicitly through ``poll_now``.
_TEST_SUPERVISION = SupervisionPolicy(
    check_interval_s=30.0, failure_threshold=1, backoff_base_s=0.0,
    backoff_max_s=0.0, max_restarts=4,
)
_TEST_TIMEOUTS = {"observe": 5.0, "forecast": 5.0, "telemetry": 5.0}


def _sharded(bundle, *, supervised: bool, transport: str = "process"):
    return ShardedServingEngine(
        bundle,
        num_shards=2,
        config=ServeConfig(
            max_wait_s=0.001,
            policy=DegradationPolicy(),
            op_timeouts_s=dict(_TEST_TIMEOUTS),
            supervision=_TEST_SUPERVISION if supervised else None,
        ),
        transport=transport,
    )


def _warm(engine, data):
    series = data.dataset.series
    history = engine.store.history
    engine.store.warm_from(
        series.values[:history], series.time_of_day[:history],
        series.day_of_week[:history],
    )


def _feed(engine, data, start: int, count: int) -> None:
    """Observe ``count`` live rows starting ``start`` steps past the warm window."""
    series = data.dataset.series
    history = engine.store.history
    for offset in range(start, start + count):
        index = history + offset
        engine.observe(
            series.values[index],
            int(series.time_of_day[index]),
            int(series.day_of_week[index]),
        )


def _sigkill(engine, shard: int) -> None:
    process = engine.workers[shard].process
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=5.0)


# ---------------------------------------------------------------------------
# TransportError diagnostics (satellite: shard + op attribution)
# ---------------------------------------------------------------------------
class TestTransportErrorAttribution:
    def test_attrs_and_message_prefix(self):
        error = TransportError("deadline exceeded", shard=1, op="forecast")
        assert error.shard == 1
        assert error.op == "forecast"
        assert "[shard 1 op 'forecast']" in str(error)

    def test_bare_error_has_no_prefix(self):
        error = TransportError("spawn failed")
        assert error.shard is None and error.op is None
        assert str(error) == "spawn failed"

    def test_timeout_carries_shard_and_op(self, bundle):
        config = ServeConfig(op_timeouts_s={"ping": 0.2})
        transport = ProcessTransport(bundle, config=config, shard=3)
        try:
            transport.inject_chaos(("delay_next", 1.0))
            with pytest.raises(TransportError) as excinfo:
                transport.request("ping")
            assert excinfo.value.shard == 3
            assert excinfo.value.op == "ping"
        finally:
            transport.kill()


# ---------------------------------------------------------------------------
# Hung-lane regression (satellite: timeout must not poison the transport)
# ---------------------------------------------------------------------------
class TestHungLaneRecovery:
    def test_timed_out_lane_recovers_cleanly(self, bundle):
        config = ServeConfig(op_timeouts_s={"ping": 0.2})
        transport = ProcessTransport(bundle, config=config)
        try:
            assert transport.request("ping") == "pong"
            transport.inject_chaos(("delay_next", 0.6))
            with pytest.raises(TransportError):
                transport.request("ping")
            # The deadline miss must not mark the lane broken: the stale
            # reply is drained on the next post and the lane keeps working.
            assert transport.alive
            time.sleep(0.8)
            assert transport.request("ping") == "pong"
            assert transport.request("ping") == "pong"
        finally:
            transport.close()

    def test_dropped_reply_times_out_but_lane_survives(self, bundle):
        config = ServeConfig(op_timeouts_s={"ping": 0.2})
        transport = ProcessTransport(bundle, config=config)
        try:
            transport.inject_chaos(("drop_next",))
            with pytest.raises(TransportError):
                transport.request("ping")
            assert transport.alive
            assert transport.request("ping") == "pong"
        finally:
            transport.close()

    def test_per_op_timeouts_from_config(self):
        config = ServeConfig(op_timeouts_s={"forecast": 0.25})
        assert config.op_timeout_s("forecast") == 0.25
        # Unlisted ops fall back to the defaults table.
        assert config.op_timeout_s("publish") > config.op_timeout_s("ping")

    def test_kill_is_immediate(self, bundle):
        transport = ProcessTransport(bundle)
        transport.inject_chaos(("delay_next", 30.0))
        transport.post("ping", ())
        start = time.monotonic()
        transport.kill()  # no stop handshake: must not wait out the hang
        assert time.monotonic() - start < 5.0
        assert not transport.alive


# ---------------------------------------------------------------------------
# Replay journal invariants
# ---------------------------------------------------------------------------
class TestReplayJournal:
    def test_capacity_trims_oldest(self):
        journal = ReplayJournal(num_shards=1, capacity=3)
        for step in range(5):
            journal.record([np.full(2, step, dtype=np.float32)], step, 0)
        entries, upto = journal.snapshot(0)
        assert upto == 5
        assert [entry[0] for entry in entries] == [3, 4, 5]
        assert journal.depth(0) == 3

    def test_since_returns_delta_only(self):
        journal = ReplayJournal(num_shards=2, capacity=8)
        for step in range(4):
            journal.record(
                [np.zeros(2, dtype=np.float32), np.ones(3, dtype=np.float32)],
                step, 0,
            )
        _entries, upto = journal.snapshot(0)
        journal.record(
            [np.zeros(2, dtype=np.float32), np.ones(3, dtype=np.float32)], 9, 1
        )
        delta = journal.since(0, upto)
        assert [entry[0] for entry in delta] == [5]
        assert delta[0][2:] == (9, 1)

    def test_rows_are_copied(self):
        journal = ReplayJournal(num_shards=1, capacity=2)
        row = np.array([1.0, 2.0], dtype=np.float32)
        journal.record([row], 0, 0)
        row[:] = -1.0
        entries, _ = journal.snapshot(0)
        np.testing.assert_array_equal(entries[0][1], [1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayJournal(num_shards=0, capacity=4)
        with pytest.raises(ValueError):
            ReplayJournal(num_shards=2, capacity=0)
        journal = ReplayJournal(num_shards=2, capacity=4)
        with pytest.raises(ValueError):
            journal.record([np.zeros(2)], 0, 0)  # one slice for two shards


# ---------------------------------------------------------------------------
# Supervisor state machine (fake router: no processes involved)
# ---------------------------------------------------------------------------
class _FakeWorker:
    def __init__(self, alive: bool = True):
        self.alive = alive
        self.requests: list = []
        self.killed = False

    def request(self, op, payload=()):
        self.requests.append((op, payload))
        return "ok"

    def kill(self):
        self.killed = True

    def close(self):
        self.killed = True


class _FakeRouter:
    def __init__(self, journal: ReplayJournal, build=None):
        self.workers = [_FakeWorker(alive=False)]
        self.journal = journal
        self._rpc_lock = threading.Lock()
        self.builds = 0
        self._build = build

    def build_worker(self, shard):
        self.builds += 1
        if self._build is None:
            raise RuntimeError("no capacity")
        return self._build()


class TestSupervisorStateMachine:
    def test_gives_up_after_max_restarts(self):
        router = _FakeRouter(ReplayJournal(1, 4))
        policy = SupervisionPolicy(
            failure_threshold=1, backoff_base_s=0.0, backoff_max_s=0.0,
            max_restarts=2,
        )
        supervisor = ShardSupervisor(router, policy)
        for _ in range(5):
            assert supervisor.poll_now() == 0
        assert router.builds == 2  # attempts stop once the budget is spent
        report = supervisor.report()[0]
        assert report["gave_up"] is True
        assert "no capacity" in report["last_error"]
        assert supervisor.total_restarts == 0

    def test_backoff_delays_next_attempt(self):
        router = _FakeRouter(ReplayJournal(1, 4))
        policy = SupervisionPolicy(
            failure_threshold=1, backoff_base_s=30.0, backoff_max_s=60.0,
            max_restarts=8,
        )
        supervisor = ShardSupervisor(router, policy)
        supervisor.poll_now()
        supervisor.poll_now()
        assert router.builds == 1  # second pass lands inside the backoff window

    def test_note_success_resets_failure_streak_and_give_up(self):
        router = _FakeRouter(ReplayJournal(1, 4))
        policy = SupervisionPolicy(
            failure_threshold=2, backoff_base_s=0.0, backoff_max_s=0.0,
            max_restarts=1, probe_liveness=False,
        )
        supervisor = ShardSupervisor(router, policy)
        supervisor.note_failure(0, "forecast", TransportError("x"))
        assert supervisor.poll_now() == 0  # one failure: under the threshold
        assert router.builds == 0
        supervisor.note_failure(0, "forecast", TransportError("x"))
        supervisor.poll_now()
        supervisor.poll_now()
        assert supervisor.report()[0]["gave_up"] is True
        supervisor.note_success(0)
        report = supervisor.report()[0]
        assert report["gave_up"] is False
        assert report["consecutive_failures"] == 0

    def test_successful_restart_replays_journal_in_order(self):
        journal = ReplayJournal(1, 4)
        for step in range(6):  # overflows capacity: only the last 4 survive
            journal.record([np.full(3, step, dtype=np.float32)], step, step % 7)
        replacement = _FakeWorker(alive=True)
        router = _FakeRouter(journal, build=lambda: replacement)
        old = router.workers[0]
        policy = SupervisionPolicy(
            failure_threshold=1, backoff_base_s=0.0, backoff_max_s=0.0,
        )
        supervisor = ShardSupervisor(router, policy)
        assert supervisor.poll_now() == 1
        assert router.workers[0] is replacement
        assert old.killed
        ops = [op for op, _payload in replacement.requests]
        assert ops == ["observe"] * 4
        fed = [payload[0][0] for _op, payload in replacement.requests]
        assert fed == [2.0, 3.0, 4.0, 5.0]  # oldest surviving row first
        assert supervisor.total_restarts == 1
        assert supervisor.report()[0]["restarts"] == 1


# ---------------------------------------------------------------------------
# Per-shard degradation (process workers, no supervision)
# ---------------------------------------------------------------------------
class TestPartialDegradation:
    def test_healthy_shards_keep_model_values(self, bundle, tiny_data):
        degraded = _sharded(bundle, supervised=False)
        reference = _sharded(bundle, supervised=False)
        with degraded, reference:
            for engine in (degraded, reference):
                _warm(engine, tiny_data)
                _feed(engine, tiny_data, 0, 2)
            _sigkill(degraded, 1)
            for engine in (degraded, reference):
                _feed(engine, tiny_data, 2, 1)  # tolerated failure on shard 1
                engine.result = engine.forecast()

            assert degraded.result.source == "fallback"
            assert degraded.result.reason == "error"
            assert reference.result.source == "model"

            # Healthy shard 0: model forecast, bit-identical to the healthy run.
            plan0, plan1 = degraded.partition.plans
            np.testing.assert_array_equal(
                degraded.result.values[:, plan0.owned],
                reference.result.values[:, plan0.owned],
            )
            # Dead shard 1: historical-average fallback for its owned nodes.
            last_tod, last_dow = degraded.last_time()
            spec = bundle.spec
            expected = fallback_forecast(
                bundle.fallback_profile, last_tod, last_dow,
                degraded.result.values.shape[0], spec.steps_per_day,
            )
            np.testing.assert_array_equal(
                degraded.result.values[:, plan1.owned], expected[:, plan1.owned]
            )

            report = degraded.telemetry_report()
            assert report["partial_fallbacks"] >= 1
            assert sum(report["shard_faults"][1].values()) >= 1
            assert report["shard_faults"][0] == {}
            health = {row["shard"]: row for row in report["shard_health"]}
            assert health[0]["alive"] is True
            assert health[1]["alive"] is False
            assert report["restarts"] == 0


# ---------------------------------------------------------------------------
# Supervised recovery (process workers + SIGKILL)
# ---------------------------------------------------------------------------
class TestSupervisedRecovery:
    def test_restart_is_bit_identical_to_unkilled_run(self, bundle, tiny_data):
        killed = _sharded(bundle, supervised=True)
        pristine = _sharded(bundle, supervised=False)
        with killed, pristine:
            for engine in (killed, pristine):
                _warm(engine, tiny_data)
                _feed(engine, tiny_data, 0, 3)
            _sigkill(killed, 0)
            for engine in (killed, pristine):
                _feed(engine, tiny_data, 3, 1)
            degraded = killed.forecast()
            assert degraded.source == "fallback" and degraded.reason == "error"

            assert killed.supervisor.poll_now() == 1

            # Post-restart rows land on the replacement like any other worker.
            for engine in (killed, pristine):
                _feed(engine, tiny_data, 4, 1)
            recovered = killed.forecast()
            expected = pristine.forecast()
            assert recovered.source == "model"
            np.testing.assert_array_equal(recovered.values, expected.values)

            report = killed.telemetry_report()
            assert report["restarts"] == 1
            health = {row["shard"]: row for row in report["shard_health"]}
            assert health[0]["alive"] is True and health[0]["restarts"] == 1

    def test_sigkill_mid_load_answers_every_request(self, bundle, tiny_data):
        engine = _sharded(bundle, supervised=True)
        schedule = ServeFaultSchedule([WorkerCrash(at_request=4, shard=1)])
        with engine:
            result = run_load(
                engine, tiny_data, steps=10, requests_per_step=1, concurrency=1,
                faults=schedule,
            )
        assert result.requests == 10  # no request raised or went unanswered
        assert len(schedule.fired) == 1
        assert schedule.fired[0]["request"] == 4
        assert len(result.timeline) == 10
        # Every answer is model, cache or fallback — never an exception.
        assert {source for _t, source, _r in result.timeline} <= {
            "model", "cache", "fallback"
        }


# ---------------------------------------------------------------------------
# Chaos injectors + seeded schedules
# ---------------------------------------------------------------------------
class TestChaosSchedule:
    def test_seeded_is_reproducible(self):
        first = ServeFaultSchedule.seeded(4, 60, kills=1, hangs=2, drops=1, seed=5)
        second = ServeFaultSchedule.seeded(4, 60, kills=1, hangs=2, drops=1, seed=5)
        assert [f.describe() for f in first.faults] == [
            f.describe() for f in second.faults
        ]
        kinds = sorted(type(f).__name__ for f in first.faults)
        assert kinds == ["ReplyDrop", "WorkerCrash", "WorkerHang", "WorkerHang"]

    def test_seeded_places_faults_in_middle_window(self):
        schedule = ServeFaultSchedule.seeded(2, 100, kills=2, hangs=2, seed=3)
        indices = [f.at_request for f in schedule.faults]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        assert all(10 <= index < 90 for index in indices)
        assert all(0 <= f.shard < 2 for f in schedule.faults)

    def test_seeded_rejects_overfull_window(self):
        with pytest.raises(ValueError):
            ServeFaultSchedule.seeded(2, 10, kills=20, seed=0)

    def test_empty_schedule_is_a_noop(self):
        schedule = ServeFaultSchedule.seeded(2, 50, seed=1)
        assert len(schedule) == 0
        schedule.before_request(0, engine=None)
        assert schedule.fired == []

    def test_each_fault_fires_exactly_once(self):
        class Recording(ServeFault):
            applied = 0

            def apply(self, engine):
                type(self).applied += 1

        schedule = ServeFaultSchedule([Recording(at_request=2)])
        for index in range(6):
            schedule.before_request(index, engine=None)
        assert Recording.applied == 1
        assert schedule.fired[0]["request"] == 2

    def test_crash_rejects_loopback(self, bundle, tiny_data):
        engine = _sharded(bundle, supervised=False, transport="loopback")
        with engine:
            _warm(engine, tiny_data)
            with pytest.raises(ValueError, match="process"):
                WorkerCrash(at_request=0, shard=0).apply(engine)

    def test_fault_validates_shard_index(self, bundle, tiny_data):
        engine = _sharded(bundle, supervised=False, transport="loopback")
        with engine:
            with pytest.raises(ValueError, match="shard 7"):
                WorkerHang(at_request=0, shard=7).apply(engine)

    def test_slow_reply_inflates_latency_without_degrading(self, bundle, tiny_data):
        engine = _sharded(bundle, supervised=False)
        with engine:
            _warm(engine, tiny_data)
            _feed(engine, tiny_data, 0, 1)
            SlowReply(at_request=0, shard=0, seconds=0.3).apply(engine)
            start = time.monotonic()
            result = engine.forecast()
            elapsed = time.monotonic() - start
        assert result.source == "model"  # under the deadline: no degradation
        assert elapsed >= 0.25

    def test_reply_drop_degrades_one_request_then_recovers(self, bundle, tiny_data):
        engine = ShardedServingEngine(
            bundle, num_shards=2,
            config=ServeConfig(
                max_wait_s=0.001,
                op_timeouts_s={"observe": 5.0, "forecast": 0.5},
            ),
            transport="process",
        )
        with engine:
            _warm(engine, tiny_data)
            _feed(engine, tiny_data, 0, 1)
            ReplyDrop(at_request=0, shard=0).apply(engine)
            dropped = engine.forecast()
            assert dropped.source == "fallback" and dropped.reason == "error"
            _feed(engine, tiny_data, 1, 1)
            assert engine.forecast().source == "model"
