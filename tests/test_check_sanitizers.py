"""Runtime sanitizers: mutation guard, anomaly detection, telemetry, zero cost."""

import numpy as np
import pytest

from repro.check import (
    AnomalyError,
    InplaceMutationError,
    SanitizerError,
    detect_anomaly,
    guard_mutations,
    set_event_sink,
)
from repro.obs import MemorySink, Profiler
from repro.tensor import Tensor
from repro.tensor import tensor as tensor_mod


def _engine_is_pristine():
    """The instrumentation points must all be back to their resting state."""
    from types import MemberDescriptorType

    assert tensor_mod._BACKWARD_OP_HOOK is None
    assert isinstance(Tensor.__dict__["data"], MemberDescriptorType)
    assert isinstance(Tensor.__dict__["_make"], staticmethod)
    assert "exp" not in vars(Tensor) or Tensor.exp.__qualname__.startswith("Tensor.")


class TestVersionCounter:
    def test_fresh_tensor_has_version_zero(self):
        assert Tensor(np.ones(3)).version == 0

    def test_copy_bumps_version(self):
        t = Tensor(np.ones(3))
        t.copy_(np.zeros(3))
        t.copy_(np.ones(3))
        assert t.version == 2

    def test_copy_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            Tensor(np.ones(3)).copy_(np.ones(4))

    def test_plain_data_assignment_is_free_when_guard_inactive(self):
        t = Tensor(np.ones(3))
        t.data = np.zeros(3)
        assert t.version == 0  # no guard active: no version accounting


class TestGuardMutations:
    def test_mutation_between_forward_and_backward_raises(self):
        with guard_mutations():
            x = Tensor(np.ones((3, 3)), requires_grad=True)
            out = (x * 2.0).exp().sum()
            x.data = x.data + 1.0
            with pytest.raises(InplaceMutationError, match="op 'mul'"):
                out.backward()

    def test_augmented_assignment_is_caught(self):
        with guard_mutations():
            x = Tensor(np.ones((2, 2)), requires_grad=True)
            out = x.sigmoid().sum()
            x.data += 0.5
            with pytest.raises(InplaceMutationError):
                out.backward()

    def test_clean_pass_is_untouched(self):
        with guard_mutations():
            x = Tensor(np.ones((3, 3)), requires_grad=True)
            (x * 2.0).exp().sum().backward()
        assert np.isfinite(x.grad).all()

    def test_error_names_versions(self):
        with guard_mutations():
            x = Tensor(np.ones(4), requires_grad=True)
            out = (x * 3.0).sum()
            x.copy_(np.zeros(4))
            with pytest.raises(InplaceMutationError, match=r"version \d+ -> \d+"):
                out.backward()

    def test_does_not_nest_with_itself(self):
        with guard_mutations():
            with pytest.raises(RuntimeError, match="does not nest"):
                with guard_mutations():
                    pass

    def test_engine_restored_after_exit(self):
        with guard_mutations():
            pass
        _engine_is_pristine()

    def test_engine_restored_after_trip(self):
        with guard_mutations():
            x = Tensor(np.ones(2), requires_grad=True)
            out = (x * 2.0).sum()
            x.data = np.zeros(2)
            with pytest.raises(InplaceMutationError):
                out.backward()
        _engine_is_pristine()

    def test_emits_telemetry_record(self):
        sink = MemorySink()
        with guard_mutations(sink=sink):
            x = Tensor(np.ones(2), requires_grad=True)
            out = (x * 2.0).sum()
            x.data = np.zeros(2)
            with pytest.raises(InplaceMutationError):
                out.backward()
        [record] = sink.records
        assert record["event"] == "sanitizer"
        assert record["kind"] == "inplace_mutation"
        assert record["op"] == "mul"
        assert record["phase"] == "backward"
        assert record["schema"] == "repro.obs.telemetry/v1"


# The non-finite values below are the point of the tests, not a defect.
@pytest.mark.filterwarnings("ignore:divide by zero:RuntimeWarning")
@pytest.mark.filterwarnings("ignore:invalid value:RuntimeWarning")
class TestDetectAnomaly:
    def test_forward_inf_names_originating_op(self):
        with pytest.raises(AnomalyError, match="op 'div'"):
            with detect_anomaly():
                Tensor(np.array([1.0]), requires_grad=True) / Tensor(np.array([0.0]))

    def test_forward_nan_names_originating_op(self):
        with pytest.raises(AnomalyError, match="op 'log'"):
            with detect_anomaly():
                Tensor(np.array([-1.0]), requires_grad=True).log()

    def test_backward_gradient_anomaly_names_op(self):
        with pytest.raises(AnomalyError, match="backward of op 'sqrt'"):
            with detect_anomaly():
                x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
                x.sqrt().sum().backward()

    def test_finite_graph_passes(self):
        with detect_anomaly():
            x = Tensor(np.ones((3, 3)), requires_grad=True)
            ((x @ x).relu() + 1.0).sum().backward()
        assert np.isfinite(x.grad).all()

    def test_does_not_nest_with_itself(self):
        with detect_anomaly():
            with pytest.raises(RuntimeError, match="does not nest"):
                with detect_anomaly():
                    pass

    def test_engine_restored_after_exit_and_trip(self):
        with pytest.raises(AnomalyError):
            with detect_anomaly():
                Tensor(np.array([1.0])) / Tensor(np.array([0.0]))
        _engine_is_pristine()
        out = Tensor(np.array([1.0])) / Tensor(np.array([0.0]))  # no raise now
        assert np.isinf(out.numpy()).all()

    def test_emits_telemetry_record(self):
        sink = MemorySink()
        with pytest.raises(AnomalyError):
            with detect_anomaly(sink=sink):
                Tensor(np.array([1.0])) / Tensor(np.array([0.0]))
        [record] = sink.records
        assert record["kind"] == "anomaly"
        assert record["op"] == "div"
        assert record["phase"] == "forward"

    def test_global_event_sink_routing(self):
        sink = MemorySink()
        set_event_sink(sink)
        try:
            with pytest.raises(AnomalyError):
                with detect_anomaly():
                    Tensor(np.array([0.0])).log()
        finally:
            set_event_sink(None)
        assert sink.records and sink.records[0]["event"] == "sanitizer"

    def test_error_hierarchy(self):
        assert issubclass(AnomalyError, SanitizerError)
        assert issubclass(InplaceMutationError, SanitizerError)
        assert issubclass(SanitizerError, RuntimeError)


class TestNesting:
    def test_sanitizers_nest_with_each_other(self):
        with detect_anomaly():
            with guard_mutations():
                x = Tensor(np.ones((2, 2)), requires_grad=True)
                (x * 3.0).sum().backward()
        _engine_is_pristine()
        assert np.allclose(x.grad, 3.0)

    def test_guard_nests_inside_profiler(self):
        with Profiler() as prof:
            with guard_mutations():
                x = Tensor(np.ones((4, 4)), requires_grad=True)
                (x @ x).sum().backward()
        _engine_is_pristine()
        assert ("matmul", "backward") in prof.ops

    def test_guard_still_trips_inside_profiler(self):
        with Profiler():
            with guard_mutations():
                x = Tensor(np.ones(3), requires_grad=True)
                out = (x * 2.0).sum()
                x.data = np.zeros(3)
                with pytest.raises(InplaceMutationError):
                    out.backward()
        _engine_is_pristine()


class TestZeroCostWhenDisabled:
    def test_no_version_slots_materialised_outside_guard(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        out = (x * 2.0).sum()
        assert not hasattr(out, "_saved_versions")
        assert not hasattr(x, "_version")
        out.backward()

    def test_tensor_methods_are_plain_functions_outside_contexts(self):
        # The swap pattern must leave no wrappers behind: the class dict
        # holds the original functions, so the disabled path is the
        # unmodified engine.
        for attr in ("exp", "log", "sigmoid", "relu"):
            fn = Tensor.__dict__[attr]
            assert fn.__qualname__ == f"Tensor.{attr}", fn.__qualname__
