"""Module/Parameter registration, traversal and serialization."""

import numpy as np
import pytest

from repro import nn


class TestRegistration:
    def test_parameters_collected(self):
        layer = nn.Linear(3, 4)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules_prefixed(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.Linear(3, 1))
        names = {name for name, _ in model.named_parameters()}
        assert "0.weight" in names and "1.bias" in names

    def test_modulelist_registers(self):
        items = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(items.parameters()) == 6
        assert len(items) == 3

    def test_num_parameters(self):
        layer = nn.Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_modules_iterates_tree(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.Linear(2, 2)))
        assert sum(1 for _ in model.modules()) == 4  # root + 2 children + nested leaf


class TestModes:
    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_modes_propagate_through_nested_containers(self):
        model = nn.Sequential(
            nn.Linear(2, 2),
            nn.Sequential(nn.Dropout(0.5), nn.ModuleList([nn.Dropout(0.3)])),
        )
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_dropout_is_identity_in_eval(self):
        from repro.tensor import Tensor

        dropout = nn.Dropout(0.5)
        x = Tensor(np.arange(1000, dtype=np.float32).reshape(10, 100))
        dropped = dropout(x)
        assert not np.array_equal(dropped.numpy(), x.numpy())  # active in train
        dropout.eval()
        np.testing.assert_array_equal(dropout(x).numpy(), x.numpy())

    def test_inference_context_restores_mode_mix(self):
        from repro.tensor import is_grad_enabled, is_inference_mode

        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.train()
        model._modules["1"].train(False)  # a mixed mode tree
        before = [m.training for m in model.modules()]
        with model.inference():
            assert all(not m.training for m in model.modules())
            assert not is_grad_enabled() and is_inference_mode()
        assert [m.training for m in model.modules()] == before
        assert is_grad_enabled() and not is_inference_mode()

    def test_zero_grad_clears_all(self):
        layer = nn.Linear(2, 2)
        from repro.tensor import Tensor

        layer(Tensor(np.ones((1, 2), np.float32))).sum().backward()
        assert any(p.grad is not None for p in layer.parameters())
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a = nn.Linear(3, 4)
        b = nn.Linear(3, 4)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_is_a_copy(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"][:] = 99.0
        assert not np.any(layer.weight.data == 99.0)

    def test_missing_key_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_unexpected_key_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        layer = nn.Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)


class TestForward:
    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)
