"""The scenario harness: replay parity, graph-version plumbing, reports."""

import json

import numpy as np
import pytest

from repro.data.events import DemandSurge, RoadClosure, Scenario, event_scenario
from repro.models import build_model
from repro.serve import (
    SCENARIO_SCHEMA,
    ModelRegistry,
    ServeConfig,
    ServingEngine,
    ShardedServingEngine,
    SlidingWindowStore,
    make_servable,
    replay_split,
    run_scenario,
    save_scenario_report,
)
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def bundle(tiny_data):
    set_seed(0)
    model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
    return make_servable("STGCN", model, tiny_data, hidden=8, layers=1)


def _engine(bundle):
    registry = ModelRegistry()
    registry.publish(bundle)
    store = SlidingWindowStore.for_bundle(bundle)
    return ServingEngine(registry, store, ServeConfig(max_wait_s=0.001))


def _sharded(bundle, **kwargs):
    return ShardedServingEngine(
        bundle, num_shards=2, config=ServeConfig(max_wait_s=0.001),
        transport="loopback", **kwargs,
    )


class TestGraphVersionPlumbing:
    """Satellite 2: a stale-graph cache hit cannot survive a closure."""

    def test_store_graph_tag_bumps_signature_once_per_change(self, bundle):
        store = SlidingWindowStore.for_bundle(bundle)
        row = np.zeros(bundle.spec.num_nodes, dtype=np.float32)
        before = store.append(row, 0, 0)
        assert store.set_graph_version(0) == before  # same tag: no-op
        bumped = store.set_graph_version(1)
        assert bumped == before + 1
        assert store.set_graph_version(1) == bumped  # idempotent
        assert store.graph_version == 1

    def test_append_with_changed_tag_double_bumps(self, bundle):
        store = SlidingWindowStore.for_bundle(bundle)
        row = np.zeros(bundle.spec.num_nodes, dtype=np.float32)
        first = store.append(row, 0, 0)
        second = store.append(row, 1, 0, graph_version=7)
        assert second == first + 2  # tag change + the append itself

    def test_stale_graph_cache_hit_not_served_across_closure(self, bundle, tiny_data):
        series = tiny_data.dataset.series
        with _engine(bundle) as engine:
            history = engine.store.history
            engine.store.warm_from(
                series.values[:history],
                series.time_of_day[:history],
                series.day_of_week[:history],
            )
            assert engine.forecast().source == "model"
            assert engine.forecast().source == "cache"
            # A closure lands between observations: the rewritten graph
            # must invalidate the cached prediction even though no new
            # observation arrived.
            engine.set_graph_version(1)
            assert len(engine.cache) == 0
            assert engine.forecast().source == "model"

    def test_router_broadcasts_graph_version_to_all_shards(self, bundle, tiny_data):
        series = tiny_data.dataset.series
        with _sharded(bundle) as engine:
            history = engine.store.history
            engine.store.warm_from(
                series.values[:history],
                series.time_of_day[:history],
                series.day_of_week[:history],
            )
            assert engine.forecast().source == "model"
            assert engine.forecast().source == "cache"
            engine.set_graph_version(1)
            assert engine.forecast().source == "model"


class TestReplayParity:
    """Acceptance: empty event list == the existing replay_split path."""

    def test_empty_scenario_matches_replay_split(self, bundle, tiny_data):
        with _engine(bundle) as a:
            base = replay_split(a, tiny_data, steps=6, requests_per_step=3)
            base_signature = a.store.signature()
        with _engine(bundle) as b:
            result = run_scenario(
                b, tiny_data, Scenario("quiet", ()),
                steps=6, requests_per_step=3,
            )
            scenario_signature = b.store.signature()
        serving = result.report["serving"]
        assert serving["sources"] == base["sources"]
        assert serving["fallback_reasons"] == base["fallback_reasons"]
        assert serving["requests"] == base["requests"]
        # Same signature after the drive: same number of appends, no
        # graph-tag bumps — the observe call pattern is identical.
        assert scenario_signature == base_signature
        telemetry = result.report["telemetry"]
        assert telemetry["cache_hits"] == base["telemetry"]["cache_hits"]
        assert telemetry["served_by_model"] == base["telemetry"]["served_by_model"]

    def test_empty_scenario_forecasts_are_reproducible(self, bundle, tiny_data):
        runs = []
        for _ in range(2):
            with _engine(bundle) as engine:
                runs.append(run_scenario(
                    engine, tiny_data, Scenario("quiet", ()),
                    steps=6, requests_per_step=2,
                ))
        np.testing.assert_array_equal(runs[0].forecasts, runs[1].forecasts)
        assert runs[0].applied.series is tiny_data.dataset.series

    def test_empty_scenario_report_has_no_events(self, bundle, tiny_data):
        with _engine(bundle) as engine:
            result = run_scenario(
                engine, tiny_data, Scenario("quiet", ()), steps=6,
            )
        report = result.report
        assert report["events"] == []
        assert report["conditional"] == {} and report["phases"] == {}
        assert report["graph_updates"] == []


class TestScenarioRun:
    def _run(self, bundle, tiny_data, engine, **kwargs):
        adjacency = np.asarray(tiny_data.adjacency)
        scenario = event_scenario("closure-rush", adjacency, 24, seed=3)
        with engine:
            return scenario, run_scenario(
                engine, tiny_data, scenario,
                steps=24, requests_per_step=2, **kwargs,
            )

    def test_closure_rush_through_sharded_serving(self, bundle, tiny_data):
        scenario, result = self._run(bundle, tiny_data, _sharded(bundle))
        report = result.report
        assert report["schema"] == SCENARIO_SCHEMA
        assert {e["type"] for e in report["events"]} == {
            "DemandSurge", "Incident", "RoadClosure"
        }
        # The closure produced a mid-stream rewrite and a restore, each
        # rolled out as a published bundle version.
        assert len(report["graph_updates"]) == 2
        opened, restored = report["graph_updates"]
        assert opened["closed_nodes"] and restored["closed_nodes"] == []
        assert opened["version"] is not None
        assert opened["graph_tag"] == 1 and restored["graph_tag"] == 2
        assert report["telemetry"]["num_shards"] == 2
        json.dumps(report)  # JSON-safe throughout

    def test_conditional_metrics_quadrants(self, bundle, tiny_data):
        _, result = self._run(bundle, tiny_data, _engine(bundle))
        report = result.report
        assert report["overall"]["scored_ticks"] > 0
        assert report["overall"]["mae"] is not None
        for label, cond in report["conditional"].items():
            assert set(cond) == {
                "affected_nodes", "affected_during", "affected_outside",
                "unaffected_during", "unaffected_outside",
            }, label
            assert cond["affected_nodes"] > 0
        # The surge perturbs its nodes during its window, so conditional
        # accuracy must differ from the unaffected quadrant.
        surge = next(
            cond for label, cond in report["conditional"].items()
            if label.startswith("demandsurge")
        )
        assert surge["affected_during"]["count"] > 0
        assert surge["unaffected_during"]["count"] > 0

    def test_phase_split_covers_all_requests(self, bundle, tiny_data):
        _, result = self._run(bundle, tiny_data, _engine(bundle))
        report = result.report
        total = report["serving"]["requests"]
        for label, phases in report["phases"].items():
            assert set(phases) == {"window", "pre", "during", "post"}
            covered = sum(phases[p]["requests"] for p in ("pre", "during", "post"))
            assert covered == total, label
            for phase in ("pre", "during", "post"):
                stats = phases[phase]
                assert set(stats["latency_ms"]) == {"p50", "p95", "p99", "mean"}
                assert 0.0 <= stats["fallback_rate"] <= 1.0

    def test_graph_rewrites_can_be_disabled(self, bundle, tiny_data):
        _, result = self._run(
            bundle, tiny_data, _engine(bundle), graph_rewrites=False
        )
        updates = result.report["graph_updates"]
        assert updates and all(u["version"] is None for u in updates)

    def test_scenario_seed_changes_the_schedule(self, bundle, tiny_data):
        adjacency = np.asarray(tiny_data.adjacency)
        a = event_scenario("closure-rush", adjacency, 24, seed=1)
        b = event_scenario("closure-rush", adjacency, 24, seed=2)
        assert a.events != b.events

    def test_save_scenario_report_roundtrips(self, bundle, tiny_data, tmp_path):
        _, result = self._run(bundle, tiny_data, _engine(bundle))
        path = save_scenario_report(result, tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCENARIO_SCHEMA
        assert loaded["scenario"] == "closure-rush"

    def test_event_starting_past_the_window_is_harmless(self, bundle, tiny_data):
        # An event scheduled after the replayed window clamps to an empty
        # footprint: nothing perturbed, nothing scored conditionally.
        scenario = Scenario(
            "late", (DemandSurge(start=500, nodes=(0,), duration=5, seed=0),)
        )
        with _engine(bundle) as engine:
            result = run_scenario(engine, tiny_data, scenario, steps=6)
        (cond,) = result.report["conditional"].values()
        assert cond["affected_during"]["count"] == 0
        assert cond["affected_during"]["mae"] is None
        np.testing.assert_array_equal(
            result.applied.series.values, tiny_data.dataset.series.values
        )

    def test_negative_event_start_rejected(self, bundle, tiny_data):
        with pytest.raises(ValueError):
            Scenario("bad", (RoadClosure(start=-1, nodes=(0,), seed=0),))
