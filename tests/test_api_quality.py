"""Library-wide API quality gates.

These tests walk the package and enforce documentation/convention rules:
every public module, class and function carries a docstring, and the public
``__all__`` exports resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.optim",
    "repro.graph",
    "repro.data",
    "repro.core",
    "repro.baselines",
    "repro.training",
    "repro.utils",
    "repro.obs",
    "repro.check",
    "repro.faults",
    "repro.serve",
]


def iter_modules():
    for name in PACKAGES:
        package = importlib.import_module(name)
        yield package
        for info in pkgutil.iter_modules(package.__path__, prefix=f"{name}."):
            yield importlib.import_module(info.name)


def public_members(module):
    for attr in dir(module):
        if attr.startswith("_"):
            continue
        obj = getattr(module, attr)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield attr, obj


class TestDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {sorted(set(undocumented))}"

    def test_public_methods_documented_on_key_classes(self):
        from repro.core import D2STGNN
        from repro.data.datasets import TrafficDataset
        from repro.nn import Module
        from repro.training import Trainer

        for cls in (Module, D2STGNN, Trainer, TrafficDataset):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name} undocumented"


class TestExports:
    def test_all_exports_resolve(self):
        for module in iter_modules():
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name}"

    def test_top_level_namespaces(self):
        for sub in ("tensor", "nn", "optim", "graph", "data", "core", "baselines", "training", "utils"):
            assert hasattr(repro, sub)

    def test_version_string(self):
        major, *_ = repro.__version__.split(".")
        assert major.isdigit()
