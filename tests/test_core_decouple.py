"""The DSTF framework layer: residual decomposition identities and variants."""

import numpy as np
import pytest

from repro import nn
from repro.core import CoupledLayer, DecoupledLayer, DiffusionBlock, InherentBlock, SpatialTemporalEmbeddings
from repro.graph import forward_transition
from repro.tensor import Tensor

B, T, N, D = 2, 5, 4, 8


class _RecordingBlock(nn.Module):
    """Toy primary model implementing the (hidden, forecast, backcast)
    contract; records its input so tests can verify the framework's plumbing.
    The framework is supposed to be agnostic to block internals (Sec. 4)."""

    def __init__(self, horizon=3, scale=0.5, needs_supports=False):
        super().__init__()
        self.horizon = horizon
        self.scale = scale
        self.needs_supports = needs_supports
        self.seen = []

    def forward(self, x, supports=None):
        self.seen.append(x.numpy().copy())
        hidden = x * 1.0
        forecast = Tensor.stack([x[:, -1]] * self.horizon, axis=1)
        backcast = x * self.scale
        return hidden, forecast, backcast


@pytest.fixture()
def embeddings():
    return SpatialTemporalEmbeddings(num_nodes=N, steps_per_day=288, dim=D)


@pytest.fixture()
def ctx(embeddings, rng):
    tod = rng.integers(0, 288, size=(B, T))
    dow = rng.integers(0, 7, size=(B, T))
    t_day, t_week = embeddings.time_features(tod, dow)
    return dict(
        t_day=t_day,
        t_week=t_week,
        node_source=embeddings.node_source,
        node_target=embeddings.node_target,
    )


def x_input(rng):
    return Tensor(rng.normal(size=(B, T, N, D)).astype(np.float32))


class TestResidualIdentities:
    def test_residual_equals_input_minus_backcasts(self, ctx, rng):
        """X^{l+1} = (X^l - X_b^dif) - X_b^inh  (Eqs. 1-2)."""
        dif = _RecordingBlock(scale=0.25)
        inh = _RecordingBlock(scale=0.5)
        layer = DecoupledLayer(dif, inh, embed_dim=D, hidden_dim=D, use_gate=False)
        x = x_input(rng)
        residual, _, _ = layer(x, [], **ctx)
        # dif sees X (no gate); backcast_dif = 0.25 * X; inh sees 0.75 X;
        # backcast_inh = 0.5 * 0.75 X; residual = 0.75X - 0.375X = 0.375X.
        np.testing.assert_allclose(residual.numpy(), 0.375 * x.numpy(), rtol=1e-5)
        np.testing.assert_allclose(inh.seen[0], 0.75 * x.numpy(), rtol=1e-5)

    def test_gate_scales_first_input(self, ctx, rng):
        dif = _RecordingBlock()
        inh = _RecordingBlock()
        layer = DecoupledLayer(dif, inh, embed_dim=D, hidden_dim=D, use_gate=True)
        x = x_input(rng)
        layer(x, [], **ctx)
        lam = layer.gate.gate_values(
            ctx["t_day"], ctx["t_week"], ctx["node_source"], ctx["node_target"]
        ).numpy()
        np.testing.assert_allclose(dif.seen[0], lam * x.numpy(), rtol=1e-4)

    def test_wo_res_passes_raw_input_to_both(self, ctx, rng):
        dif = _RecordingBlock(scale=0.25)
        inh = _RecordingBlock(scale=0.5)
        layer = DecoupledLayer(
            dif, inh, embed_dim=D, hidden_dim=D, use_gate=False, use_residual=False
        )
        x = x_input(rng)
        residual, _, _ = layer(x, [], **ctx)
        np.testing.assert_allclose(inh.seen[0], x.numpy())
        np.testing.assert_allclose(residual.numpy(), x.numpy())

    def test_switch_order_swaps_blocks_and_inverts_gate(self, ctx, rng):
        dif = _RecordingBlock()
        inh = _RecordingBlock()
        layer = DecoupledLayer(
            dif, inh, embed_dim=D, hidden_dim=D, diffusion_first=False, use_gate=True
        )
        x = x_input(rng)
        _, f_dif, f_inh = layer(x, [], **ctx)
        # Inherent ran first: its recorded input is the gated one.
        lam = layer.gate.gate_values(
            ctx["t_day"], ctx["t_week"], ctx["node_source"], ctx["node_target"]
        ).numpy()
        np.testing.assert_allclose(inh.seen[0], (1.0 - lam) * x.numpy(), rtol=1e-4)
        # The returned (diffusion, inherent) forecast order is preserved.
        assert f_dif.shape == f_inh.shape

    def test_forecast_order_is_diffusion_then_inherent(self, ctx, rng):
        dif = _RecordingBlock(horizon=2)
        inh = _RecordingBlock(horizon=2)
        layer = DecoupledLayer(dif, inh, embed_dim=D, hidden_dim=D, use_gate=False)
        x = x_input(rng)
        _, f_dif, f_inh = layer(x, [], **ctx)
        # dif saw X and forecasts its own last step; inh saw 0.5X.
        np.testing.assert_allclose(f_dif.numpy()[:, 0], x.numpy()[:, -1], rtol=1e-5)
        np.testing.assert_allclose(f_inh.numpy()[:, 0], 0.5 * x.numpy()[:, -1], rtol=1e-5)


class TestCoupledLayer:
    def test_chains_hidden_states(self, ctx, rng):
        dif = _RecordingBlock()
        inh = _RecordingBlock()
        layer = CoupledLayer(dif, inh)
        x = x_input(rng)
        out, _, _ = layer(x, [], **ctx)
        # inherent consumed the diffusion hidden state (== X for the toy block)
        np.testing.assert_allclose(inh.seen[0], x.numpy())
        np.testing.assert_allclose(out.numpy(), x.numpy())

    def test_switch_order(self, ctx, rng):
        dif = _RecordingBlock()
        inh = _RecordingBlock()
        layer = CoupledLayer(dif, inh, diffusion_first=False)
        x = x_input(rng)
        layer(x, [], **ctx)
        np.testing.assert_allclose(inh.seen[0], x.numpy())
        np.testing.assert_allclose(dif.seen[0], x.numpy())


class TestWithRealBlocks:
    def test_full_layer_end_to_end(self, ctx, rng):
        adjacency = rng.uniform(0.1, 1.0, size=(N, N)).astype(np.float32)
        transition = forward_transition(adjacency)
        dif = DiffusionBlock(D, num_supports=1, k_s=2, k_t=2, horizon=3)
        inh = InherentBlock(D, num_heads=2, horizon=3)
        layer = DecoupledLayer(dif, inh, embed_dim=D, hidden_dim=D)
        x = Tensor(rng.normal(size=(B, T, N, D)).astype(np.float32), requires_grad=True)
        residual, f_dif, f_inh = layer(x, [transition], **ctx)
        assert residual.shape == (B, T, N, D)
        assert f_dif.shape == (B, 3, N, D)
        assert f_inh.shape == (B, 3, N, D)
        (f_dif + f_inh).sum().backward()
        assert x.grad is not None
