"""The analysis package: gate profiles, residual flow, graph statistics."""

import numpy as np
import pytest

from repro.analysis import (
    adaptive_graph,
    dynamic_graphs_at_hour,
    gate_profile,
    graph_stats,
    residual_flow,
    true_diffusion_share,
)
from repro.core import D2STGNN, D2STGNNConfig
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def model(tiny_data):
    set_seed(0)
    config = D2STGNNConfig(
        num_nodes=tiny_data.dataset.num_nodes,
        steps_per_day=tiny_data.steps_per_day,
        hidden_dim=8, embed_dim=4, num_layers=2, num_heads=2, dropout=0.0,
    )
    return D2STGNN(config, tiny_data.adjacency)


@pytest.fixture(scope="module")
def gateless(tiny_data):
    set_seed(0)
    config = D2STGNNConfig(
        num_nodes=tiny_data.dataset.num_nodes,
        steps_per_day=tiny_data.steps_per_day,
        hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
        use_gate=False,
    )
    return D2STGNN(config, tiny_data.adjacency)


class TestGateProfile:
    def test_shape_and_range(self, model, tiny_data):
        profile = gate_profile(model)
        assert profile.by_slot.shape == (
            tiny_data.steps_per_day,
            tiny_data.dataset.num_nodes,
        )
        lo, hi = profile.spread
        assert 0.0 < lo <= hi < 1.0
        assert lo <= profile.mean <= hi

    def test_hourly_bins(self, model, tiny_data):
        hourly = gate_profile(model).hourly(tiny_data.steps_per_day)
        assert hourly.shape == (24,)
        assert np.isfinite(hourly).all()

    def test_requires_gate(self, gateless):
        with pytest.raises(ValueError):
            gate_profile(gateless)

    def test_layer_selection(self, model):
        a = gate_profile(model, layer=0).by_slot
        b = gate_profile(model, layer=1).by_slot
        assert not np.allclose(a, b)  # each layer has its own gate


class TestResidualFlow:
    def test_shape(self, model, tiny_data):
        flow = residual_flow(model, tiny_data, batch_size=8)
        assert flow.magnitudes.shape == (2, 4)
        assert flow.num_layers == 2
        assert np.isfinite(flow.magnitudes).all()
        assert flow.final_residual() >= 0.0

    def test_requires_decoupling(self, tiny_data):
        set_seed(0)
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes,
            steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
            use_decouple=False,
        )
        coupled = D2STGNN(config, tiny_data.adjacency)
        with pytest.raises(ValueError):
            residual_flow(coupled, tiny_data)


class TestGraphTools:
    def test_graph_stats_fields(self, rng):
        static = rng.uniform(0, 1, size=(5, 5)).astype(np.float32)
        static = static / static.sum(axis=1, keepdims=True)
        stats = graph_stats(static.copy(), static)
        assert stats.mean_edge_retention == pytest.approx(1.0, rel=1e-5)
        assert stats.row_entropy > 0
        assert stats.total_mass == pytest.approx(5.0, rel=1e-4)

    def test_graph_stats_requires_edges(self):
        with pytest.raises(ValueError):
            graph_stats(np.zeros((3, 3)), np.zeros((3, 3)))

    def test_dynamic_graphs_at_hour(self, model, tiny_data):
        graphs = dynamic_graphs_at_hour(model, tiny_data, hour=8, count=4)
        n = tiny_data.dataset.num_nodes
        assert graphs.shape[1:] == (n, n)
        assert graphs.shape[0] >= 1
        # Dynamic graphs respect the static skeleton (Eq. 14).
        assert np.all(graphs[:, model.p_forward == 0] == 0)

    def test_dynamic_graphs_requires_learner(self, tiny_data):
        set_seed(0)
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes,
            steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
            use_dynamic_graph=False,
        )
        static_model = D2STGNN(config, tiny_data.adjacency)
        with pytest.raises(ValueError):
            dynamic_graphs_at_hour(static_model, tiny_data, hour=8)

    def test_adaptive_graph(self, model, tiny_data):
        p_apt = adaptive_graph(model)
        n = tiny_data.dataset.num_nodes
        assert p_apt.shape == (n, n)
        np.testing.assert_allclose(p_apt.sum(axis=1), np.ones(n), rtol=1e-4)


class TestTrueShare:
    def test_simulated_share_in_range(self, tiny_dataset):
        share = true_diffusion_share(tiny_dataset.series)
        assert 0.0 < share < 1.0

    def test_external_data_gives_nan(self):
        from repro.data.io import dataset_from_arrays

        dataset = dataset_from_arrays(
            np.ones((50, 3), np.float32), np.ones((3, 3), np.float32)
        )
        assert np.isnan(true_diffusion_share(dataset.series))
