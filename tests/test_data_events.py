"""The scenario event model: determinism, commutativity, composition."""

import dataclasses
import random

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.events import (
    EVENT_SCENARIOS,
    DemandSurge,
    GraphUpdate,
    Incident,
    RegimeShift,
    RoadClosure,
    Scenario,
    SensorBias,
    SpecialEvent,
    apply_events,
    event_scenario,
    seeded_events,
)
from repro.graph import mask_adjacency
from repro.utils.seed import get_rng, set_seed


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("metr-la-sim", num_nodes=12, num_steps=240)


@pytest.fixture(scope="module")
def series(dataset):
    return dataset.series


@pytest.fixture(scope="module")
def adjacency(dataset):
    return np.asarray(dataset.adjacency)


def _timeline_key(timeline):
    """Bit-comparable form of a graph timeline (adjacency as raw bytes)."""
    return [
        (u.tick, u.closed_nodes, u.adjacency.tobytes()) for u in timeline
    ]


def _sample_events(adjacency):
    """One instance of every event type, overlapping in time."""
    return (
        Incident(start=20, node=3, duration=30, severity=0.6, spillover=0.5, seed=1),
        RoadClosure(start=30, nodes=(5,), duration=25, seed=2),
        DemandSurge(start=10, nodes=(0, 1, 2), duration=60, magnitude=0.5, seed=3),
        SpecialEvent(start=25, center=7, duration=40, hops=2, magnitude=0.6, seed=4),
        SensorBias(start=40, nodes=(8, 9), rate=0.04, seed=5),
        RegimeShift(start=100, shift_steps=6, level=1.05, seed=6),
    )


class TestZeroEventIdentity:
    def test_empty_event_list_returns_the_same_series_object(self, series, adjacency):
        applied = apply_events(series, (), adjacency)
        assert applied.series is series
        assert applied.base is series
        assert applied.labels == () and applied.masks == {}
        assert applied.graph_timeline == ()

    def test_empty_scenario_is_byte_identical(self, series, adjacency):
        applied = apply_events(series, (), adjacency)
        assert applied.series.values.tobytes() == series.values.tobytes()

    def test_applying_events_consumes_no_shared_rng_draws(self, series, adjacency):
        # Every event type draws only from its own declared seed (R011):
        # applying a full scenario must leave the shared seeded stream
        # exactly where it was.
        set_seed(99)
        apply_events(series, _sample_events(adjacency), adjacency)
        after_apply = get_rng().random(8)
        set_seed(99)
        np.testing.assert_array_equal(after_apply, get_rng().random(8))


class TestDeterminism:
    def test_same_seed_same_schedule(self, adjacency):
        kwargs = dict(incidents=2, closures=1, surges=1, specials=1, biases=1, shifts=1)
        first = seeded_events(adjacency, 240, seed=11, **kwargs)
        second = seeded_events(adjacency, 240, seed=11, **kwargs)
        assert first == second
        assert first != seeded_events(adjacency, 240, seed=12, **kwargs)

    def test_same_seed_same_applied_series(self, series, adjacency):
        events = seeded_events(adjacency, 240, incidents=1, closures=1, surges=1, seed=7)
        a = apply_events(series, events, adjacency)
        b = apply_events(series, events, adjacency)
        assert a.series.values.tobytes() == b.series.values.tobytes()
        assert a.series.failure_mask.tobytes() == b.series.failure_mask.tobytes()

    def test_event_scenario_is_deterministic(self, adjacency):
        a = event_scenario("closure-rush", adjacency, 48, seed=5)
        b = event_scenario("closure-rush", adjacency, 48, seed=5)
        assert a == b
        assert a.events and any(isinstance(e, RoadClosure) for e in a.events)

    def test_unknown_scenario_lists_available_names(self, adjacency):
        with pytest.raises(KeyError, match="closure-rush"):
            event_scenario("nope", adjacency, 48)

    def test_every_named_scenario_builds_and_applies(self, series, adjacency):
        for name in EVENT_SCENARIOS:
            scenario = event_scenario(name, adjacency, 64, seed=1)
            applied = apply_events(series, scenario.events, adjacency)
            assert np.isfinite(applied.series.values).all(), name


class TestCommutativity:
    def test_shuffled_event_order_is_bit_identical(self, series, adjacency):
        events = list(_sample_events(adjacency))
        reference = apply_events(series, tuple(events), adjacency)
        shuffler = random.Random(13)
        for _ in range(4):
            shuffler.shuffle(events)
            permuted = apply_events(series, tuple(events), adjacency)
            assert (
                permuted.series.values.tobytes()
                == reference.series.values.tobytes()
            )
            assert permuted.masks.keys() == reference.masks.keys()
            for label in reference.masks:
                np.testing.assert_array_equal(
                    permuted.masks[label], reference.masks[label]
                )
            assert _timeline_key(permuted.graph_timeline) == _timeline_key(
                reference.graph_timeline
            )

    def test_overlapping_closures_union_commutes(self, series, adjacency):
        a = RoadClosure(start=10, nodes=(2, 3), duration=30, seed=1)
        b = RoadClosure(start=20, nodes=(3, 4), duration=30, seed=2)
        ab = apply_events(series, (a, b), adjacency)
        ba = apply_events(series, (b, a), adjacency)
        assert ab.series.values.tobytes() == ba.series.values.tobytes()
        assert _timeline_key(ab.graph_timeline) == _timeline_key(ba.graph_timeline)
        # While both are active the closed set is the union.
        ticks = {u.tick: u.closed_nodes for u in ab.graph_timeline}
        assert ticks[20] == (2, 3, 4)


class TestEventSemantics:
    def test_incident_slows_site_and_upstream(self, series, adjacency):
        event = Incident(start=30, node=3, duration=30, severity=0.7, seed=0)
        applied = apply_events(series, (event,), adjacency)
        mask = applied.masks[applied.labels[0]]
        assert mask[45, 3]
        changed = applied.series.values != series.values
        assert changed[mask].any()
        assert not changed[~mask].any()
        # Speeds only go down under a capacity cut.
        assert (applied.series.values <= series.values + 1e-5).all()

    def test_closure_nulls_readings_and_flags_failure(self, series, adjacency):
        event = RoadClosure(start=30, nodes=(5,), duration=20, seed=0)
        applied = apply_events(series, (event,), adjacency)
        assert (applied.series.values[30:50, 5] == 0.0).all()
        assert applied.series.failure_mask[30:50, 5].all()
        np.testing.assert_array_equal(
            applied.series.failure_mask[:30], series.failure_mask[:30]
        )

    def test_closure_timeline_masks_and_restores_adjacency(self, series, adjacency):
        event = RoadClosure(start=30, nodes=(5,), duration=20, seed=0)
        applied = apply_events(series, (event,), adjacency)
        assert [u.tick for u in applied.graph_timeline] == [30, 50]
        closed, restored = applied.graph_timeline
        assert isinstance(closed, GraphUpdate)
        np.testing.assert_array_equal(
            closed.adjacency, mask_adjacency(adjacency, nodes=(5,))
        )
        np.testing.assert_array_equal(restored.adjacency, adjacency)
        assert restored.closed_nodes == ()

    def test_demand_surge_is_flat_over_window(self, series, adjacency):
        event = DemandSurge(start=10, nodes=(0, 1), duration=40, magnitude=0.5, seed=0)
        applied = apply_events(series, (event,), adjacency)
        inside = applied.series.values[10:50, 0]
        outside = applied.series.values[50:, 0]
        assert not np.allclose(inside, series.values[10:50, 0])
        np.testing.assert_array_equal(outside, series.values[50:, 0])

    def test_special_event_decays_with_hops(self, adjacency):
        event = SpecialEvent(
            start=10, center=7, duration=40, hops=2, magnitude=0.6, decay=0.5, seed=0
        )
        nodes = event.affected_nodes(adjacency)
        assert 7 in nodes
        # At the temporal peak the center is hit hardest: its speed factor
        # is the smallest among the affected nodes (severity decays per ring).
        factor = event._factor_field(60, adjacency, "speed")
        peak = factor.min(axis=0)
        ring1 = [n for n in nodes if n != 7]
        assert all(peak[7] <= peak[n] for n in ring1)
        untouched = [n for n in range(adjacency.shape[0]) if n not in nodes]
        assert all(peak[n] == 1.0 for n in untouched)

    def test_sensor_bias_drifts_monotonically(self, series, adjacency):
        event = SensorBias(start=50, nodes=(8,), rate=0.05, seed=1)
        applied = apply_events(series, (event,), adjacency)
        offset = np.abs(
            applied.series.values[:, 8].astype(np.float64)
            - series.values[:, 8].astype(np.float64)
        )
        assert offset[:50].max() == 0.0
        # Relative drift grows with time; compare the ramp ends.
        late = offset[200:].mean()
        early = offset[50:80].mean()
        assert late > early

    def test_regime_shift_rebases_time(self, series, adjacency):
        event = RegimeShift(start=100, shift_steps=6, level=1.0, seed=0)
        applied = apply_events(series, (event,), adjacency)
        np.testing.assert_array_equal(
            applied.series.values[:100], series.values[:100]
        )
        np.testing.assert_allclose(
            applied.series.values[120], series.values[114], rtol=1e-5
        )

    def test_values_respect_speed_limit_clip(self, series, adjacency):
        surge = DemandSurge(start=0, nodes=tuple(range(12)), duration=240,
                            magnitude=2.0, seed=0)
        applied = apply_events(series, (surge,), adjacency)
        limit = series.config.speed_limit
        assert applied.series.values.max() <= limit + 1e-5
        assert applied.series.values.min() >= 0.0

    def test_effect_mask_matches_window_and_nodes(self, adjacency):
        event = DemandSurge(start=10, nodes=(0, 4), duration=20, magnitude=0.3, seed=0)
        mask = event.effect_mask(60, adjacency)
        assert mask.shape == (60, 12)
        assert mask[10:30, 0].all() and mask[10:30, 4].all()
        assert not mask[:10].any() and not mask[30:].any()
        assert not mask[:, 1].any()

    def test_describe_is_json_safe(self, adjacency):
        import json

        for event in _sample_events(adjacency):
            payload = event.describe()
            assert payload["type"] == type(event).__name__
            json.dumps(payload)


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            Incident(start=-1, node=0, seed=0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            RoadClosure(start=0, nodes=(0,), duration=0, seed=0)

    def test_out_of_range_nodes_rejected(self, series, adjacency):
        event = DemandSurge(start=0, nodes=(99,), duration=10, seed=0)
        with pytest.raises(ValueError, match="nodes"):
            apply_events(series, (event,), adjacency)

    def test_adjacency_shape_mismatch_rejected(self, series):
        with pytest.raises(ValueError, match="nodes"):
            apply_events(
                series,
                (DemandSurge(start=0, nodes=(0,), duration=10, seed=0),),
                np.eye(5, dtype=np.float32),
            )

    def test_scenario_events_coerced_to_tuple(self):
        scenario = Scenario("x", [RoadClosure(start=0, nodes=(0,), seed=0)])
        assert isinstance(scenario.events, tuple)

    def test_events_are_frozen(self, adjacency):
        event = Incident(start=5, node=1, seed=0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.start = 7


class TestMaskAdjacency:
    def test_node_masking_zeroes_rows_and_cols(self, adjacency):
        masked = mask_adjacency(adjacency, nodes=(3,))
        assert masked[3, :3].sum() + masked[3, 4:].sum() == 0.0
        assert masked[:3, 3].sum() + masked[4:, 3].sum() == 0.0
        assert masked[3, 3] == adjacency[3, 3]  # self-loop kept

    def test_edge_masking_is_symmetric(self, adjacency):
        masked = mask_adjacency(adjacency, edges=((0, 1),))
        assert masked[0, 1] == 0.0 and masked[1, 0] == 0.0

    def test_base_adjacency_untouched(self, adjacency):
        before = adjacency.copy()
        mask_adjacency(adjacency, nodes=(0, 1))
        np.testing.assert_array_equal(adjacency, before)

    def test_out_of_range_node_rejected(self, adjacency):
        with pytest.raises(ValueError):
            mask_adjacency(adjacency, nodes=(99,))
