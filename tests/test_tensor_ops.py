"""Gradient checks for every primitive op of the autodiff engine."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck


def t(shape, rng, scale=1.0):
    return Tensor((rng.normal(size=shape) * scale).astype(np.float32), requires_grad=True)


class TestElementwiseBinary:
    def test_add(self, rng):
        a, b = t((3, 4), rng), t((3, 4), rng)
        gradcheck(lambda a, b: a + b, [a, b])

    def test_add_broadcast(self, rng):
        a, b = t((3, 4), rng), t((4,), rng)
        gradcheck(lambda a, b: a + b, [a, b])

    def test_add_scalar(self, rng):
        a = t((3,), rng)
        gradcheck(lambda a: a + 2.5, [a])

    def test_sub(self, rng):
        a, b = t((2, 3), rng), t((2, 3), rng)
        gradcheck(lambda a, b: a - b, [a, b])

    def test_rsub(self, rng):
        a = t((3,), rng)
        gradcheck(lambda a: 1.0 - a, [a])

    def test_mul(self, rng):
        a, b = t((3, 4), rng), t((3, 4), rng)
        gradcheck(lambda a, b: a * b, [a, b])

    def test_mul_broadcast_rows(self, rng):
        a, b = t((3, 4), rng), t((3, 1), rng)
        gradcheck(lambda a, b: a * b, [a, b])

    def test_div(self, rng):
        a, b = t((3, 3), rng), Tensor(rng.uniform(1.0, 2.0, (3, 3)).astype(np.float32), requires_grad=True)
        gradcheck(lambda a, b: a / b, [a, b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, (4,)).astype(np.float32), requires_grad=True)
        gradcheck(lambda a: a**3.0, [a])

    def test_pow_requires_scalar(self, rng):
        a = t((2,), rng)
        with pytest.raises(TypeError):
            a ** np.array([1.0, 2.0])

    def test_neg(self, rng):
        a = t((5,), rng)
        gradcheck(lambda a: -a, [a])


class TestUnary:
    def test_exp(self, rng):
        gradcheck(lambda a: a.exp(), [t((3, 3), rng, 0.5)])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, (3, 3)).astype(np.float32), requires_grad=True)
        gradcheck(lambda a: a.log(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, (4,)).astype(np.float32), requires_grad=True)
        gradcheck(lambda a: a.sqrt(), [a])

    def test_tanh(self, rng):
        gradcheck(lambda a: a.tanh(), [t((3, 4), rng)])

    def test_sigmoid(self, rng):
        gradcheck(lambda a: a.sigmoid(), [t((3, 4), rng)])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor(np.array([-100.0, 0.0, 100.0], dtype=np.float32))
        out = a.sigmoid().numpy()
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[2] == pytest.approx(1.0, abs=1e-6)

    def test_relu(self, rng):
        a = Tensor(np.array([-1.0, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        gradcheck(lambda a: a.relu(), [a])

    def test_abs(self, rng):
        a = Tensor(np.array([-1.5, 0.7, 2.0], dtype=np.float32), requires_grad=True)
        gradcheck(lambda a: a.abs(), [a])

    def test_leaky_relu(self, rng):
        a = Tensor(np.array([-2.0, 1.0], dtype=np.float32), requires_grad=True)
        gradcheck(lambda a: a.leaky_relu(0.1), [a])
        out = a.leaky_relu(0.1).numpy()
        assert out[0] == pytest.approx(-0.2)


class TestMatmul:
    def test_2d(self, rng):
        a, b = t((3, 4), rng), t((4, 5), rng)
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_batched(self, rng):
        a, b = t((2, 3, 4), rng), t((2, 4, 5), rng)
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_broadcast_batch(self, rng):
        a, b = t((2, 5, 3, 4), rng), t((4, 6), rng)
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_left_constant(self, rng):
        p = np.eye(3, dtype=np.float32) * 2.0
        b = t((3, 4), rng)
        gradcheck(lambda b: Tensor(p) @ b, [b])
        np.testing.assert_allclose((Tensor(p) @ b).numpy(), 2.0 * b.numpy(), rtol=1e-5)


class TestReductions:
    def test_sum_all(self, rng):
        gradcheck(lambda a: a.sum(), [t((3, 4), rng)])

    def test_sum_axis(self, rng):
        gradcheck(lambda a: a.sum(axis=1), [t((3, 4), rng)])

    def test_sum_keepdims(self, rng):
        gradcheck(lambda a: a.sum(axis=0, keepdims=True), [t((3, 4), rng)])

    def test_mean_matches_numpy(self, rng):
        a = t((3, 4), rng)
        np.testing.assert_allclose(a.mean(axis=1).numpy(), a.numpy().mean(axis=1), rtol=1e-5)

    def test_mean_grad(self, rng):
        gradcheck(lambda a: a.mean(axis=(0, 1)), [t((3, 4), rng)])

    def test_max_axis(self, rng):
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(np.float32), requires_grad=True)
        gradcheck(lambda a: a.max(axis=1), [a])

    def test_max_value(self, rng):
        a = t((3, 4), rng)
        np.testing.assert_allclose(a.max().numpy(), a.numpy().max())


class TestShape:
    def test_reshape(self, rng):
        gradcheck(lambda a: a.reshape(2, 6) * 2.0, [t((3, 4), rng)])

    def test_transpose(self, rng):
        gradcheck(lambda a: a.transpose(1, 0).exp(), [t((3, 4), rng)])

    def test_transpose_nd(self, rng):
        gradcheck(lambda a: a.transpose(0, 2, 1, 3).tanh(), [t((2, 3, 4, 2), rng)])

    def test_swapaxes(self, rng):
        a = t((2, 3, 4), rng)
        np.testing.assert_array_equal(a.swapaxes(1, 2).numpy(), a.numpy().swapaxes(1, 2))

    def test_expand_dims_squeeze_roundtrip(self, rng):
        a = t((3, 4), rng)
        out = a.expand_dims(1).squeeze(1)
        np.testing.assert_array_equal(out.numpy(), a.numpy())
        gradcheck(lambda a: a.expand_dims(0) * 3.0, [a])

    def test_broadcast_to(self, rng):
        a = t((1, 4), rng)
        gradcheck(lambda a: a.broadcast_to((3, 4)) * 2.0, [a])

    def test_getitem_slice(self, rng):
        gradcheck(lambda a: a[1:3, ::2], [t((4, 6), rng)])

    def test_getitem_int_array(self, rng):
        a = t((5, 3), rng)
        idx = np.array([0, 2, 2, 4])
        gradcheck(lambda a: a[idx], [a])

    def test_getitem_repeated_index_accumulates(self, rng):
        a = t((3,), rng)
        out = a[np.array([1, 1, 1])].sum()
        out.backward()
        assert a.grad[1] == pytest.approx(3.0)


class TestCombinators:
    def test_concatenate(self, rng):
        a, b = t((2, 3), rng), t((2, 5), rng)
        gradcheck(lambda a, b: Tensor.concatenate([a, b], axis=1).tanh(), [a, b])

    def test_stack(self, rng):
        a, b = t((2, 3), rng), t((2, 3), rng)
        gradcheck(lambda a, b: Tensor.stack([a, b], axis=1) * 2.0, [a, b])

    def test_where(self, rng):
        a, b = t((4,), rng), t((4,), rng)
        cond = np.array([True, False, True, False])
        gradcheck(lambda a, b: Tensor.where(cond, a, b), [a, b])

    def test_zeros_ones(self):
        assert Tensor.zeros((2, 3)).numpy().sum() == 0.0
        assert Tensor.ones((2, 3)).numpy().sum() == 6.0
