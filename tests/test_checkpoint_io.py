"""Model checkpointing and dataset import/export."""

import numpy as np
import pytest

from repro import nn
from repro.core import D2STGNN, D2STGNNConfig
from repro.data import build_forecasting_data, load_dataset
from repro.data.io import dataset_from_arrays, load_dataset_file, save_dataset
from repro.training import predict_split
from repro.utils import CheckpointError, load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_roundtrip_restores_parameters(self, tmp_path):
        a = nn.Linear(4, 3)
        b = nn.Linear(4, 3)
        path = save_checkpoint(tmp_path / "model", a)
        assert path.suffix == ".npz"
        load_checkpoint(path, b)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)

    def test_metadata_recorded(self, tmp_path):
        model = nn.Linear(2, 2)
        path = save_checkpoint(tmp_path / "m.npz", model, extra={"note": "hi"})
        info = load_checkpoint(path)
        assert info["meta"]["model_class"] == "Linear"
        assert info["meta"]["extra"]["note"] == "hi"
        assert info["meta"]["num_parameters"] == 6

    def test_dataclass_config_serialised(self, tmp_path, tiny_data):
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes,
            steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_heads=2, num_layers=1,
        )
        model = D2STGNN(config, tiny_data.adjacency)
        path = save_checkpoint(tmp_path / "d2", model, config)
        info = load_checkpoint(path)
        assert info["meta"]["config"]["hidden_dim"] == 8
        # A fresh model rebuilt from the stored config round-trips exactly.
        rebuilt = D2STGNN(D2STGNNConfig(**info["meta"]["config"]), tiny_data.adjacency)
        load_checkpoint(path, rebuilt)
        batch = next(iter(tiny_data.loader("test", batch_size=2)))
        model.eval()
        rebuilt.eval()
        np.testing.assert_array_equal(
            model(batch.x, batch.tod, batch.dow).numpy(),
            rebuilt(batch.x, batch.tod, batch.dow).numpy(),
        )

    def test_wrong_class_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path / "lin", nn.Linear(2, 2))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, nn.LayerNorm(2))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_non_checkpoint_npz_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_invalid_config_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_checkpoint(tmp_path / "x", nn.Linear(2, 2), config="not-a-config")


class TestDatasetIO:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        path = save_dataset(tmp_path / "ds", tiny_dataset)
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.series.values, tiny_dataset.series.values)
        np.testing.assert_array_equal(loaded.adjacency, tiny_dataset.adjacency)
        np.testing.assert_array_equal(
            loaded.series.diffusion, tiny_dataset.series.diffusion
        )
        assert loaded.spec.kind == tiny_dataset.spec.kind
        assert loaded.spec.name == tiny_dataset.spec.name

    def test_loaded_dataset_feeds_pipeline(self, tmp_path, tiny_dataset):
        path = save_dataset(tmp_path / "ds", tiny_dataset)
        data = build_forecasting_data(load_dataset_file(path))
        batch = next(iter(data.loader("train", batch_size=2)))
        assert batch.x.shape[0] == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_file(tmp_path / "missing.npz")


class TestExternalArrays:
    def test_wraps_real_style_arrays(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(20, 65, size=(600, 5)).astype(np.float32)
        values[100:110, 2] = 0.0  # an outage
        adjacency = rng.uniform(0, 1, size=(5, 5)).astype(np.float32)
        dataset = dataset_from_arrays(values, adjacency, kind="speed")
        assert dataset.num_nodes == 5
        assert dataset.series.failure_mask[105, 2]
        data = build_forecasting_data(dataset)
        assert len(data.train) > 0

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            dataset_from_arrays(np.zeros((10, 3, 1)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            dataset_from_arrays(np.ones((10, 3)), np.zeros((4, 4)))
        with pytest.raises(ValueError):
            dataset_from_arrays(np.ones((10, 3)), np.zeros((3, 3)), kind="volume")

    def test_external_dataset_trains_a_model(self):
        rng = np.random.default_rng(1)
        t = np.arange(400)
        base = 40 + 10 * np.sin(2 * np.pi * t / 288)[:, None]
        values = (base + rng.normal(0, 1, size=(400, 4))).astype(np.float32)
        adjacency = np.ones((4, 4), dtype=np.float32)
        data = build_forecasting_data(dataset_from_arrays(values, adjacency))
        config = D2STGNNConfig(
            num_nodes=4, steps_per_day=288, hidden_dim=8, embed_dim=4,
            num_layers=1, num_heads=2, dropout=0.0,
        )
        model = D2STGNN(config, data.adjacency)
        prediction, target = predict_split(model, data, split="test")
        assert prediction.shape == target.shape


class TestTimeChannels:
    def test_extra_channels_appended(self, tiny_dataset):
        data = build_forecasting_data(tiny_dataset, time_channels=True)
        batch = next(iter(data.loader("train", batch_size=2)))
        assert batch.x.shape[-1] == 3
        assert batch.y.shape[-1] == 1  # targets stay single-channel
        # Channel 1 is time-of-day in [0, 1).
        assert 0.0 <= batch.x[..., 1].min() and batch.x[..., 1].max() < 1.0

    def test_model_consumes_time_channels(self, tiny_dataset):
        data = build_forecasting_data(tiny_dataset, time_channels=True)
        config = D2STGNNConfig(
            num_nodes=tiny_dataset.num_nodes, steps_per_day=tiny_dataset.steps_per_day,
            in_channels=3, hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2,
            dropout=0.0,
        )
        model = D2STGNN(config, data.adjacency)
        batch = next(iter(data.loader("train", batch_size=2)))
        assert model(batch.x, batch.tod, batch.dow).shape == (2, 12, tiny_dataset.num_nodes, 1)
