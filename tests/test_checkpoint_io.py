"""Model checkpointing, dataset import/export and crash-safe persistence."""

import json
import zipfile

import numpy as np
import pytest

from repro import nn
from repro.core import D2STGNN, D2STGNNConfig
from repro.data import build_forecasting_data, load_dataset
from repro.data.io import dataset_from_arrays, load_dataset_file, save_dataset
from repro.obs import FileSink, read_jsonl
from repro.training import predict_split
from repro.utils import CheckpointError, load_checkpoint, save_checkpoint
from repro.utils.atomic import atomic_savez, atomic_write
from repro.utils.checkpoint import load_training_checkpoint, save_training_checkpoint


class TestCheckpoint:
    def test_roundtrip_restores_parameters(self, tmp_path):
        a = nn.Linear(4, 3)
        b = nn.Linear(4, 3)
        path = save_checkpoint(tmp_path / "model", a)
        assert path.suffix == ".npz"
        load_checkpoint(path, b)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)

    def test_metadata_recorded(self, tmp_path):
        model = nn.Linear(2, 2)
        path = save_checkpoint(tmp_path / "m.npz", model, extra={"note": "hi"})
        info = load_checkpoint(path)
        assert info["meta"]["model_class"] == "Linear"
        assert info["meta"]["extra"]["note"] == "hi"
        assert info["meta"]["num_parameters"] == 6

    def test_dataclass_config_serialised(self, tmp_path, tiny_data):
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes,
            steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_heads=2, num_layers=1,
        )
        model = D2STGNN(config, tiny_data.adjacency)
        path = save_checkpoint(tmp_path / "d2", model, config)
        info = load_checkpoint(path)
        assert info["meta"]["config"]["hidden_dim"] == 8
        # A fresh model rebuilt from the stored config round-trips exactly.
        rebuilt = D2STGNN(D2STGNNConfig(**info["meta"]["config"]), tiny_data.adjacency)
        load_checkpoint(path, rebuilt)
        batch = next(iter(tiny_data.loader("test", batch_size=2)))
        model.eval()
        rebuilt.eval()
        np.testing.assert_array_equal(
            model(batch.x, batch.tod, batch.dow).numpy(),
            rebuilt(batch.x, batch.tod, batch.dow).numpy(),
        )

    def test_wrong_class_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path / "lin", nn.Linear(2, 2))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, nn.LayerNorm(2))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_non_checkpoint_npz_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_invalid_config_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_checkpoint(tmp_path / "x", nn.Linear(2, 2), config="not-a-config")


class TestDatasetIO:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        path = save_dataset(tmp_path / "ds", tiny_dataset)
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.series.values, tiny_dataset.series.values)
        np.testing.assert_array_equal(loaded.adjacency, tiny_dataset.adjacency)
        np.testing.assert_array_equal(
            loaded.series.diffusion, tiny_dataset.series.diffusion
        )
        assert loaded.spec.kind == tiny_dataset.spec.kind
        assert loaded.spec.name == tiny_dataset.spec.name

    def test_loaded_dataset_feeds_pipeline(self, tmp_path, tiny_dataset):
        path = save_dataset(tmp_path / "ds", tiny_dataset)
        data = build_forecasting_data(load_dataset_file(path))
        batch = next(iter(data.loader("train", batch_size=2)))
        assert batch.x.shape[0] == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_file(tmp_path / "missing.npz")


class TestExternalArrays:
    def test_wraps_real_style_arrays(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(20, 65, size=(600, 5)).astype(np.float32)
        values[100:110, 2] = 0.0  # an outage
        adjacency = rng.uniform(0, 1, size=(5, 5)).astype(np.float32)
        dataset = dataset_from_arrays(values, adjacency, kind="speed")
        assert dataset.num_nodes == 5
        assert dataset.series.failure_mask[105, 2]
        data = build_forecasting_data(dataset)
        assert len(data.train) > 0

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            dataset_from_arrays(np.zeros((10, 3, 1)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            dataset_from_arrays(np.ones((10, 3)), np.zeros((4, 4)))
        with pytest.raises(ValueError):
            dataset_from_arrays(np.ones((10, 3)), np.zeros((3, 3)), kind="volume")

    def test_external_dataset_trains_a_model(self):
        rng = np.random.default_rng(1)
        t = np.arange(400)
        base = 40 + 10 * np.sin(2 * np.pi * t / 288)[:, None]
        values = (base + rng.normal(0, 1, size=(400, 4))).astype(np.float32)
        adjacency = np.ones((4, 4), dtype=np.float32)
        data = build_forecasting_data(dataset_from_arrays(values, adjacency))
        config = D2STGNNConfig(
            num_nodes=4, steps_per_day=288, hidden_dim=8, embed_dim=4,
            num_layers=1, num_heads=2, dropout=0.0,
        )
        model = D2STGNN(config, data.adjacency)
        prediction, target = predict_split(model, data, split="test")
        assert prediction.shape == target.shape


class TestTimeChannels:
    def test_extra_channels_appended(self, tiny_dataset):
        data = build_forecasting_data(tiny_dataset, time_channels=True)
        batch = next(iter(data.loader("train", batch_size=2)))
        assert batch.x.shape[-1] == 3
        assert batch.y.shape[-1] == 1  # targets stay single-channel
        # Channel 1 is time-of-day in [0, 1).
        assert 0.0 <= batch.x[..., 1].min() and batch.x[..., 1].max() < 1.0

    def test_model_consumes_time_channels(self, tiny_dataset):
        data = build_forecasting_data(tiny_dataset, time_channels=True)
        config = D2STGNNConfig(
            num_nodes=tiny_dataset.num_nodes, steps_per_day=tiny_dataset.steps_per_day,
            in_channels=3, hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2,
            dropout=0.0,
        )
        model = D2STGNN(config, data.adjacency)
        batch = next(iter(data.loader("train", batch_size=2)))
        assert model(batch.x, batch.tod, batch.dow).shape == (2, 12, tiny_dataset.num_nodes, 1)


def _truncate(path, keep=200):
    data = path.read_bytes()
    path.write_bytes(data[: min(keep, len(data) // 2)])


class TestCorruptedArchives:
    """Every malformed on-disk state surfaces as CheckpointError, not a raw
    zipfile/KeyError traceback."""

    def test_truncated_checkpoint(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", nn.Linear(4, 4))
        _truncate(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_garbage_bytes_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_corrupted_meta_json(self, tmp_path):
        path = tmp_path / "bad_meta.npz"
        garbage = np.frombuffer(b"{not json", dtype=np.uint8)
        np.savez(path, __checkpoint_meta__=garbage)  # lint: disable=R006
        with pytest.raises(CheckpointError, match="metadata"):
            load_checkpoint(path)

    def test_unknown_format_version(self, tmp_path):
        path = tmp_path / "future.npz"
        meta = np.frombuffer(
            json.dumps({"format_version": 999, "model_class": "Linear"}).encode(),
            dtype=np.uint8,
        )
        np.savez(path, __checkpoint_meta__=meta)  # lint: disable=R006
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_truncated_dataset(self, tmp_path, tiny_dataset):
        path = save_dataset(tmp_path / "ds", tiny_dataset)
        _truncate(path)
        with pytest.raises(CheckpointError):
            load_dataset_file(path)

    def test_dataset_missing_meta(self, tmp_path):
        path = tmp_path / "no_meta.npz"
        np.savez(path, values=np.zeros((4, 2)))  # lint: disable=R006
        with pytest.raises(CheckpointError, match="meta"):
            load_dataset_file(path)

    def test_dataset_format_mismatch(self, tmp_path, tiny_dataset):
        path = save_dataset(tmp_path / "ds", tiny_dataset)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode("utf-8"))
        meta["format_version"] = 999
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        atomic_savez(path, **arrays)
        with pytest.raises(CheckpointError, match="format"):
            load_dataset_file(path)

    def test_model_checkpoint_is_not_a_training_state(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", nn.Linear(2, 2))
        with pytest.raises(CheckpointError, match="training"):
            load_training_checkpoint(path)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path) as handle:
            handle.write("first")
        assert path.read_text() == "first"
        with atomic_write(path) as handle:
            handle.write("second")
        assert path.read_text() == "second"

    def test_failure_preserves_previous_content(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("survives")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_write(path) as handle:
                handle.write("partial garbage")
                raise RuntimeError("mid-write crash")
        assert path.read_text() == "survives"
        assert list(tmp_path.iterdir()) == [path]  # temp file cleaned up

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError, match="write mode"):
            with atomic_write(tmp_path / "x", mode="r"):
                pass

    def test_savez_failure_preserves_previous_archive(self, tmp_path):
        path = atomic_savez(tmp_path / "a.npz", x=np.arange(3))
        class Boom:
            def __array__(self):
                raise RuntimeError("poisoned array")
        with pytest.raises(RuntimeError):
            atomic_savez(path, x=Boom())
        with np.load(path) as archive:  # old archive intact and readable
            np.testing.assert_array_equal(archive["x"], np.arange(3))

    def test_savez_archive_is_valid_zip(self, tmp_path):
        path = atomic_savez(tmp_path / "a.npz", x=np.zeros(2), y=np.ones(3))
        assert zipfile.is_zipfile(path)


class TestTrainingCheckpoint:
    def _setup(self):
        from repro.optim import Adam, StepLR
        from repro.training import EarlyStopping

        model = nn.Linear(3, 2)
        optimizer = Adam(model.parameters(), lr=0.01)
        scheduler = StepLR(optimizer, step_size=5, gamma=0.1)
        stopper = EarlyStopping(patience=3)
        stopper.update(1.5, model.state_dict())
        return model, optimizer, scheduler, stopper

    def test_roundtrip(self, tmp_path):
        model, optimizer, scheduler, stopper = self._setup()
        # Take a couple of optimizer steps so the moments are non-trivial.
        for _ in range(2):
            optimizer.zero_grad()
            (model(np.ones((4, 3), dtype=np.float32)) ** 2).sum().backward()
            optimizer.step()
        trainer_state = {"next_epoch": 3, "history": {"val_mae": [1.0, 0.9]}}
        path = save_training_checkpoint(
            tmp_path / "state", model=model, optimizer=optimizer,
            scheduler=scheduler, stopper=stopper, trainer_state=trainer_state,
        )

        fresh_model, fresh_opt, fresh_sched, fresh_stop = self._setup()
        info = load_training_checkpoint(
            path, model=fresh_model, optimizer=fresh_opt,
            scheduler=fresh_sched, stopper=fresh_stop,
        )
        assert info["trainer_state"] == trainer_state
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, fresh_model.state_dict()[name])
        restored = fresh_opt.state_dict()
        for key, value in optimizer.state_dict().items():
            if isinstance(value, list):
                for a, b in zip(value, restored[key]):
                    np.testing.assert_array_equal(a, b)
            else:
                assert restored[key] == value
        assert fresh_sched.state_dict() == scheduler.state_dict()
        assert fresh_stop.best_loss == stopper.best_loss
        np.testing.assert_array_equal(
            fresh_stop.best_state["weight"], stopper.best_state["weight"]
        )

    def test_roundtrip_without_optional_parts(self, tmp_path):
        model, optimizer, _, _ = self._setup()
        path = save_training_checkpoint(tmp_path / "s", model=model, optimizer=optimizer)
        info = load_training_checkpoint(path)
        assert info["scheduler_state"] is None
        assert info["stopper_state"] is None
        assert info["trainer_state"] == {}

    def test_wrong_optimizer_class_rejected(self, tmp_path):
        from repro.optim import SGD

        model, optimizer, _, _ = self._setup()
        path = save_training_checkpoint(tmp_path / "s", model=model, optimizer=optimizer)
        with pytest.raises(CheckpointError, match="Adam"):
            load_training_checkpoint(path, optimizer=SGD(model.parameters(), lr=0.1))

    def test_truncated_training_state(self, tmp_path):
        model, optimizer, _, _ = self._setup()
        path = save_training_checkpoint(tmp_path / "s", model=model, optimizer=optimizer)
        _truncate(path)
        with pytest.raises(CheckpointError):
            load_training_checkpoint(path)


class TestAtomicFileSink:
    def test_atomic_sink_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with FileSink(path) as sink:
            sink.emit({"event": "a", "n": 1})
            sink.emit({"event": "b", "n": 2})
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["a", "b"]

    def test_atomic_sink_preserves_existing_records(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with FileSink(path) as sink:
            sink.emit({"run": 1})
        with FileSink(path) as sink:  # a resumed run appends, never clobbers
            sink.emit({"run": 2})
        assert [r["run"] for r in read_jsonl(path)] == [1, 2]

    def test_append_mode_still_works(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with FileSink(path, atomic=False) as sink:
            sink.emit({"n": 1})
            sink.emit({"n": 2})
        assert [r["n"] for r in read_jsonl(path)] == [1, 2]
