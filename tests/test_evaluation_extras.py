"""Per-node evaluation and horizon curves."""

import numpy as np
import pytest

from repro.training import evaluate_per_node, horizon_curve


@pytest.fixture()
def arrays(rng):
    target = rng.uniform(1, 5, size=(20, 12, 4, 1))
    prediction = target + rng.normal(0, 0.2, size=target.shape)
    return prediction, target


class TestPerNode:
    def test_shape(self, arrays):
        prediction, target = arrays
        assert evaluate_per_node(prediction, target).shape == (4,)

    def test_detects_bad_node(self, arrays):
        prediction, target = arrays
        prediction = prediction.copy()
        prediction[:, :, 2] += 10.0
        errors = evaluate_per_node(prediction, target)
        assert errors.argmax() == 2
        assert errors[2] > 5 * errors[0]

    def test_masking(self, arrays):
        prediction, target = arrays
        target = target.copy()
        target[:, :, 1] = 0.0  # node 1 entirely missing
        errors = evaluate_per_node(prediction, target)
        assert np.isnan(errors[1])
        assert np.isfinite(errors[0])

    def test_shape_mismatch(self, arrays):
        prediction, target = arrays
        with pytest.raises(ValueError):
            evaluate_per_node(prediction[:, :6], target)


class TestHorizonCurve:
    def test_length(self, arrays):
        prediction, target = arrays
        assert horizon_curve(prediction, target).shape == (12,)

    def test_detects_growing_error(self, arrays):
        prediction, target = arrays
        prediction = prediction.copy()
        growth = np.linspace(0, 3, 12)[None, :, None, None]
        prediction += growth
        curve = horizon_curve(prediction, target)
        assert curve[-1] > curve[0]
        assert np.all(np.diff(curve) > -0.2)

    def test_metric_selection(self, arrays):
        prediction, target = arrays
        mae = horizon_curve(prediction, target, metric="mae")
        rmse = horizon_curve(prediction, target, metric="rmse")
        assert np.all(rmse >= mae - 1e-9)

    def test_unknown_metric(self, arrays):
        prediction, target = arrays
        with pytest.raises(ValueError):
            horizon_curve(prediction, target, metric="r2")
