"""Seeding and timing utilities."""

import time

import numpy as np

from repro.utils import Timer, get_rng, set_seed, spawn_rng


class TestSeed:
    def test_set_seed_reproducible(self):
        set_seed(42)
        a = get_rng().random(5)
        set_seed(42)
        b = get_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        set_seed(1)
        a = get_rng().random(5)
        set_seed(2)
        b = get_rng().random(5)
        assert not np.array_equal(a, b)

    def test_spawn_rng_independent(self):
        set_seed(7)
        child = spawn_rng()
        before = get_rng().random(3)
        child.random(100)  # consuming the child must not affect the parent
        set_seed(7)
        spawn_rng()
        after = get_rng().random(3)
        np.testing.assert_array_equal(before, after)


class TestTimer:
    def test_counts_laps(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert timer.stats.count == 3
        assert len(timer.stats.laps) == 3

    def test_measures_elapsed(self):
        timer = Timer()
        with timer:
            time.sleep(0.02)
        assert timer.stats.total >= 0.015

    def test_mean_min_max(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            pass
        stats = timer.stats
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_empty_stats_are_zero(self):
        stats = Timer().stats
        assert stats.mean == 0.0 and stats.minimum == 0.0 and stats.maximum == 0.0
