"""The extended tensor ops: clip, softplus, gelu, min, pad_axis, split."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck


def t(shape, rng, scale=1.0):
    return Tensor((rng.normal(size=shape) * scale).astype(np.float32), requires_grad=True)


class TestClip:
    def test_values(self):
        a = Tensor(np.array([-2.0, 0.0, 2.0], np.float32))
        np.testing.assert_array_equal(a.clip(-1.0, 1.0).numpy(), [-1.0, 0.0, 1.0])

    def test_one_sided(self):
        a = Tensor(np.array([-2.0, 2.0], np.float32))
        np.testing.assert_array_equal(a.clip(low=0.0).numpy(), [0.0, 2.0])
        np.testing.assert_array_equal(a.clip(high=0.0).numpy(), [-2.0, 0.0])

    def test_requires_a_bound(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(2, np.float32)).clip()

    def test_gradient_zero_outside(self, rng):
        a = Tensor(np.array([-2.0, 0.5, 2.0], np.float32), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_gradcheck(self, rng):
        gradcheck(lambda a: a.clip(-0.4, 0.6), [t((5,), rng)])


class TestSoftplus:
    def test_positive_everywhere(self, rng):
        out = t((20,), rng, 3.0).softplus().numpy()
        assert np.all(out > 0)

    def test_stable_for_large_inputs(self):
        a = Tensor(np.array([-500.0, 500.0], np.float32))
        out = a.softplus().numpy()
        assert np.isfinite(out).all()
        assert out[1] == pytest.approx(500.0, rel=1e-5)

    def test_gradcheck(self, rng):
        gradcheck(lambda a: a.softplus(), [t((4, 3), rng)])


class TestGelu:
    def test_known_values(self):
        a = Tensor(np.array([0.0], np.float32))
        assert a.gelu().numpy()[0] == pytest.approx(0.0)
        assert Tensor(np.array([10.0], np.float32)).gelu().numpy()[0] == pytest.approx(10.0, rel=1e-4)

    def test_gradcheck(self, rng):
        gradcheck(lambda a: a.gelu(), [t((4, 3), rng)])


class TestMin:
    def test_matches_numpy(self, rng):
        a = t((3, 5), rng)
        np.testing.assert_allclose(a.min(axis=1).numpy(), a.numpy().min(axis=1), rtol=1e-6)

    def test_gradcheck(self, rng):
        a = Tensor(rng.permutation(15).reshape(3, 5).astype(np.float32), requires_grad=True)
        gradcheck(lambda a: a.min(axis=0), [a])


class TestPad:
    def test_shapes_and_values(self, rng):
        a = t((2, 3), rng)
        out = a.pad_axis(1, before=2, after=1)
        assert out.shape == (2, 6)
        np.testing.assert_array_equal(out.numpy()[:, :2], np.zeros((2, 2)))
        np.testing.assert_array_equal(out.numpy()[:, 2:5], a.numpy())

    def test_negative_padding_rejected(self, rng):
        with pytest.raises(ValueError):
            t((2, 2), rng).pad_axis(0, before=-1)

    def test_gradcheck(self, rng):
        gradcheck(lambda a: a.pad_axis(0, 1, 2).tanh(), [t((2, 3), rng)])


class TestSplit:
    def test_chunks(self, rng):
        a = t((2, 6), rng)
        parts = a.split(3, axis=1)
        assert len(parts) == 3
        for i, part in enumerate(parts):
            np.testing.assert_array_equal(part.numpy(), a.numpy()[:, 2 * i : 2 * i + 2])

    def test_uneven_rejected(self, rng):
        with pytest.raises(ValueError):
            t((2, 5), rng).split(2, axis=1)

    def test_gradients_flow_to_all_chunks(self, rng):
        a = t((4,), rng)
        left, right = a.split(2)
        (left * 2.0 + right * 3.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [2.0, 2.0, 3.0, 3.0])
