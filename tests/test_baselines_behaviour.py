"""Architecture-specific behavioural tests for each neural baseline.

Beyond the shared contract tests, each baseline has one defining mechanism;
these tests pin those mechanisms down.
"""

import numpy as np
import pytest

from repro.baselines import (
    ASTGCN,
    DCRNN,
    DGCRN,
    FCLSTM,
    GMAN,
    MTGNN,
    STSGCN,
    GraphWaveNet,
)
from repro.baselines.mtgnn import GraphLearningLayer, MixHopPropagation
from repro.tensor import Tensor

N, T_H = 6, 12


@pytest.fixture(scope="module")
def adjacency():
    rng = np.random.default_rng(5)
    adj = (rng.uniform(size=(N, N)) > 0.45).astype(np.float32)
    np.fill_diagonal(adj, 1.0)
    return adj


def batch(rng, b=2):
    x = rng.normal(size=(b, T_H, N, 1)).astype(np.float32)
    tod = rng.integers(0, 288, size=(b, T_H))
    dow = rng.integers(0, 7, size=(b, T_H))
    return x, tod, dow


class TestFCLSTMBehaviour:
    def test_nodes_fully_independent(self, rng):
        """FC-LSTM has no graph: node i's forecast ignores node j entirely."""
        model = FCLSTM(hidden_dim=8)
        model.eval()
        x, tod, dow = batch(rng, b=1)
        out_a = model(x, tod, dow).numpy()
        perturbed = x.copy()
        perturbed[:, :, 0] += 10.0
        out_b = model(perturbed, tod, dow).numpy()
        np.testing.assert_allclose(out_a[:, :, 1:], out_b[:, :, 1:], atol=1e-5)


class TestDCRNNBehaviour:
    def test_spatial_information_flows(self, adjacency, rng):
        """Unlike FC-LSTM, DCRNN diffuses: perturbing one node moves others."""
        model = DCRNN(adjacency, hidden_dim=8)
        model.eval()
        x, tod, dow = batch(rng, b=1)
        out_a = model(x, tod, dow).numpy()
        perturbed = x.copy()
        perturbed[:, :, 0] += 10.0
        out_b = model(perturbed, tod, dow).numpy()
        assert np.abs(out_a[:, :, 1:] - out_b[:, :, 1:]).max() > 1e-4

    def test_encoder_state_feeds_decoder(self, adjacency, rng):
        """Different histories must produce different decoder outputs."""
        model = DCRNN(adjacency, hidden_dim=8)
        model.eval()
        x, tod, dow = batch(rng, b=1)
        out_a = model(x, tod, dow).numpy()
        out_b = model(x * 0.0, tod, dow).numpy()
        assert not np.allclose(out_a, out_b)


class TestGWNetBehaviour:
    def test_adaptive_adjacency_is_distribution(self, adjacency):
        model = GraphWaveNet(adjacency, hidden_dim=8)
        adaptive = model._supports()[2].numpy()
        np.testing.assert_allclose(adaptive.sum(axis=1), np.ones(N), rtol=1e-4)
        assert np.all(adaptive >= 0)

    def test_adaptive_adjacency_is_learned(self, adjacency, rng):
        """Training must move the adaptive matrix (its embeddings get grads)."""
        model = GraphWaveNet(adjacency, hidden_dim=8)
        x, tod, dow = batch(rng)
        model(x, tod, dow).sum().backward()
        assert model.embed_source.grad is not None
        assert model.embed_target.grad is not None


class TestASTGCNBehaviour:
    def test_attention_modulates_spatial_mixing(self, adjacency, rng):
        """Two different inputs yield different spatial attention, so the
        effective graph is input-dependent (unlike STGCN)."""
        model = ASTGCN(adjacency, hidden_dim=8)
        model.eval()
        x1, tod, dow = batch(rng, b=1)
        x2 = x1 + rng.normal(0, 1, size=x1.shape).astype(np.float32)
        block = model.blocks[0]
        h1 = model.input_projection(Tensor(x1))
        h2 = model.input_projection(Tensor(x2))
        s1 = block.spatial_attention(h1.mean(axis=1)).numpy()
        s2 = block.spatial_attention(h2.mean(axis=1)).numpy()
        assert not np.allclose(s1, s2)


class TestSTSGCNBehaviour:
    def test_window_consumption(self, adjacency, rng):
        """Each synchronous layer shrinks the time axis by window - 1."""
        model = STSGCN(adjacency, hidden_dim=8, num_layers=2, window=3)
        layer = model.layers[0]
        x = Tensor(rng.normal(size=(1, 8, N, 8)).astype(np.float32))
        out = layer(x)
        assert out.shape == (1, 8 - 3 + 1, N, 8)

    def test_short_history_does_not_crash(self, adjacency, rng):
        model = STSGCN(adjacency, hidden_dim=8, num_layers=4, window=3)
        model.eval()
        x = rng.normal(size=(1, 5, N, 1)).astype(np.float32)  # shrinks to 1 step
        tod = rng.integers(0, 288, size=(1, 5))
        dow = rng.integers(0, 7, size=(1, 5))
        assert model(x, tod, dow).shape == (1, 12, N, 1)


class TestGMANBehaviour:
    def test_future_time_indices_wrap_midnight(self, rng):
        model = GMAN(N, steps_per_day=288, hidden_dim=8, num_heads=2)
        tod = np.full((1, T_H), 286)  # 23:50
        dow = np.full((1, T_H), 3)  # Thursday
        future_tod, future_dow = model._future_indices(tod, dow)
        assert future_tod[0, 0] == 287
        assert future_tod[0, 1] == 0  # midnight wrap
        assert future_dow[0, 0] == 3
        assert future_dow[0, 1] == 4  # Friday begins

    def test_time_embeddings_condition_output(self, rng):
        """Same history at different times of day forecasts differently."""
        model = GMAN(N, steps_per_day=288, hidden_dim=8, num_heads=2)
        model.eval()
        x, _, _ = batch(rng, b=1)
        tod_morning = np.arange(90, 90 + T_H)[None, :]
        tod_night = np.arange(0, T_H)[None, :]
        dow = np.full((1, T_H), 2)
        out_a = model(x, tod_morning, dow).numpy()
        out_b = model(x, tod_night, dow).numpy()
        assert not np.allclose(out_a, out_b)


class TestMTGNNBehaviour:
    def test_learned_adjacency_is_uni_directional(self):
        """MTGNN's scores are anti-symmetric before relu: A ⊙ A^T ≈ 0."""
        layer = GraphLearningLayer(N, embed_dim=6)
        adjacency = layer().numpy()
        product = adjacency * adjacency.T
        off_diag = product[~np.eye(N, dtype=bool)]
        assert np.abs(off_diag).max() < 1e-5

    def test_mixhop_keeps_hop_zero(self, rng):
        """With β=1 propagation reduces to the identity on hop features."""
        mix = MixHopPropagation(4, depth=2, beta=1.0)
        x = Tensor(rng.normal(size=(2, N, 4)).astype(np.float32))
        adjacency = Tensor(np.ones((N, N), np.float32) / N)
        out = mix(x, adjacency)
        # All hops equal x, so output == projection of [x, x, x].
        stacked = Tensor.concatenate([x, x, x], axis=-1)
        np.testing.assert_allclose(
            out.numpy(), mix.projection(stacked).numpy(), rtol=1e-4, atol=1e-5
        )


class TestDGCRNBehaviour:
    def test_dynamic_graph_depends_on_input(self, adjacency, rng):
        model = DGCRN(adjacency, hidden_dim=8, dynamic=True)
        x1 = Tensor(rng.normal(size=(1, N, 1)).astype(np.float32))
        x2 = Tensor(rng.normal(size=(1, N, 1)).astype(np.float32))
        h = Tensor.zeros((1, N, 8))
        g1 = model.generator(x1, h).numpy()
        g2 = model.generator(x2, h).numpy()
        assert not np.allclose(g1, g2)

    def test_generated_graph_is_row_stochastic(self, adjacency, rng):
        model = DGCRN(adjacency, hidden_dim=8, dynamic=True)
        x = Tensor(rng.normal(size=(2, N, 1)).astype(np.float32))
        h = Tensor.zeros((2, N, 8))
        graph = model.generator(x, h).numpy()
        np.testing.assert_allclose(graph.sum(axis=-1), np.ones((2, N)), rtol=1e-4)
