"""The tape-IR audit: recording, lifetimes/arena, hazards, dead values, fusion.

The small fixtures build steps by hand from raw tensors — ``record_program``
only needs a callable returning a scalar loss.  The end-to-end class runs the
real audit on D2STGNN at the probe scale, which is the acceptance gate the
``make check-tape`` target enforces across the whole zoo.
"""

import numpy as np
import pytest

from repro.check import (
    TAPE_RULES,
    TAPE_SCHEMA,
    audit_models,
    format_tape_report,
    record_program,
    tape_report_dict,
)
from repro.check.tape import (
    compute_lifetimes,
    find_dead_values,
    find_fusion_candidates,
    find_mutation_hazards,
    plan_arena,
)
from repro.tensor import Tensor


def leaf(shape, *, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


class TestRecording:
    def _program(self):
        w = leaf((4, 3), seed=1)
        b = leaf((3,), seed=2)
        x = Tensor(np.ones((2, 4)))

        def step():
            return ((x @ w + b).tanh()).sum()

        return record_program(step, names={id(w): "w", id(b): "b"})

    def test_phases_and_counts(self):
        program = self._program()
        counts = program.counts()["instructions"]
        assert counts["forward"] == 4  # matmul, add, tanh, sum
        assert counts["backward"] == 5  # seed_grad + one per forward op
        assert program.phase_instructions("forward")[0].phase == "forward"

    def test_defs_precede_uses(self):
        program = self._program()
        defined = {v.vid for v in program.values if v.kind == "leaf"}
        for instr in program.instructions:
            for vid in instr.uses:
                # A use either names something already defined or the
                # instruction's own def (gradient read-modify-write).
                assert vid in defined or vid in instr.defs, program.format_instruction(instr)
            defined.update(instr.defs)

    def test_leaf_names_are_attached(self):
        program = self._program()
        names = {v.name for v in program.values if v.kind == "leaf"}
        assert {"w", "b"} <= names

    def test_forward_saves_are_stamped(self):
        program = self._program()
        matmul = next(i for i in program.instructions if i.op == "matmul")
        assert matmul.saved  # the backward closure captured operands

    def test_backward_links_to_forward(self):
        program = self._program()
        for instr in program.phase_instructions("backward"):
            if instr.grad_of is not None:
                assert program.instructions[instr.grad_of].phase == "forward"

    def test_requires_grad_loss_is_enforced(self):
        x = Tensor(np.ones((2, 2)))  # untracked: no parents require grad

        def step():
            return (x * 2.0).sum()

        with pytest.raises(ValueError):
            record_program(step)

    def test_format_is_readable(self):
        program = self._program()
        text = program.format(limit=5)
        assert "%" in text and "matmul" in text


class TestLifetimeArena:
    def _program(self):
        w = leaf((8, 8), seed=3)
        x = Tensor(np.ones((4, 8)))

        def step():
            h = (x @ w).relu()
            return (h @ w).tanh().sum()

        return record_program(step)

    def test_lifetimes_cover_owned_values(self):
        program = self._program()
        lifetimes = compute_lifetimes(program)
        owned = {
            v.vid for v in program.values
            if v.owns_storage and v.kind in ("op", "grad")
        }
        assert owned <= set(lifetimes)
        for life in lifetimes.values():
            assert life.start <= life.end

    def test_arena_is_aligned_and_bounded(self):
        program = self._program()
        plan = plan_arena(program)
        assert plan.arena_bytes <= plan.total_bytes
        assert plan.arena_bytes >= plan.ideal_peak_bytes
        assert plan.reuse_ratio >= 1.0
        for slot in plan.slots.values():
            assert slot.offset % plan.alignment == 0

    def test_overlapping_lifetimes_never_share_storage(self):
        program = self._program()
        lifetimes = compute_lifetimes(program)
        plan = plan_arena(program)
        items = [(lifetimes[vid], slot) for vid, slot in plan.slots.items()]
        for i, (life_a, slot_a) in enumerate(items):
            for life_b, slot_b in items[i + 1:]:
                if life_a.start <= life_b.end and life_b.start <= life_a.end:
                    disjoint = (
                        slot_a.offset + slot_a.size <= slot_b.offset
                        or slot_b.offset + slot_b.size <= slot_a.offset
                    )
                    assert disjoint, (slot_a, slot_b)


class TestMutationHazards:
    def test_mutating_a_saved_tensor_is_flagged(self):
        w = leaf((3, 3), seed=4)
        x = Tensor(np.ones((2, 3)))

        def step():
            out = (x @ w).sum()  # matmul saves w for backward
            w.copy_(np.zeros((3, 3)))  # stale-save: backward reads new data
            return out

        program = record_program(step, names={id(w): "w"})
        hazards = find_mutation_hazards(program)
        assert len(hazards) == 1
        hazard = hazards[0]
        assert hazard.forward_op == "matmul"
        assert hazard.forward_index < hazard.mutate_index < hazard.backward_index
        assert "w" in hazard.message()

    def test_clean_step_has_no_hazards(self):
        w = leaf((3, 3), seed=5)
        x = Tensor(np.ones((2, 3)))

        def step():
            return (x @ w).sum()

        assert find_mutation_hazards(record_program(step)) == []

    def test_mutation_after_the_last_read_is_safe(self):
        w = leaf((3, 3), seed=6)
        x = Tensor(np.ones((2, 3)))

        def step():
            out = (x + 0.0).sum()  # w is never saved
            w.copy_(np.zeros((3, 3)))
            return out + (w * 0.0).sum()

        assert find_mutation_hazards(record_program(step)) == []


class TestDeadValues:
    def test_dead_branch_is_flagged(self):
        w = leaf((3, 3), seed=7)
        x = Tensor(np.ones((2, 3)))

        def step():
            (x @ w).tanh()  # computed, never consumed by the loss
            return (x * w.sum()).sum()

        program = record_program(step)
        dead = find_dead_values(program)
        assert len(dead) == 1
        ops = {program.instructions[i].op for i in dead[0].instruction_indices}
        assert "tanh" in ops
        assert dead[0].nbytes > 0
        # The tanh is the branch tip — nothing consumes it, so it is the sink.
        sinks = {program.instructions[i].op for i in dead[0].sink_indices}
        assert sinks == {"tanh"}
        assert "tanh" in dead[0].message(program)

    def test_export_keeps_a_branch_alive(self):
        w = leaf((3, 3), seed=8)
        x = Tensor(np.ones((2, 3)))

        def step():
            probe = (x @ w).tanh()
            probe.numpy()  # exported: telemetry reads it, so it is live
            return (x * w.sum()).sum()

        assert find_dead_values(record_program(step)) == []

    def test_fully_consumed_graph_is_clean(self):
        w = leaf((3, 3), seed=9)
        x = Tensor(np.ones((2, 3)))

        def step():
            return ((x @ w).tanh()).sum()

        assert find_dead_values(record_program(step)) == []


class TestFusion:
    def test_gemm_epilogue_is_detected(self):
        w = leaf((4, 4), seed=10)
        b = leaf((4,), seed=11)
        x = Tensor(np.ones((2, 4)))

        def step():
            return ((x @ w + b).sigmoid()).sum()

        program = record_program(step)
        kinds = {c.kind for c in find_fusion_candidates(program)}
        assert "matmul_bias_act" in kinds

    def test_elementwise_chain_is_detected(self):
        w = leaf((4, 4), seed=12)

        def step():
            return (((w * 2.0) + 1.0).tanh().sigmoid()).sum()

        program = record_program(step)
        chains = [
            c for c in find_fusion_candidates(program) if c.kind == "elementwise_chain"
        ]
        assert chains and len(chains[0].ops) >= 3

    def test_short_chains_are_ignored(self):
        w = leaf((4, 4), seed=13)

        def step():
            return (w * 2.0).sum()

        program = record_program(step)
        assert find_fusion_candidates(program) == []

    def test_candidates_are_ranked_by_time(self):
        w = leaf((4, 4), seed=14)
        b = leaf((4,), seed=15)
        x = Tensor(np.ones((2, 4)))

        def step():
            h = (x @ w + b).sigmoid()
            return (((h * 2.0) + 1.0).tanh().relu()).sum()

        program = record_program(step)
        seconds = {("matmul", "forward"): 1.0}  # make the GEMM chain dominant
        ranked = find_fusion_candidates(program, op_seconds=seconds)
        assert ranked[0].kind == "matmul_bias_act"
        assert ranked[0].est_seconds >= ranked[-1].est_seconds


class TestAuditEndToEnd:
    @pytest.fixture(scope="class")
    def audit(self):
        audits = audit_models(models=["d2stgnn"], datasets=["metr-la-sim"])
        assert len(audits) == 1
        return audits[0]

    def test_default_preset_is_clean(self, audit):
        assert audit.ok, [f.message for f in audit.findings()]
        assert find_mutation_hazards(audit.program) == []
        assert find_dead_values(audit.program) == []

    def test_projected_vs_measured_bytes_within_tolerance(self, audit):
        consistency = audit.consistency
        assert consistency["within_tolerance"]
        assert abs(consistency["ratio"] - 1.0) <= consistency["tolerance"] == 0.10

    def test_arena_reuses_storage(self, audit):
        assert audit.arena["arena_bytes"] < audit.arena["total_bytes"]
        assert audit.arena["reuse_ratio"] > 1.0
        assert audit.arena["measured_peak_bytes"] > 0

    def test_fusion_finds_the_gru_and_loss_chains(self, audit):
        kinds = {c.kind for c in audit.fusion}
        assert "elementwise_chain" in kinds

    def test_report_shapes(self, audit):
        report = tape_report_dict([audit])
        assert report["schema"] == TAPE_SCHEMA == "repro.check.tape/v1"
        assert report["rules"] == TAPE_RULES
        assert report["findings_total"] == 0
        assert report["audits"][0]["model"] == "D2STGNN"
        text = format_tape_report([audit])
        assert "D2STGNN" in text and text.splitlines()[-1].startswith("tape: 0 finding(s)")

    def test_statistical_models_are_rejected(self):
        with pytest.raises(ValueError):
            audit_models(models=["HA"], datasets=["metr-la-sim"])
