"""Sensor-outage zeros must reach the model as neutral inputs, not z-scores.

Regression suite for the scaler null leak: ``StandardScaler.transform`` used
to z-score zero-encoded outages like real observations, so a dark sensor
arrived at the model as the extreme "valid" speed ``(0 - mean) / std`` — in
the exact regime the outage-aware evaluation (paper Fig. 8) studies.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data import build_forecasting_data, load_dataset
from repro.data.scalers import StandardScaler
from repro.faults import OutageScenario, sample_outage_mask


class TestStandardScalerMaskNulls:
    def test_null_entries_map_to_zero_scaled(self):
        values = np.array([[10.0, 0.0], [20.0, 30.0]], dtype=np.float32)
        scaler = StandardScaler(null_value=0.0, mask_nulls=True).fit(values)
        scaled = scaler.transform(values)
        assert scaled[0, 1] == 0.0
        assert not np.any(np.abs(scaled) > 2.0)

    def test_without_mask_nulls_zero_leaks_as_extreme_input(self):
        """The pre-fix behaviour this suite guards against."""
        values = np.array([[60.0, 0.0], [58.0, 62.0]], dtype=np.float32)
        scaler = StandardScaler(null_value=0.0).fit(values)
        scaled = scaler.transform(values)
        assert scaled[0, 1] < -10.0  # a zero z-scored far off the mean

    def test_non_null_entries_unchanged_by_masking(self):
        values = np.array([[10.0, 0.0], [20.0, 30.0]], dtype=np.float32)
        masked = StandardScaler(null_value=0.0, mask_nulls=True).fit(values)
        plain = StandardScaler(null_value=0.0).fit(values)
        nonnull = values != 0.0
        assert np.array_equal(
            masked.transform(values)[nonnull], plain.transform(values)[nonnull]
        )

    def test_inverse_round_trips_non_null_entries(self, rng):
        values = rng.uniform(20, 70, size=(50, 4)).astype(np.float32)
        values[rng.random(values.shape) < 0.1] = 0.0
        scaler = StandardScaler(null_value=0.0, mask_nulls=True).fit(values)
        restored = scaler.inverse_transform(scaler.transform(values))
        nonnull = values != 0.0
        np.testing.assert_allclose(restored[nonnull], values[nonnull], atol=1e-4)

    def test_null_value_none_disables_masking(self):
        values = np.array([[1.0, 0.0], [2.0, 3.0]], dtype=np.float32)
        scaler = StandardScaler(null_value=None, mask_nulls=True).fit(values)
        scaled = scaler.transform(values)
        assert scaled[0, 1] != 0.0  # nothing is treated as null


class TestOutageNeutralInputs:
    @pytest.fixture()
    def outage_data(self, rng):
        """A dataset with extra injected dropout on top of simulator outages."""
        dataset = load_dataset("metr-la-sim", num_nodes=6, num_steps=300)
        num_steps, num_nodes = dataset.series.values.shape
        scenario = OutageScenario(rate=0.4, duration=(5, 30), seed=3)
        mask = sample_outage_mask(rng, 1, num_steps, num_nodes, scenario)[0]
        values = np.where(mask, 0.0, dataset.series.values)
        series = dataclasses.replace(
            dataset.series, values=values, failure_mask=dataset.series.failure_mask | mask
        )
        dataset = dataclasses.replace(dataset, series=series)
        return build_forecasting_data(dataset), mask

    def test_scaled_series_is_neutral_at_null_positions(self, outage_data):
        data, mask = outage_data
        assert mask.any(), "scenario injected no dropout; test is vacuous"
        scaled = data.windows.values_scaled[..., 0]
        assert np.all(scaled[mask] == 0.0)
        # and no (0 - mean)/std artifact anywhere a sensor was dark
        assert not np.any(np.abs(scaled[mask]) > 1e-6)

    def test_loader_batches_are_neutral_at_null_positions(self, outage_data):
        """What the model actually ingests: Batch.x is 0 where sensors are dark."""
        data, mask = outage_data
        history = data.windows.history
        start = data.test.start
        batch = next(iter(data.loader("test", batch_size=32, shuffle=False)))
        for row in range(batch.size):
            window_mask = mask[start + row : start + row + history]
            assert np.all(batch.x[row, ..., 0][window_mask] == 0.0)

    def test_gathered_inputs_zero_where_series_dark(self, outage_data):
        data, mask = outage_data
        dataset = data.windows
        history = dataset.history
        indices = np.arange(min(40, len(dataset)))
        batch = dataset.gather(indices)
        for row, start in enumerate(indices):
            window_mask = mask[start : start + history]
            assert np.all(batch.x[row, ..., 0][window_mask] == 0.0)

    def test_targets_keep_raw_zeros_for_metric_masking(self, outage_data):
        """y stays in original units so masked metrics still see the zeros."""
        data, mask = outage_data
        dataset = data.windows
        history, horizon = dataset.history, dataset.horizon
        batch = dataset.gather(np.arange(10))
        for row in range(10):
            target_mask = mask[row + history : row + history + horizon]
            assert np.all(batch.y[row, ..., 0][target_mask] == 0.0)
