"""Streaming evaluation must agree with the materializing reference path.

``evaluate_split`` streams batches through :class:`HorizonAccumulator` in
O(batch) memory; these tests pin it to ``evaluate_horizons(*predict_split(...))``.
The two differ only in float summation order (float64 streaming sums vs
float32 pairwise means), so metric comparisons use rtol=1e-5 — the arrays
returned by ``return_arrays=True`` are still required to match bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.training import (
    HorizonAccumulator,
    evaluate_horizons,
    evaluate_per_node,
    evaluate_split,
    predict_split,
)
from repro.training.metrics import compute_all


class _EchoForecaster:
    """Deterministic stub: forecasts the input window reversed in time."""

    def __init__(self) -> None:
        self.eval_calls = 0

    def eval(self) -> None:
        self.eval_calls += 1

    def __call__(self, x, tod, dow):
        return Tensor(np.ascontiguousarray(x[:, ::-1]))


class TestEvaluateSplitAgainstReference:
    @pytest.mark.parametrize("split", ["val", "test"])
    def test_metrics_match_materialized_path(self, tiny_data, split):
        model = _EchoForecaster()
        streamed = evaluate_split(model, tiny_data, split=split)
        reference = evaluate_horizons(*predict_split(model, tiny_data, split=split))
        assert set(streamed) == set(reference)
        for key, metrics in reference.items():
            for name, value in metrics.items():
                np.testing.assert_allclose(
                    streamed[key][name], value, rtol=1e-5, err_msg=f"{key}/{name}"
                )

    def test_return_arrays_bitwise_equal_to_predict_split(self, tiny_data):
        model = _EchoForecaster()
        report, prediction, target = evaluate_split(
            model, tiny_data, split="test", return_arrays=True
        )
        ref_prediction, ref_target = predict_split(model, tiny_data, split="test")
        assert prediction.tobytes() == ref_prediction.tobytes()
        assert target.tobytes() == ref_target.tobytes()
        assert "avg" in report

    def test_switches_model_to_eval_mode(self, tiny_data):
        model = _EchoForecaster()
        evaluate_split(model, tiny_data, split="val", horizons=())
        assert model.eval_calls == 1

    def test_rejects_horizon_beyond_forecast(self, tiny_data):
        with pytest.raises(ValueError, match="exceeds forecast length"):
            evaluate_split(_EchoForecaster(), tiny_data, split="val", horizons=(99,))


class TestHorizonAccumulator:
    def _random_pair(self, rng, shape=(6, 12, 4, 1)):
        target = rng.uniform(0, 70, size=shape).astype(np.float32)
        target[rng.random(shape) < 0.15] = 0.0  # null-coded outages
        prediction = target + rng.normal(0, 3, size=shape).astype(np.float32)
        return prediction, target

    def test_matches_compute_all_over_batches(self, rng):
        acc = HorizonAccumulator(null_value=0.0)
        chunks = [self._random_pair(rng) for _ in range(4)]
        for prediction, target in chunks:
            acc.update(prediction, target)
        prediction = np.concatenate([c[0] for c in chunks])
        target = np.concatenate([c[1] for c in chunks])
        expected = compute_all(prediction, target, null_value=0.0)
        result = acc.compute()
        for name in ("mae", "rmse", "mape"):
            np.testing.assert_allclose(result[name], expected[name], rtol=1e-5)

    def test_null_value_none_counts_everything(self, rng):
        prediction, target = self._random_pair(rng)
        acc = HorizonAccumulator(null_value=None)
        acc.update(prediction, target)
        expected = compute_all(prediction, target, null_value=None)
        np.testing.assert_allclose(acc.compute()["mae"], expected["mae"], rtol=1e-5)

    def test_empty_accumulator_returns_nan(self):
        result = HorizonAccumulator().compute()
        assert all(np.isnan(value) for value in result.values())

    def test_all_null_targets_return_nan(self):
        acc = HorizonAccumulator(null_value=0.0)
        acc.update(np.ones((2, 3)), np.zeros((2, 3)))
        result = acc.compute()
        assert all(np.isnan(value) for value in result.values())

    def test_shape_mismatch_raises(self):
        acc = HorizonAccumulator()
        with pytest.raises(ValueError, match="shapes must match"):
            acc.update(np.ones((2, 3)), np.ones((3, 2)))


class TestEvaluatePerNodeVectorized:
    def test_matches_per_node_loop(self, rng):
        shape = (5, 12, 7, 1)
        target = rng.uniform(0, 70, size=shape).astype(np.float32)
        target[rng.random(shape) < 0.2] = 0.0
        prediction = target + rng.normal(0, 2, size=shape).astype(np.float32)
        result = evaluate_per_node(prediction, target)
        expected = np.array([
            compute_all(prediction[:, :, n], target[:, :, n], null_value=0.0)["mae"]
            for n in range(shape[2])
        ])
        np.testing.assert_allclose(result, expected, rtol=1e-5)

    def test_all_null_node_is_nan(self, rng):
        shape = (4, 6, 3, 1)
        target = rng.uniform(10, 70, size=shape).astype(np.float32)
        target[:, :, 1] = 0.0  # node 1 dark for the whole split
        prediction = target + 1.0
        result = evaluate_per_node(prediction, target)
        assert np.isnan(result[1])
        assert not np.isnan(result[[0, 2]]).any()
