"""Sharded serving: partition invariants, exactness, transports, shedding."""

import threading
import time

import numpy as np
import pytest

from repro.graph import cut_edges, greedy_min_cut, hop_neighborhood
from repro.models import build_model
from repro.serve import (
    DegradationPolicy,
    ModelRegistry,
    ProcessTransport,
    ServableBundle,
    ServeConfig,
    ServingEngine,
    ShardedServingEngine,
    SlidingWindowStore,
    TransportError,
    make_servable,
    partition_graph,
    poisson_arrivals,
    replay_split,
    run_load,
    shard_bundle,
)
from repro.utils.checkpoint import CheckpointError
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def bundle(tiny_data):
    set_seed(0)
    model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
    return make_servable("STGCN", model, tiny_data, hidden=8, layers=1)


@pytest.fixture(scope="module")
def bundle_v2(tiny_data):
    set_seed(99)
    model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
    return make_servable("STGCN", model, tiny_data, hidden=8, layers=1)


def _plain_engine(bundle):
    registry = ModelRegistry()
    registry.publish(bundle)
    store = SlidingWindowStore.for_bundle(bundle)
    return ServingEngine(registry, store, ServeConfig(max_wait_s=0.001))


def _warm(engine, data):
    series = data.dataset.series
    history = engine.store.history
    engine.store.warm_from(
        series.values[:history], series.time_of_day[:history],
        series.day_of_week[:history],
    )


# ---------------------------------------------------------------------------
# Partition invariants
# ---------------------------------------------------------------------------
class TestPartitionInvariants:
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_every_node_in_exactly_one_shard(self, tiny_data, num_shards):
        partition = partition_graph(tiny_data.adjacency, num_shards)
        counts = np.zeros(partition.num_nodes, dtype=int)
        for plan in partition.plans:
            counts[plan.owned] += 1
        np.testing.assert_array_equal(counts, 1)
        assert set(partition.assignment.tolist()) == set(range(num_shards))

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_balance_cap(self, tiny_data, num_shards):
        partition = partition_graph(tiny_data.adjacency, num_shards)
        n = partition.num_nodes
        cap = -(-n // num_shards)
        assert all(plan.num_owned <= cap for plan in partition.plans)

    def test_halo_exactly_covers_cut_edges_at_one_hop(self, tiny_data):
        adjacency = tiny_data.adjacency
        partition = partition_graph(adjacency, 2, halo_hops=1)
        crossing = cut_edges(adjacency, partition.assignment)
        for plan in partition.plans:
            owned = set(plan.owned.tolist())
            expected = set()
            for i, j in crossing.tolist():
                if i in owned and j not in owned:
                    expected.add(j)
                elif j in owned and i not in owned:
                    expected.add(i)
            assert set(plan.halo.tolist()) == expected
            assert not owned & set(plan.halo.tolist())

    def test_k1_is_trivial(self, tiny_data):
        partition = partition_graph(tiny_data.adjacency, 1)
        np.testing.assert_array_equal(partition.assignment, 0)
        (plan,) = partition.plans
        assert plan.halo.size == 0
        np.testing.assert_array_equal(plan.owned, np.arange(partition.num_nodes))

    def test_deterministic(self, tiny_data):
        first = greedy_min_cut(tiny_data.adjacency, 2)
        second = greedy_min_cut(tiny_data.adjacency, 2)
        np.testing.assert_array_equal(first, second)

    def test_hop_neighborhood_grows_monotonically(self, tiny_data):
        members = np.array([0, 1])
        previous = set()
        for hops in range(1, 4):
            ring = set(hop_neighborhood(tiny_data.adjacency, members, hops=hops).tolist())
            assert previous <= ring
            previous = ring


# ---------------------------------------------------------------------------
# Bundle sharding
# ---------------------------------------------------------------------------
class TestShardBundle:
    def test_k1_keeps_state_verbatim(self, bundle):
        (plan,) = partition_graph(bundle.adjacency, 1).plans
        sub = shard_bundle(bundle, plan)
        assert sub.spec == bundle.spec
        for name, value in bundle.state.items():
            np.testing.assert_array_equal(sub.state[name], value)
        sub.instantiate()

    def test_graphwavenet_sub_bundle_instantiates(self, tiny_data):
        set_seed(1)
        model, _ = build_model("GraphWaveNet", tiny_data, hidden=8, layers=1)
        bundle = make_servable("GraphWaveNet", model, tiny_data, hidden=8, layers=1)
        n = bundle.spec.num_nodes
        for plan in partition_graph(bundle.adjacency, 2).plans:
            sub = shard_bundle(bundle, plan)
            assert sub.spec.num_nodes == plan.num_local
            sub.instantiate()
            # node-indexed parameters (the adaptive embeddings) are sliced
            # by the plan's global ids; node-independent ones stay verbatim
            sliced = [
                name for name, value in bundle.state.items()
                if sub.state[name].shape != value.shape
            ]
            assert sliced, "GraphWaveNet should have node-indexed parameters"
            for name in sliced:
                full, local = bundle.state[name], sub.state[name]
                axis = next(
                    i for i, (g, w) in enumerate(zip(full.shape, local.shape))
                    if g == n and w == plan.num_local
                )
                np.testing.assert_array_equal(
                    local, np.take(full, plan.local, axis=axis)
                )

    def test_dcrnn_hidden_collision_is_safe(self, tiny_data):
        # With hidden=4 the gate projections have a 2*hidden == 8 == N axis;
        # shape reconciliation must keep those verbatim (the local model
        # expects 2*hidden, not the local node count) instead of slicing
        # every axis that happens to equal N.
        set_seed(2)
        model, _ = build_model("DCRNN", tiny_data, hidden=4, layers=1)
        bundle = make_servable("DCRNN", model, tiny_data, hidden=4, layers=1)
        assert 2 * 4 == bundle.spec.num_nodes  # the collision this test pins
        for plan in partition_graph(bundle.adjacency, 2).plans:
            sub = shard_bundle(bundle, plan)
            sub.instantiate()
            for name, value in bundle.state.items():
                if value.shape == sub.state[name].shape:
                    np.testing.assert_array_equal(sub.state[name], value)

    def test_unreconcilable_parameter_raises(self, bundle):
        (plan, _) = partition_graph(bundle.adjacency, 2).plans
        broken = ServableBundle(
            spec=bundle.spec,
            state={**bundle.state, "bogus": np.zeros((3, 5))},
            adjacency=bundle.adjacency,
            fallback_profile=bundle.fallback_profile,
            extra={},
        )
        with pytest.raises(CheckpointError):
            shard_bundle(broken, plan)


# ---------------------------------------------------------------------------
# The sharded engine
# ---------------------------------------------------------------------------
class TestShardedEngine:
    def test_k1_loopback_bit_identical_to_plain_engine(self, bundle, tiny_data):
        with _plain_engine(bundle) as plain:
            _warm(plain, tiny_data)
            reference = plain.forecast()
        with ShardedServingEngine(bundle, num_shards=1, transport="loopback") as sharded:
            _warm(sharded, tiny_data)
            result = sharded.forecast()
        assert result.source == reference.source == "model"
        np.testing.assert_array_equal(result.values, reference.values)

    def test_k2_matches_full_graph_with_wide_halo(self, bundle, tiny_data):
        # halo_hops large enough that each shard holds the whole dependency
        # ball of its owned nodes — owned-node outputs then equal the
        # full-graph forecast up to GEMM summation order.
        with _plain_engine(bundle) as plain:
            _warm(plain, tiny_data)
            reference = plain.forecast()
        with ShardedServingEngine(
            bundle, num_shards=2, transport="loopback", halo_hops=8
        ) as sharded:
            _warm(sharded, tiny_data)
            result = sharded.forecast()
        assert result.source == "model"
        np.testing.assert_allclose(result.values, reference.values, atol=1e-4)

    def test_replay_split_drives_the_router(self, bundle, tiny_data):
        with ShardedServingEngine(bundle, num_shards=2, transport="loopback") as engine:
            summary = replay_split(engine, tiny_data, steps=3, requests_per_step=2)
        assert summary["requests"] == 6
        assert summary["telemetry"]["num_shards"] == 2
        assert sum(summary["sources"].values()) == 6

    def test_publish_activate_hot_swap_lockstep(self, bundle, bundle_v2, tiny_data):
        with ShardedServingEngine(bundle, num_shards=2, transport="loopback") as engine:
            _warm(engine, tiny_data)
            first = engine.forecast()
            version = engine.publish(bundle_v2)
            assert version == "v2" and engine.active_version == "v2"
            swapped = engine.forecast()
            engine.activate("v1")
            back = engine.forecast()
        assert first.version == "v1" and swapped.version == "v2"
        assert not np.array_equal(first.values, swapped.values)
        np.testing.assert_array_equal(back.values, first.values)

    def test_activate_unknown_version_raises(self, bundle):
        with ShardedServingEngine(bundle, num_shards=1, transport="loopback") as engine:
            with pytest.raises(KeyError):
                engine.activate("v9")

    def test_admission_control_sheds(self, bundle, tiny_data):
        config = ServeConfig(
            policy=DegradationPolicy(max_inflight=0, shed_on_overload=True)
        )
        with ShardedServingEngine(
            bundle, num_shards=2, config=config, transport="loopback"
        ) as engine:
            _warm(engine, tiny_data)
            result = engine.forecast()
            report = engine.telemetry_report()
        assert result.source == "fallback" and result.reason == "shed"
        assert result.values.shape == (bundle.spec.horizon, bundle.spec.num_nodes)
        assert np.isfinite(result.values).all()
        assert report["shed"] == 1

    def test_shedding_disabled_lets_requests_through(self, bundle, tiny_data):
        config = ServeConfig(
            policy=DegradationPolicy(max_inflight=0, shed_on_overload=False)
        )
        with ShardedServingEngine(
            bundle, num_shards=2, config=config, transport="loopback"
        ) as engine:
            _warm(engine, tiny_data)
            result = engine.forecast()
        assert result.source == "model"

    def test_dead_worker_degrades_to_full_graph_fallback(self, bundle, tiny_data):
        class DeadTransport:
            def post(self, op, payload=()):
                raise TransportError("worker is gone")

            def wait(self):  # pragma: no cover - post always raises first
                raise TransportError("worker is gone")

            def close(self):
                pass

        with ShardedServingEngine(bundle, num_shards=2, transport="loopback") as engine:
            _warm(engine, tiny_data)
            engine.workers[1] = DeadTransport()
            result = engine.forecast()
            assert result.source == "fallback" and result.reason == "error"
            assert np.isfinite(result.values).all()

    def test_dead_worker_raises_in_strict_mode(self, bundle, tiny_data):
        class DeadTransport:
            def post(self, op, payload=()):
                raise TransportError("worker is gone")

            def close(self):
                pass

        config = ServeConfig(policy=DegradationPolicy(fallback_on_error=False))
        with ShardedServingEngine(
            bundle, num_shards=2, config=config, transport="loopback"
        ) as engine:
            _warm(engine, tiny_data)
            engine.workers[1] = DeadTransport()
            with pytest.raises(TransportError):
                engine.forecast()

    def test_rejects_unknown_transport(self, bundle):
        with pytest.raises(ValueError):
            ShardedServingEngine(bundle, num_shards=2, transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# The process transport
# ---------------------------------------------------------------------------
class TestProcessTransport:
    def test_round_trip_and_clean_shutdown(self, bundle, tiny_data):
        engine = ShardedServingEngine(bundle, num_shards=2, transport="process")
        try:
            _warm(engine, tiny_data)
            result = engine.forecast()
            assert result.source == "model"
            assert result.values.shape == (bundle.spec.horizon, bundle.spec.num_nodes)
            report = engine.telemetry_report()
            assert report["transport"] == "process"
            assert len(report["shards"]) == 2
        finally:
            engine.close()
        for worker in engine.workers:
            assert not worker.process.is_alive()
        engine.close()  # idempotent

    def test_worker_death_surfaces_as_transport_error(self, bundle):
        transport = ProcessTransport(bundle, request_timeout_s=5.0)
        try:
            transport.process.terminate()
            transport.process.join(timeout=5.0)
            with pytest.raises(TransportError):
                transport.request("telemetry")
        finally:
            transport.close()
        assert not transport.process.is_alive()


# ---------------------------------------------------------------------------
# Registry race safety (hot swap vs slow load)
# ---------------------------------------------------------------------------
class TestRegistryRaceSafety:
    def test_activate_during_slow_load_never_tears_the_triple(
        self, bundle, bundle_v2, monkeypatch
    ):
        registry = ModelRegistry()
        registry.publish(bundle)  # v1
        registry.publish(bundle_v2, activate=False)  # v2

        original = ServableBundle.instantiate
        started = threading.Event()

        def slow_instantiate(self):
            started.set()
            time.sleep(0.2)  # the injected slow load
            return original(self)

        monkeypatch.setattr(ServableBundle, "instantiate", slow_instantiate)

        triples = {}

        def resolve_v1():
            triples["first"] = registry.resolve()

        loader = threading.Thread(target=resolve_v1)
        loader.start()
        assert started.wait(timeout=5.0)
        registry.activate("v2")  # hot swap lands mid-load
        triples["second"] = registry.resolve()
        loader.join(timeout=10.0)
        assert not loader.is_alive()

        # Each resolve returns a consistent (version, model, bundle) triple:
        # the model's parameters are exactly the returned bundle's state.
        expected_bundle = {"first": bundle, "second": bundle_v2}
        for key, (version, model, resolved_bundle) in triples.items():
            assert resolved_bundle is expected_bundle[key]
            state = model.state_dict()
            assert set(state) == set(resolved_bundle.state)
            for name, value in resolved_bundle.state.items():
                np.testing.assert_array_equal(state[name], value)
        assert triples["first"][0] == "v1"
        assert triples["second"][0] == "v2"

    def test_concurrent_resolves_share_one_load(self, bundle, monkeypatch):
        registry = ModelRegistry()
        registry.publish(bundle)
        calls = []
        original = ServableBundle.instantiate

        def counting_instantiate(self):
            calls.append(1)
            time.sleep(0.05)
            return original(self)

        monkeypatch.setattr(ServableBundle, "instantiate", counting_instantiate)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(registry.resolve()))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(results) == 4
        assert len(calls) == 1  # one load, shared by every waiter
        assert all(r[1] is results[0][1] for r in results)


# ---------------------------------------------------------------------------
# Load generation
# ---------------------------------------------------------------------------
class TestLoadGenerator:
    def test_poisson_arrivals_deterministic_and_bounded(self):
        first = poisson_arrivals(100.0, 1.0, seed=7)
        second = poisson_arrivals(100.0, 1.0, seed=7)
        np.testing.assert_array_equal(first, second)
        assert (np.diff(first) > 0).all()
        assert first.size > 0 and first[-1] < 1.0
        assert not np.array_equal(first, poisson_arrivals(100.0, 1.0, seed=8))

    def test_poisson_arrivals_validates_inputs(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, 0.0)

    def test_closed_loop_summary(self, bundle, tiny_data):
        with ShardedServingEngine(bundle, num_shards=2, transport="loopback") as engine:
            result = run_load(engine, tiny_data, steps=3, requests_per_step=2)
        assert result.mode == "closed"
        assert result.requests == 6
        assert result.shed == 0
        assert result.latency_ms_p99 >= result.latency_ms_p50 >= 0.0

    def test_open_loop_sheds_everything_at_zero_inflight(self, bundle, tiny_data):
        config = ServeConfig(
            policy=DegradationPolicy(max_inflight=0, shed_on_overload=True)
        )
        with ShardedServingEngine(
            bundle, num_shards=2, config=config, transport="loopback"
        ) as engine:
            result = run_load(
                engine, tiny_data, rps=100.0, duration_s=0.3, steps=4, seed=3
            )
        assert result.mode == "open"
        assert result.requests > 0
        assert result.shed == result.requests
        assert result.sources == {"fallback": result.requests}
