"""Core components: estimation gate, diffusion block, inherent block, dynamic graph."""

import numpy as np
import pytest

from repro.core import (
    DiffusionBlock,
    DynamicGraphLearner,
    EstimationGate,
    InherentBlock,
    SpatialTemporalEmbeddings,
)
from repro.graph import (
    forward_transition,
    gaussian_kernel_adjacency,
    generate_road_network,
    shortest_path_distances,
)
from repro.tensor import Tensor

B, T, N, D = 2, 6, 5, 8


@pytest.fixture()
def embeddings():
    return SpatialTemporalEmbeddings(num_nodes=N, steps_per_day=288, dim=D)


@pytest.fixture()
def time_embs(embeddings, rng):
    tod = rng.integers(0, 288, size=(B, T))
    dow = rng.integers(0, 7, size=(B, T))
    return embeddings.time_features(tod, dow)


@pytest.fixture()
def transition(rng):
    net = generate_road_network(N, rng)
    return forward_transition(
        gaussian_kernel_adjacency(shortest_path_distances(net.distances))
    )


def latent(rng):
    return Tensor(rng.normal(size=(B, T, N, D)).astype(np.float32), requires_grad=True)


class TestEmbeddings:
    def test_time_feature_shapes(self, time_embs):
        t_day, t_week = time_embs
        assert t_day.shape == (B, T, D)
        assert t_week.shape == (B, T, D)

    def test_adaptive_transition_row_stochastic(self, embeddings):
        p = embeddings.adaptive_transition().numpy()
        assert p.shape == (N, N)
        np.testing.assert_allclose(p.sum(axis=-1), np.ones(N), rtol=1e-5)
        assert np.all(p >= 0)

    def test_adaptive_transition_has_gradient(self, embeddings):
        embeddings.adaptive_transition().sum().backward()
        assert embeddings.node_source.grad is not None
        assert embeddings.node_target.grad is not None


class TestEstimationGate:
    def test_gate_values_in_unit_interval(self, embeddings, time_embs):
        gate = EstimationGate(embed_dim=D, hidden_dim=D)
        t_day, t_week = time_embs
        values = gate.gate_values(
            t_day, t_week, embeddings.node_source, embeddings.node_target
        ).numpy()
        assert values.shape == (B, T, N, 1)
        assert np.all((values > 0.0) & (values < 1.0))

    def test_forward_scales_input(self, embeddings, time_embs, rng):
        gate = EstimationGate(embed_dim=D, hidden_dim=D)
        t_day, t_week = time_embs
        x = latent(rng)
        gated = gate(x, t_day, t_week, embeddings.node_source, embeddings.node_target)
        lam = gate.gate_values(t_day, t_week, embeddings.node_source, embeddings.node_target)
        np.testing.assert_allclose(gated.numpy(), lam.numpy() * x.numpy(), rtol=1e-5)

    def test_gradient_reaches_embeddings(self, embeddings, time_embs, rng):
        gate = EstimationGate(embed_dim=D, hidden_dim=D)
        t_day, t_week = time_embs
        x = latent(rng)
        gate(x, t_day, t_week, embeddings.node_source, embeddings.node_target).sum().backward()
        assert embeddings.node_source.grad is not None


class TestDiffusionBlock:
    def test_output_shapes(self, transition, rng):
        block = DiffusionBlock(D, num_supports=1, k_s=2, k_t=3, horizon=4)
        hidden, forecast, backcast = block(latent(rng), [transition])
        assert hidden.shape == (B, T, N, D)
        assert forecast.shape == (B, 4, N, D)
        assert backcast.shape == (B, T, N, D)

    def test_support_count_validated(self, transition, rng):
        block = DiffusionBlock(D, num_supports=2)
        with pytest.raises(ValueError):
            block(latent(rng), [transition])

    def test_self_signal_excluded(self, transition, rng):
        """The paper's core masking property (Eq. 4): a node's diffusion
        hidden state must not depend on its *own* input series."""
        block = DiffusionBlock(D, num_supports=1, k_s=2, k_t=2, horizon=2)
        x = rng.normal(size=(1, T, N, D)).astype(np.float32)
        node = 2
        hidden_a, _, _ = block(Tensor(x), [transition])
        perturbed = x.copy()
        perturbed[:, :, node, :] += 10.0
        hidden_b, _, _ = block(Tensor(perturbed), [transition])
        np.testing.assert_allclose(
            hidden_a.numpy()[:, :, node], hidden_b.numpy()[:, :, node], atol=1e-4
        )
        # ...but other nodes do see the change (it diffuses outward).
        others = [i for i in range(N) if i != node and transition[i, node] > 0]
        assert others, "test graph must connect the perturbed node"
        diff = np.abs(hidden_a.numpy()[:, :, others] - hidden_b.numpy()[:, :, others])
        assert diff.max() > 1e-3

    def test_temporal_locality(self, transition, rng):
        """Inputs older than k_t steps cannot reach the *current* hidden state
        through the localized convolution (only earlier hidden states see them)."""
        k_t = 2
        block = DiffusionBlock(D, num_supports=1, k_s=1, k_t=k_t, horizon=2)
        x = rng.normal(size=(1, T, N, D)).astype(np.float32)
        hidden_a, _, _ = block(Tensor(x), [transition])
        perturbed = x.copy()
        perturbed[:, 0] += 5.0  # oldest step
        hidden_b, _, _ = block(Tensor(perturbed), [transition])
        # Hidden states at steps >= k_t are unaffected by step 0.
        np.testing.assert_allclose(
            hidden_a.numpy()[:, k_t:], hidden_b.numpy()[:, k_t:], atol=1e-4
        )

    def test_dynamic_support_accepted(self, rng):
        block = DiffusionBlock(D, num_supports=1, k_s=2, k_t=2, horizon=3)
        dyn = Tensor(rng.uniform(0, 1, size=(B, N, N)).astype(np.float32), requires_grad=True)
        hidden, forecast, _ = block(latent(rng), [dyn])
        assert hidden.shape == (B, T, N, D)
        forecast.sum().backward()
        assert dyn.grad is not None

    def test_direct_forecast_mode(self, transition, rng):
        block = DiffusionBlock(D, num_supports=1, horizon=5, autoregressive=False)
        _, forecast, _ = block(latent(rng), [transition])
        assert forecast.shape == (B, 5, N, D)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DiffusionBlock(D, num_supports=0)


class TestInherentBlock:
    def test_output_shapes(self, rng):
        block = InherentBlock(D, num_heads=2, horizon=4)
        hidden, forecast, backcast = block(latent(rng))
        assert hidden.shape == (B, T, N, D)
        assert forecast.shape == (B, 4, N, D)
        assert backcast.shape == (B, T, N, D)

    def test_nodes_processed_independently(self, rng):
        """The inherent model must not mix information across nodes."""
        block = InherentBlock(D, num_heads=2, horizon=2)
        x = rng.normal(size=(1, T, N, D)).astype(np.float32)
        hidden_a, forecast_a, _ = block(Tensor(x))
        perturbed = x.copy()
        perturbed[:, :, 0, :] += 10.0
        hidden_b, forecast_b, _ = block(Tensor(perturbed))
        np.testing.assert_allclose(
            hidden_a.numpy()[:, :, 1:], hidden_b.numpy()[:, :, 1:], atol=1e-4
        )
        np.testing.assert_allclose(
            forecast_a.numpy()[:, :, 1:], forecast_b.numpy()[:, :, 1:], atol=1e-4
        )

    def test_needs_at_least_one_submodule(self):
        with pytest.raises(ValueError):
            InherentBlock(D, use_gru=False, use_msa=False)

    def test_wo_gru_variant(self, rng):
        block = InherentBlock(D, num_heads=2, horizon=3, use_gru=False)
        hidden, forecast, _ = block(latent(rng))
        assert hidden.shape == (B, T, N, D)
        assert forecast.shape == (B, 3, N, D)

    def test_wo_msa_variant(self, rng):
        block = InherentBlock(D, num_heads=2, horizon=3, use_msa=False)
        hidden, _, _ = block(latent(rng))
        assert hidden.shape == (B, T, N, D)

    def test_direct_forecast_mode(self, rng):
        block = InherentBlock(D, num_heads=2, horizon=6, autoregressive=False)
        _, forecast, _ = block(latent(rng))
        assert forecast.shape == (B, 6, N, D)


class TestDynamicGraphLearner:
    def test_shapes_and_masking(self, embeddings, time_embs, transition, rng):
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D)
        t_day, t_week = time_embs
        p_f, p_b = learner(
            latent(rng), t_day, t_week,
            embeddings.node_source, embeddings.node_target,
            transition, transition.T.copy(),
        )
        assert p_f.shape == (B, N, N)
        assert p_b.shape == (B, N, N)
        # Dynamic graph can only *modulate* existing edges (Eq. 14):
        # zero static entries stay zero.
        static_zero = transition == 0
        assert np.all(p_f.numpy()[:, static_zero] == 0.0)

    def test_depends_on_input(self, embeddings, time_embs, transition, rng):
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D)
        t_day, t_week = time_embs
        args = (t_day, t_week, embeddings.node_source, embeddings.node_target,
                transition, transition.T.copy())
        p1, _ = learner(latent(rng), *args)
        p2, _ = learner(latent(rng), *args)
        assert not np.allclose(p1.numpy(), p2.numpy())

    def test_gradients_flow(self, embeddings, time_embs, transition, rng):
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D)
        t_day, t_week = time_embs
        x = latent(rng)
        p_f, _ = learner(
            x, t_day, t_week, embeddings.node_source, embeddings.node_target,
            transition, transition.T.copy(),
        )
        p_f.sum().backward()
        assert x.grad is not None
        assert embeddings.node_source.grad is not None
