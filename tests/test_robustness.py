"""Robustness and edge-case tests across the training stack."""

import numpy as np
import pytest

from repro import nn
from repro.core import D2STGNN, D2STGNNConfig
from repro.tensor import Tensor
from repro.training import Trainer, TrainerConfig
from repro.utils.seed import set_seed


class _ConstantForecaster(nn.Module):
    """Returns a fixed prediction; records the calls it receives."""

    def __init__(self, value: float, horizon: int = 12, out_channels: int = 1):
        super().__init__()
        self.value = value
        self.horizon = horizon
        self.out_channels = out_channels
        self.dummy = nn.Parameter(np.zeros(1, dtype=np.float32))
        self.calls = []

    def forward(self, x, tod, dow):
        self.calls.append(x.shape if hasattr(x, "shape") else None)
        batch, _, nodes, _ = x.shape
        base = Tensor(np.full((batch, self.horizon, nodes, self.out_channels), self.value, np.float32))
        return base + self.dummy * 0.0  # keep a parameter in the graph


class TestCurriculumLossInteraction:
    def test_active_horizon_limits_supervision(self, tiny_data):
        """With curriculum at horizon 1, the loss must ignore later steps."""
        model = _ConstantForecaster(0.0)
        trainer = Trainer(model, tiny_data, TrainerConfig(epochs=1))
        batch = next(iter(tiny_data.loader("train", batch_size=8)))
        scaler = tiny_data.scaler
        loss_h1 = trainer._loss(batch, active_horizon=1).item()
        loss_full = trainer._loss(batch, active_horizon=12).item()
        # Manual expectation for horizon 1: masked MAE between the constant
        # (inverse-transformed) and the raw targets of the first step.
        constant = 0.0 * scaler.std + scaler.mean
        target = batch.y[:, :1]
        mask = target != 0
        expected = np.abs(constant - target[mask]).mean()
        assert loss_h1 == pytest.approx(expected, rel=1e-4)
        assert loss_h1 != pytest.approx(loss_full, rel=1e-3)


class TestTrainerRobustness:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # overflow is the point
    def test_divergent_lr_stops_cleanly(self, tiny_data):
        """A hopeless learning rate must not crash the loop: NaN validation
        losses count against patience and training halts."""
        set_seed(0)
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes, steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
        )
        model = D2STGNN(config, tiny_data.adjacency)
        trainer = Trainer(
            model, tiny_data,
            TrainerConfig(epochs=4, batch_size=64, learning_rate=1e4, clip_norm=1e9, patience=2),
        )
        history = trainer.train()  # must return, not raise
        assert history.epochs_run <= 4

    def test_single_batch_epoch(self, tiny_data):
        set_seed(0)
        model = _ConstantForecaster(55.0)
        trainer = Trainer(model, tiny_data, TrainerConfig(epochs=1, batch_size=10_000))
        history = trainer.train()
        assert history.epochs_run == 1

    def test_batch_size_one(self, tiny_data):
        set_seed(0)
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes, steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
        )
        model = D2STGNN(config, tiny_data.adjacency)
        batch = tiny_data.train.gather(np.array([0]))
        out = model(batch.x, batch.tod, batch.dow)
        assert out.shape[0] == 1


class TestBatchGatherConsistency:
    def test_gather_matches_individual_samples(self, tiny_data):
        subset = tiny_data.train
        indices = np.array([0, 3, 7])
        batch = subset.gather(indices)
        for row, index in enumerate(indices):
            single = subset.gather(np.array([index]))
            np.testing.assert_array_equal(batch.x[row], single.x[0])
            np.testing.assert_array_equal(batch.y[row], single.y[0])
            np.testing.assert_array_equal(batch.tod[row], single.tod[0])


class TestTemporalConvEdges:
    def test_dilation_beyond_sequence(self, rng):
        conv = nn.CausalConv(3, 3, dilation=10)
        x = Tensor(rng.normal(size=(1, 4, 2, 3)).astype(np.float32))
        out = conv(x)
        # Falls back to the pointwise term only.
        np.testing.assert_allclose(out.numpy(), conv.w_now(x).numpy(), rtol=1e-6)

    def test_invalid_dilation(self):
        with pytest.raises(ValueError):
            nn.CausalConv(2, 2, dilation=0)


class TestGateBroadcastEdges:
    def test_batch_of_one_and_step_of_one(self, rng):
        from repro.core import EstimationGate, SpatialTemporalEmbeddings

        embeddings = SpatialTemporalEmbeddings(num_nodes=3, steps_per_day=288, dim=4)
        gate = EstimationGate(embed_dim=4, hidden_dim=4)
        tod = np.array([[5]])
        dow = np.array([[0]])
        t_day, t_week = embeddings.time_features(tod, dow)
        values = gate.gate_values(
            t_day, t_week, embeddings.node_source, embeddings.node_target
        )
        assert values.shape == (1, 1, 3, 1)
