"""Statistical baselines: HA, VAR, SVR."""

import numpy as np
import pytest

from repro.baselines import SVR, VAR, HistoricalAverage
from repro.data import build_forecasting_data, load_dataset
from repro.training import masked_mae, predict_split


@pytest.fixture(scope="module")
def data():
    # Low noise so statistical baselines have a clean signal to find.
    return build_forecasting_data(load_dataset("metr-la-sim", num_nodes=6, num_steps=900))


class TestHistoricalAverage:
    def test_unfit_raises(self, data):
        model = HistoricalAverage(data.steps_per_day)
        batch = next(iter(data.loader("test", batch_size=2)))
        with pytest.raises(RuntimeError):
            model(batch.x, batch.tod, batch.dow)

    def test_prediction_shape(self, data):
        model = HistoricalAverage(data.steps_per_day).fit(data)
        batch = next(iter(data.loader("test", batch_size=3)))
        assert model(batch.x, batch.tod, batch.dow).shape == (3, 12, 6, 1)

    def test_beats_zero_predictor(self, data):
        model = HistoricalAverage(data.steps_per_day).fit(data)
        pred, target = predict_split(model, data, split="test")
        zero_mae = masked_mae(np.zeros_like(target), target)
        assert masked_mae(pred, target) < 0.5 * zero_mae

    def test_recovers_pure_periodic_series(self):
        """On a perfectly periodic series HA must be near-exact."""
        from repro.data import StandardScaler
        from repro.data.windows import WindowDataset

        steps_per_day, days, n = 48, 10, 2
        t = steps_per_day * days
        tod = np.arange(t) % steps_per_day
        dow = (np.arange(t) // steps_per_day) % 7
        base = 30 + 10 * np.sin(2 * np.pi * tod / steps_per_day)
        values = np.stack([base, base * 0.5], axis=1).astype(np.float32)

        class FakeData:
            pass

        scaler = StandardScaler(null_value=0.0).fit(values)
        windows = WindowDataset(scaler.transform(values), values, tod, dow, 12, 12)
        fake = FakeData()
        fake.steps_per_day = steps_per_day
        fake.scaler = scaler
        fake.windows = windows
        fake.train = windows.subset(0, len(windows) - 30)

        class FakeDataset:
            pass

        fake.dataset = FakeDataset()

        class FakeSeries:
            pass

        fake.dataset.series = FakeSeries()
        fake.dataset.series.values = values
        fake.dataset.series.time_of_day = tod
        fake.dataset.series.day_of_week = dow

        model = HistoricalAverage(steps_per_day).fit(fake)
        x, y, btod, bdow = windows.sample(len(windows) - 5)
        pred = model(x[None], btod[None], bdow[None]).numpy()
        pred_raw = scaler.inverse_transform(pred[0, :, :, 0])
        np.testing.assert_allclose(pred_raw, y[:, :, 0], atol=0.5)


class TestVAR:
    def test_validates_order(self):
        with pytest.raises(ValueError):
            VAR(lags=0)

    def test_unfit_raises(self, data):
        batch = next(iter(data.loader("test", batch_size=2)))
        with pytest.raises(RuntimeError):
            VAR()(batch.x, batch.tod, batch.dow)

    def test_prediction_shape(self, data):
        model = VAR(lags=3).fit(data)
        batch = next(iter(data.loader("test", batch_size=4)))
        assert model(batch.x, batch.tod, batch.dow).shape == (4, 12, 6, 1)

    def test_recovers_known_var_process(self):
        """Fit on a synthetic VAR(1) process and check coefficient recovery."""
        rng = np.random.default_rng(0)
        n, t = 3, 4000
        a = np.array([[0.5, 0.2, 0.0], [0.0, 0.4, 0.1], [0.1, 0.0, 0.6]])
        series = np.zeros((t, n))
        for i in range(1, t):
            series[i] = series[i - 1] @ a.T + rng.normal(0, 0.1, n)

        from repro.data import StandardScaler
        from repro.data.windows import WindowDataset

        scaler = StandardScaler(null_value=None).fit(series[:3000])

        class FakeData:
            pass

        fake = FakeData()
        fake.scaler = scaler

        class DS:
            pass

        fake.dataset = DS()

        class S:
            pass

        fake.dataset.series = S()
        fake.dataset.series.values = series.astype(np.float32)
        windows = WindowDataset(
            scaler.transform(series), series.astype(np.float32),
            np.arange(t) % 288, (np.arange(t) // 288) % 7, 12, 12,
        )
        fake.windows = windows
        fake.train = windows.subset(0, 3000)

        model = VAR(lags=1, ridge=1e-6).fit(fake)
        learned = model._coefficients[:n]  # lag-1 block maps y_{t-1} -> y_t
        np.testing.assert_allclose(learned, a.T, atol=0.05)

    def test_beats_historical_average(self, data):
        """Table 3 ordering: VAR < HA in error (it sees spatial structure)."""
        var_model = VAR(lags=3).fit(data)
        ha_model = HistoricalAverage(data.steps_per_day).fit(data)
        var_pred, target = predict_split(var_model, data, split="test")
        ha_pred, _ = predict_split(ha_model, data, split="test")
        # Compare at the short horizon where VAR is strong.
        assert masked_mae(var_pred[:, 0], target[:, 0]) < masked_mae(ha_pred[:, 0], target[:, 0])


class TestSVR:
    def test_unfit_raises(self, data):
        batch = next(iter(data.loader("test", batch_size=2)))
        with pytest.raises(RuntimeError):
            SVR()(batch.x, batch.tod, batch.dow)

    def test_prediction_shape(self, data):
        model = SVR(epochs=5).fit(data)
        batch = next(iter(data.loader("test", batch_size=3)))
        assert model(batch.x, batch.tod, batch.dow).shape == (3, 12, 6, 1)

    def test_fits_linear_relationship(self):
        """If target = last observation, SVR should learn the identity lag."""
        rng = np.random.default_rng(1)
        t = 600
        series = np.cumsum(rng.normal(0, 0.05, size=(t, 2)), axis=0).astype(np.float32)

        from repro.data import StandardScaler
        from repro.data.windows import WindowDataset

        scaler = StandardScaler(null_value=None).fit(series)

        class FakeData:
            pass

        fake = FakeData()
        fake.scaler = scaler
        windows = WindowDataset(
            scaler.transform(series), series,
            np.arange(t) % 288, (np.arange(t) // 288) % 7, 12, 12,
        )
        fake.windows = windows
        fake.train = windows.subset(0, 400)
        model = SVR(epochs=80, learning_rate=0.1).fit(fake)
        # Horizon-1 weights should put most mass on the most recent lag.
        w = model._weights[:, 0]
        assert abs(w[11]) > abs(w[:8]).max()

    def test_beats_zero_predictor(self, data):
        model = SVR(epochs=30).fit(data)
        pred, target = predict_split(model, data, split="test")
        zero_mae = masked_mae(np.zeros_like(target), target)
        assert masked_mae(pred, target) < zero_mae
