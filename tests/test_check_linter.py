"""The repo linter: golden fixture, suppression, allowlists, clean HEAD."""

from pathlib import Path

import pytest

from repro.check import (
    DEFAULT_LINT_PATHS,
    Finding,
    LINT_RULES,
    format_findings,
    lint_file,
    lint_paths,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = Path(__file__).resolve().parent / "fixtures" / "lint_violations.py"

# The golden contract: linting the fixture yields exactly these (line, rule)
# pairs — every deliberate violation caught, both suppressions honoured,
# and none of the compliant lines flagged.
EXPECTED = [
    (19, "R001"),  # np.random.seed
    (20, "R001"),  # np.random.rand
    (21, "R001"),  # unseeded default_rng()
    (28, "R002"),  # Module subclass without super().__init__()
    (35, "R003"),  # raw init.* assignment
    (36, "R003"),  # raw Tensor(requires_grad=True) assignment
    (41, "R004"),  # .data rebinding
    (42, "R004"),  # .data augmented assignment
    (43, "R004"),  # .data slice write
    (50, "R005"),  # time.time()
    (51, "R005"),  # time.perf_counter()
    (56, "R006"),  # raw np.savez
    (57, "R006"),  # raw np.savez_compressed
]


class TestGoldenFixture:
    def test_exact_findings(self):
        findings = lint_file(FIXTURE)
        assert [(f.line, f.rule) for f in findings] == EXPECTED

    def test_every_rule_fires_at_least_once(self):
        rules = {f.rule for f in lint_file(FIXTURE)}
        # R007 is scoped to the data/training packages, R008 to the serve
        # package and R009 to the sharded-serving modules, so none of them
        # can fire on the fixture's path; TestPerSampleLoops,
        # TestServeForwards and TestScaleForwards cover them in place.
        assert rules == set(LINT_RULES) - {"R007", "R008", "R009"}

    def test_suppressed_lines_do_not_appear(self):
        lines = {f.line for f in lint_file(FIXTURE)}
        source = FIXTURE.read_text().splitlines()
        for lineno, text in enumerate(source, start=1):
            if "lint: disable" in text:
                assert lineno not in lines

    def test_format_is_path_line_rule(self):
        first = lint_file(FIXTURE)[0]
        formatted = first.format()
        assert formatted.startswith(f"{first.path}:19: R001")


class TestAllowlists:
    def _write(self, root: Path, rel: str, body: str) -> Path:
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return path

    def test_optim_may_write_data(self, tmp_path):
        body = "def step(param, update):\n    param.data -= update\n"
        inside = self._write(tmp_path, "src/repro/optim/sgd.py", body)
        outside = self._write(tmp_path, "src/repro/nn/bad.py", body)
        assert lint_file(inside, relative_to=tmp_path) == []
        assert [f.rule for f in lint_file(outside, relative_to=tmp_path)] == ["R004"]

    def test_timer_may_read_wall_clock(self, tmp_path):
        body = "import time\n\ndef now():\n    return time.perf_counter()\n"
        inside = self._write(tmp_path, "src/repro/utils/timer.py", body)
        outside = self._write(tmp_path, "src/repro/utils/other.py", body)
        assert lint_file(inside, relative_to=tmp_path) == []
        assert [f.rule for f in lint_file(outside, relative_to=tmp_path)] == ["R005"]

    def test_self_data_attribute_is_not_a_tensor_write(self, tmp_path):
        body = "class Holder:\n    def __init__(self, data):\n        self.data = data\n"
        path = self._write(tmp_path, "src/repro/thing.py", body)
        assert lint_file(path, relative_to=tmp_path) == []

    def test_atomic_helper_may_savez(self, tmp_path):
        body = "import numpy as np\n\ndef save(handle, arrays):\n    np.savez_compressed(handle, **arrays)\n"
        inside = self._write(tmp_path, "src/repro/utils/atomic.py", body)
        outside = self._write(tmp_path, "src/repro/utils/other.py", body)
        assert lint_file(inside, relative_to=tmp_path) == []
        assert [f.rule for f in lint_file(outside, relative_to=tmp_path)] == ["R006"]

    def test_persist_modules_may_not_open_for_write(self, tmp_path):
        body = (
            "def dump(path, text):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(text)\n"
        )
        inside = self._write(tmp_path, "src/repro/obs/sinks.py", body)
        elsewhere = self._write(tmp_path, "src/repro/analysis/report.py", body)
        assert [f.rule for f in lint_file(inside, relative_to=tmp_path)] == ["R006"]
        assert lint_file(elsewhere, relative_to=tmp_path) == []

    def test_persist_modules_may_append_and_read(self, tmp_path):
        body = (
            "def tail(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )
        path = self._write(tmp_path, "src/repro/data/io.py", body)
        assert lint_file(path, relative_to=tmp_path) == []


class TestPerSampleLoops:
    """R007: no per-sample Python loops over batch indices in the hot paths."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_for_loop_over_indices_flagged_in_data(self, tmp_path):
        body = "def gather(self, indices):\n    for i in indices:\n        self.sample(i)\n"
        assert self._lint(tmp_path, "src/repro/data/windows.py", body) == ["R007"]

    def test_unscoped_packages_are_exempt(self, tmp_path):
        body = "def walk(indices):\n    for i in indices:\n        print(i)\n"
        assert self._lint(tmp_path, "src/repro/analysis/report.py", body) == []

    def test_comprehension_over_attribute_indices_flagged(self, tmp_path):
        body = "def gather(self):\n    return [self.sample(i) for i in self.batch_indices]\n"
        assert self._lint(tmp_path, "src/repro/training/loop.py", body) == ["R007"]

    def test_range_over_num_samples_flagged(self, tmp_path):
        body = "def walk(self):\n    return [self.sample(i) for i in range(self.num_samples)]\n"
        assert self._lint(tmp_path, "src/repro/data/windows.py", body) == ["R007"]

    def test_unrelated_loops_pass(self, tmp_path):
        body = (
            "def epochs(batches, n):\n"
            "    for batch in batches:\n"
            "        pass\n"
            "    for e in range(n):\n"
            "        pass\n"
        )
        assert self._lint(tmp_path, "src/repro/training/loop.py", body) == []

    def test_suppression_is_honoured(self, tmp_path):
        body = (
            "def gather_loop(self, indices):\n"
            "    return [self.sample(i) for i in indices]  # lint: disable=R007\n"
        )
        assert self._lint(tmp_path, "src/repro/data/windows.py", body) == []


class TestServeForwards:
    """R008: model forwards in repro.serve only inside the micro-batcher."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_direct_model_call_flagged_in_serve(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/engine.py", body) == ["R008"]

    def test_attribute_model_call_flagged(self, tmp_path):
        body = "def answer(self, x, tod, dow):\n    return self.model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/registry.py", body) == ["R008"]

    def test_explicit_forward_call_flagged(self, tmp_path):
        body = "def answer(net, x, tod, dow):\n    return net.forward(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/cache.py", body) == ["R008"]

    def test_microbatcher_is_allowlisted(self, tmp_path):
        body = "def run_batch(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/microbatch.py", body) == []

    def test_outside_serve_is_exempt(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/training/loop.py", body) == []

    def test_non_forward_calls_pass_in_serve(self, tmp_path):
        body = (
            "def publish(bundle, registry):\n"
            "    instance = bundle.instantiate()\n"
            "    registry.activate('v1')\n"
            "    return instance.state_dict()\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/registry.py", body) == []

    def test_suppression_is_honoured(self, tmp_path):
        body = (
            "def probe(model, x, tod, dow):\n"
            "    return model(x, tod, dow)  # lint: disable=R008\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/debug.py", body) == []


class TestScaleForwards:
    """R009: no model forwards in the sharded serving modules."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_forward_in_router_is_r009_not_r008(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/router.py", body) == ["R009"]

    def test_forward_in_transport_flagged(self, tmp_path):
        body = "def answer(self, x, tod, dow):\n    return self.model.forward(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/transport.py", body) == ["R009"]

    def test_instantiate_and_call_flagged(self, tmp_path):
        body = "def answer(bundle, x, tod, dow):\n    return bundle.instantiate()(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/shard.py", body) == ["R009"]

    def test_instantiate_without_call_passes(self, tmp_path):
        body = "def template(bundle):\n    return bundle.instantiate_fresh()\n"
        assert self._lint(tmp_path, "src/repro/serve/shard.py", body) == []

    def test_plain_serve_module_still_reports_r008(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/engine.py", body) == ["R008"]

    def test_suppression_is_honoured(self, tmp_path):
        body = (
            "def probe(model, x, tod, dow):\n"
            "    return model(x, tod, dow)  # lint: disable=R009\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/loadgen.py", body) == []


class TestLintPaths:
    def test_repo_head_is_clean(self):
        findings = lint_paths(root=REPO_ROOT)
        assert findings == [], format_findings(findings)

    def test_default_paths_cover_the_source_tree(self):
        assert DEFAULT_LINT_PATHS == ("src", "examples", "benchmarks")

    def test_missing_paths_are_skipped(self, tmp_path):
        assert lint_paths(("nothing_here",), root=tmp_path) == []

    def test_findings_sorted_and_hashable(self):
        findings = lint_file(FIXTURE)
        assert findings == sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        assert len(set(findings)) == len(findings)  # frozen dataclass


class TestRuleTable:
    def test_rules_are_documented(self):
        assert set(LINT_RULES) == {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
            "R009",
        }
        for rule, description in LINT_RULES.items():
            assert description, rule

    def test_format_findings_clean(self):
        assert format_findings([]) == "lint: clean"

    def test_format_findings_summary_line(self):
        findings = [Finding("a.py", 1, "R001", "msg")]
        assert format_findings(findings).endswith("lint: 1 finding(s)")
