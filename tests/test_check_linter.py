"""The repo linter: golden fixture, suppression, allowlists, clean HEAD."""

from pathlib import Path

import pytest

from repro.check import (
    DEFAULT_LINT_PATHS,
    Finding,
    LINT_RULES,
    LintRun,
    format_findings,
    lint_file,
    lint_file_report,
    lint_paths,
    lint_paths_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = Path(__file__).resolve().parent / "fixtures" / "lint_violations.py"

# The golden contract: linting the fixture yields exactly these (line, rule)
# pairs — every deliberate violation caught, both suppressions honoured,
# and none of the compliant lines flagged.
EXPECTED = [
    (19, "R001"),  # np.random.seed
    (20, "R001"),  # np.random.rand
    (21, "R001"),  # unseeded default_rng()
    (28, "R002"),  # Module subclass without super().__init__()
    (35, "R003"),  # raw init.* assignment
    (36, "R003"),  # raw Tensor(requires_grad=True) assignment
    (41, "R004"),  # .data rebinding
    (42, "R004"),  # .data augmented assignment
    (43, "R004"),  # .data slice write
    (50, "R005"),  # time.time()
    (51, "R005"),  # time.perf_counter()
    (56, "R006"),  # raw np.savez
    (57, "R006"),  # raw np.savez_compressed
]


class TestGoldenFixture:
    def test_exact_findings(self):
        findings = lint_file(FIXTURE)
        assert [(f.line, f.rule) for f in findings] == EXPECTED

    def test_every_rule_fires_at_least_once(self):
        rules = {f.rule for f in lint_file(FIXTURE)}
        # R007 is scoped to the data/training packages, R008 to the serve
        # package, R009 to the sharded-serving modules, R010 to the
        # inference entry points and R011 to the event module, so none of
        # them can fire on the fixture's path; TestPerSampleLoops,
        # TestServeForwards, TestScaleForwards, TestInferenceForwards,
        # TestEventSeeds and TestPerRuleFixtures cover them in place.
        assert rules == set(LINT_RULES) - {"R007", "R008", "R009", "R010", "R011"}

    def test_suppressed_lines_do_not_appear(self):
        lines = {f.line for f in lint_file(FIXTURE)}
        source = FIXTURE.read_text().splitlines()
        for lineno, text in enumerate(source, start=1):
            if "lint: disable" in text:
                assert lineno not in lines

    def test_format_is_path_line_rule(self):
        first = lint_file(FIXTURE)[0]
        formatted = first.format()
        assert formatted.startswith(f"{first.path}:19: R001")


class TestAllowlists:
    def _write(self, root: Path, rel: str, body: str) -> Path:
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return path

    def test_optim_may_write_data(self, tmp_path):
        body = "def step(param, update):\n    param.data -= update\n"
        inside = self._write(tmp_path, "src/repro/optim/sgd.py", body)
        outside = self._write(tmp_path, "src/repro/nn/bad.py", body)
        assert lint_file(inside, relative_to=tmp_path) == []
        assert [f.rule for f in lint_file(outside, relative_to=tmp_path)] == ["R004"]

    def test_timer_may_read_wall_clock(self, tmp_path):
        body = "import time\n\ndef now():\n    return time.perf_counter()\n"
        inside = self._write(tmp_path, "src/repro/utils/timer.py", body)
        outside = self._write(tmp_path, "src/repro/utils/other.py", body)
        assert lint_file(inside, relative_to=tmp_path) == []
        assert [f.rule for f in lint_file(outside, relative_to=tmp_path)] == ["R005"]

    def test_self_data_attribute_is_not_a_tensor_write(self, tmp_path):
        body = "class Holder:\n    def __init__(self, data):\n        self.data = data\n"
        path = self._write(tmp_path, "src/repro/thing.py", body)
        assert lint_file(path, relative_to=tmp_path) == []

    def test_atomic_helper_may_savez(self, tmp_path):
        body = "import numpy as np\n\ndef save(handle, arrays):\n    np.savez_compressed(handle, **arrays)\n"
        inside = self._write(tmp_path, "src/repro/utils/atomic.py", body)
        outside = self._write(tmp_path, "src/repro/utils/other.py", body)
        assert lint_file(inside, relative_to=tmp_path) == []
        assert [f.rule for f in lint_file(outside, relative_to=tmp_path)] == ["R006"]

    def test_persist_modules_may_not_open_for_write(self, tmp_path):
        body = (
            "def dump(path, text):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(text)\n"
        )
        inside = self._write(tmp_path, "src/repro/obs/sinks.py", body)
        elsewhere = self._write(tmp_path, "src/repro/analysis/report.py", body)
        assert [f.rule for f in lint_file(inside, relative_to=tmp_path)] == ["R006"]
        assert lint_file(elsewhere, relative_to=tmp_path) == []

    def test_persist_modules_may_append_and_read(self, tmp_path):
        body = (
            "def tail(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )
        path = self._write(tmp_path, "src/repro/data/io.py", body)
        assert lint_file(path, relative_to=tmp_path) == []


class TestPerSampleLoops:
    """R007: no per-sample Python loops over batch indices in the hot paths."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_for_loop_over_indices_flagged_in_data(self, tmp_path):
        body = "def gather(self, indices):\n    for i in indices:\n        self.sample(i)\n"
        assert self._lint(tmp_path, "src/repro/data/windows.py", body) == ["R007"]

    def test_unscoped_packages_are_exempt(self, tmp_path):
        body = "def walk(indices):\n    for i in indices:\n        print(i)\n"
        assert self._lint(tmp_path, "src/repro/analysis/report.py", body) == []

    def test_comprehension_over_attribute_indices_flagged(self, tmp_path):
        body = "def gather(self):\n    return [self.sample(i) for i in self.batch_indices]\n"
        assert self._lint(tmp_path, "src/repro/training/loop.py", body) == ["R007"]

    def test_range_over_num_samples_flagged(self, tmp_path):
        body = "def walk(self):\n    return [self.sample(i) for i in range(self.num_samples)]\n"
        assert self._lint(tmp_path, "src/repro/data/windows.py", body) == ["R007"]

    def test_unrelated_loops_pass(self, tmp_path):
        body = (
            "def epochs(batches, n):\n"
            "    for batch in batches:\n"
            "        pass\n"
            "    for e in range(n):\n"
            "        pass\n"
        )
        assert self._lint(tmp_path, "src/repro/training/loop.py", body) == []

    def test_suppression_is_honoured(self, tmp_path):
        body = (
            "def gather_loop(self, indices):\n"
            "    return [self.sample(i) for i in indices]  # lint: disable=R007\n"
        )
        assert self._lint(tmp_path, "src/repro/data/windows.py", body) == []


class TestServeForwards:
    """R008: model forwards in repro.serve only inside the micro-batcher."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_direct_model_call_flagged_in_serve(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/engine.py", body) == ["R008"]

    def test_attribute_model_call_flagged(self, tmp_path):
        body = "def answer(self, x, tod, dow):\n    return self.model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/registry.py", body) == ["R008"]

    def test_explicit_forward_call_flagged(self, tmp_path):
        body = "def answer(net, x, tod, dow):\n    return net.forward(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/cache.py", body) == ["R008"]

    def test_microbatcher_is_allowlisted(self, tmp_path):
        # The micro-batcher is the one sanctioned forward site (no R008), but
        # since R010 its forward additionally has to run under a guard.
        body = (
            "def run_batch(model, x, tod, dow):\n"
            "    with model.inference():\n"
            "        return model(x, tod, dow)\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/microbatch.py", body) == []

    def test_outside_serve_is_exempt(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/training/loop.py", body) == []

    def test_non_forward_calls_pass_in_serve(self, tmp_path):
        body = (
            "def publish(bundle, registry):\n"
            "    instance = bundle.instantiate()\n"
            "    registry.activate('v1')\n"
            "    return instance.state_dict()\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/registry.py", body) == []

    def test_suppression_is_honoured(self, tmp_path):
        body = (
            "def probe(model, x, tod, dow):\n"
            "    return model(x, tod, dow)  # lint: disable=R008\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/debug.py", body) == []


class TestScaleForwards:
    """R009: no model forwards in the sharded serving modules."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_forward_in_router_is_r009_not_r008(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/router.py", body) == ["R009"]

    def test_forward_in_transport_flagged(self, tmp_path):
        body = "def answer(self, x, tod, dow):\n    return self.model.forward(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/transport.py", body) == ["R009"]

    def test_instantiate_and_call_flagged(self, tmp_path):
        body = "def answer(bundle, x, tod, dow):\n    return bundle.instantiate()(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/shard.py", body) == ["R009"]

    def test_instantiate_without_call_passes(self, tmp_path):
        body = "def template(bundle):\n    return bundle.instantiate_fresh()\n"
        assert self._lint(tmp_path, "src/repro/serve/shard.py", body) == []

    def test_plain_serve_module_still_reports_r008(self, tmp_path):
        body = "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/engine.py", body) == ["R008"]

    def test_suppression_is_honoured(self, tmp_path):
        body = (
            "def probe(model, x, tod, dow):\n"
            "    return model(x, tod, dow)  # lint: disable=R009\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/loadgen.py", body) == []


class TestInferenceForwards:
    """R010: inference entry points must forward under inference_mode()."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_unguarded_forward_in_evaluation_flagged(self, tmp_path):
        body = "def evaluate_split(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/training/evaluation.py", body) == ["R010"]

    def test_unguarded_forward_in_microbatcher_flagged(self, tmp_path):
        # microbatch.py is R008-allowlisted — the forward is *supposed* to
        # happen there — but it still has to be guarded, so R010 fires alone.
        body = "def run_batch(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/serve/microbatch.py", body) == ["R010"]

    def test_inference_mode_guard_passes(self, tmp_path):
        body = (
            "from repro.tensor import inference_mode\n"
            "def evaluate_split(model, x, tod, dow):\n"
            "    with inference_mode():\n"
            "        return model(x, tod, dow)\n"
        )
        assert self._lint(tmp_path, "src/repro/training/evaluation.py", body) == []

    def test_module_inference_shorthand_passes(self, tmp_path):
        body = (
            "def run_batch(model, x, tod, dow):\n"
            "    with model.inference():\n"
            "        return model(x, tod, dow)\n"
        )
        assert self._lint(tmp_path, "src/repro/serve/microbatch.py", body) == []

    def test_guard_does_not_leak_past_the_with_block(self, tmp_path):
        body = (
            "from repro.tensor import inference_mode\n"
            "def evaluate_split(model, x, tod, dow):\n"
            "    with inference_mode():\n"
            "        pass\n"
            "    return model(x, tod, dow)\n"
        )
        assert self._lint(tmp_path, "src/repro/training/evaluation.py", body) == ["R010"]

    def test_unscoped_modules_are_exempt(self, tmp_path):
        body = "def step(model, x, tod, dow):\n    return model(x, tod, dow)\n"
        assert self._lint(tmp_path, "src/repro/training/loop.py", body) == []

    def test_unrelated_with_is_not_a_guard(self, tmp_path):
        body = (
            "def evaluate_split(model, x, tod, dow, lock):\n"
            "    with lock:\n"
            "        return model(x, tod, dow)\n"
        )
        assert self._lint(tmp_path, "src/repro/training/evaluation.py", body) == ["R010"]

    def test_suppression_is_honoured(self, tmp_path):
        body = (
            "def probe(model, x, tod, dow):\n"
            "    return model(x, tod, dow)  # lint: disable=R010\n"
        )
        assert self._lint(tmp_path, "src/repro/training/evaluation.py", body) == []


class TestEventSeeds:
    """R011: event classes carry explicit seeds; no argless default_rng()."""

    def _lint(self, tmp_path: Path, rel: str, body: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return [f.rule for f in lint_file(path, relative_to=tmp_path)]

    def test_event_class_without_seed_fires(self, tmp_path):
        body = "class Flood(Event):\n    start: int = 0\n"
        assert self._lint(tmp_path, "src/repro/data/events.py", body) == ["R011"]

    def test_rng_field_or_init_param_accepted(self, tmp_path):
        body = (
            "class A(Event):\n    rng: object = None\n"
            "class B(Event):\n"
            "    def __init__(self, start, seed=0):\n"
            "        self.start = start\n"
            "        self.seed = seed\n"
        )
        assert self._lint(tmp_path, "src/repro/data/events.py", body) == []

    def test_non_event_class_not_checked(self, tmp_path):
        body = "class Report:\n    start: int = 0\n"
        assert self._lint(tmp_path, "src/repro/data/events.py", body) == []

    def test_bare_default_rng_fires_only_in_events_module(self, tmp_path):
        body = "def schedule():\n    return default_rng()\n"
        assert self._lint(tmp_path, "src/repro/data/events.py", body) == ["R011"]
        assert self._lint(tmp_path, "src/repro/data/simulator.py", body) == []

    def test_seeded_default_rng_accepted(self, tmp_path):
        body = "def schedule(seed):\n    return default_rng(seed)\n"
        assert self._lint(tmp_path, "src/repro/data/events.py", body) == []

    def test_rule_does_not_apply_outside_events_module(self, tmp_path):
        body = "class Flood(Event):\n    start: int = 0\n"
        assert self._lint(tmp_path, "src/repro/faults/events.py", body) == []


# One (scoped path, violating body, compliant body) triple per rule: the
# violating body must fire exactly that rule at that path, the compliant
# body must be silent, and a `# lint: disable=<rule>` on the violating line
# must silence it while still being counted as suppressed.
RULE_FIXTURES = {
    "R001": (
        "src/repro/nn/anything.py",
        "import numpy as np\nvalue = np.random.rand(3)\n",
        "from repro.utils.seed import get_rng\nvalue = get_rng().random(3)\n",
    ),
    "R002": (
        "src/repro/nn/anything.py",
        "class Bad(Module):\n    def __init__(self):\n        self.x = 1\n",
        "class Good(Module):\n    def __init__(self):\n        super().__init__()\n",
    ),
    "R003": (
        "src/repro/nn/anything.py",
        "class Bad(Module):\n"
        "    def __init__(self):\n"
        "        super().__init__()\n"
        "        self.w = init.xavier_uniform(3, 3)\n",
        "class Good(Module):\n"
        "    def __init__(self):\n"
        "        super().__init__()\n"
        "        self.w = Parameter(init.xavier_uniform(3, 3))\n",
    ),
    "R004": (
        "src/repro/nn/anything.py",
        "def clobber(param, update):\n    param.data = update\n",
        "def apply(param, update):\n    param.copy_(update)\n",
    ),
    "R005": (
        "src/repro/nn/anything.py",
        "import time\nstamp = time.time()\n",
        "from repro.utils.timer import now\nstamp = now()\n",
    ),
    "R006": (
        "src/repro/nn/anything.py",
        "import numpy as np\n\ndef save(path, arrays):\n    np.savez(path, **arrays)\n",
        "from repro.utils.atomic import atomic_savez\n\n"
        "def save(path, arrays):\n    atomic_savez(path, **arrays)\n",
    ),
    "R007": (
        "src/repro/data/anything.py",
        "def gather(self, indices):\n    return [self.sample(i) for i in indices]\n",
        "def gather(self, indices):\n    return self.windows[indices]\n",
    ),
    "R008": (
        "src/repro/serve/anything.py",
        "def answer(model, x, tod, dow):\n    return model(x, tod, dow)\n",
        "def answer(batcher, request):\n    return batcher.submit(request)\n",
    ),
    "R009": (
        "src/repro/serve/router.py",
        "def answer(bundle, x, tod, dow):\n    return bundle.instantiate()(x, tod, dow)\n",
        "def answer(transport, op):\n    return transport.send(op)\n",
    ),
    "R010": (
        "src/repro/training/evaluation.py",
        "def evaluate_split(model, x, tod, dow):\n    return model(x, tod, dow)\n",
        "def evaluate_split(model, x, tod, dow):\n"
        "    with inference_mode():\n"
        "        return model(x, tod, dow)\n",
    ),
    "R011": (
        "src/repro/data/events.py",
        "class Flood(Event):\n    start: int = 0\n",
        "class Flood(Event):\n    start: int = 0\n    seed: int = 0\n",
    ),
}


class TestPerRuleFixtures:
    """Every rule has a positive, a negative and a suppressed fixture."""

    def _install(self, tmp_path: Path, rel: str, body: str) -> Path:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return path

    def test_every_rule_has_a_fixture(self):
        assert set(RULE_FIXTURES) == set(LINT_RULES)

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_positive_fires_exactly_that_rule(self, tmp_path, rule):
        rel, bad, _ = RULE_FIXTURES[rule]
        path = self._install(tmp_path, rel, bad)
        assert [f.rule for f in lint_file(path, relative_to=tmp_path)] == [rule]

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_negative_is_silent(self, tmp_path, rule):
        rel, _, good = RULE_FIXTURES[rule]
        path = self._install(tmp_path, rel, good)
        assert lint_file(path, relative_to=tmp_path) == []

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_suppression_moves_the_finding_not_drops_it(self, tmp_path, rule):
        rel, bad, _ = RULE_FIXTURES[rule]
        lines = bad.splitlines()
        flagged = lint_file(
            self._install(tmp_path, rel, bad), relative_to=tmp_path
        )[0].line
        lines[flagged - 1] += f"  # lint: disable={rule}"
        path = self._install(tmp_path, rel, "\n".join(lines) + "\n")
        run = lint_file_report(path, relative_to=tmp_path)
        assert run.findings == ()
        assert [f.rule for f in run.suppressed] == [rule]
        assert run.ok


class TestSuppressionReporting:
    """Exit-code semantics: fully-suppressed runs pass but are counted."""

    def test_fully_suppressed_run_is_ok(self, tmp_path):
        body = (
            "import time\n"
            "a = time.time()  # lint: disable=R005\n"
            "b = time.perf_counter()  # lint: disable\n"
        )
        src = tmp_path / "src" / "repro" / "x.py"
        src.parent.mkdir(parents=True)
        src.write_text(body)
        run = lint_paths_report(("src",), root=tmp_path)
        assert isinstance(run, LintRun)
        assert run.ok and run.findings == ()
        assert len(run.suppressed) == 2

    def test_mixed_run_is_not_ok(self, tmp_path):
        body = (
            "import time\n"
            "a = time.time()  # lint: disable=R005\n"
            "b = time.perf_counter()\n"
        )
        src = tmp_path / "src" / "repro" / "x.py"
        src.parent.mkdir(parents=True)
        src.write_text(body)
        run = lint_paths_report(("src",), root=tmp_path)
        assert not run.ok
        assert [f.rule for f in run.findings] == ["R005"]
        assert len(run.suppressed) == 1

    def test_wrong_rule_suppression_does_not_silence(self, tmp_path):
        body = "import time\na = time.time()  # lint: disable=R001\n"
        src = tmp_path / "src" / "repro" / "x.py"
        src.parent.mkdir(parents=True)
        src.write_text(body)
        run = lint_paths_report(("src",), root=tmp_path)
        assert [f.rule for f in run.findings] == ["R005"]
        assert run.suppressed == ()

    def test_format_mentions_suppression_count(self):
        assert format_findings([], suppressed=2) == "lint: clean, 2 suppressed"
        report = format_findings([Finding("a.py", 1, "R001", "msg")], suppressed=1)
        assert report.endswith("lint: 1 finding(s), 1 suppressed")

    def test_cli_exit_code_tracks_ok(self, tmp_path, capsys, monkeypatch):
        import argparse

        from repro.cli import cmd_lint

        body = "import time\na = time.time()  # lint: disable\n"
        src = tmp_path / "src" / "repro" / "x.py"
        src.parent.mkdir(parents=True)
        src.write_text(body)
        monkeypatch.chdir(tmp_path)
        args = argparse.Namespace(paths=["src"], root=".", json=False)
        assert cmd_lint(args) == 0
        out = capsys.readouterr().out
        assert "1 suppressed" in out
        src.write_text("import time\na = time.time()\n")
        assert cmd_lint(args) == 1


class TestLintPaths:
    def test_repo_head_is_clean(self):
        findings = lint_paths(root=REPO_ROOT)
        assert findings == [], format_findings(findings)

    def test_default_paths_cover_the_source_tree(self):
        assert DEFAULT_LINT_PATHS == ("src", "examples", "benchmarks")

    def test_missing_paths_are_skipped(self, tmp_path):
        assert lint_paths(("nothing_here",), root=tmp_path) == []

    def test_findings_sorted_and_hashable(self):
        findings = lint_file(FIXTURE)
        assert findings == sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        assert len(set(findings)) == len(findings)  # frozen dataclass


class TestRuleTable:
    def test_rules_are_documented(self):
        assert set(LINT_RULES) == {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
            "R009", "R010", "R011",
        }
        for rule, description in LINT_RULES.items():
            assert description, rule

    def test_format_findings_clean(self):
        assert format_findings([]) == "lint: clean"

    def test_format_findings_summary_line(self):
        findings = [Finding("a.py", 1, "R001", "msg")]
        assert format_findings(findings).endswith("lint: 1 finding(s)")
