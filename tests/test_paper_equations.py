"""Equation-level verification against the paper's formulas.

Each test recomputes one numbered equation of the paper by hand in numpy
from the module's extracted weights and checks the module output matches.
This pins the implementation to the paper, not merely to itself.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import DiffusionBlock, EstimationGate, SpatialTemporalEmbeddings
from repro.graph import localized_transition, mask_self_loops
from repro.nn.positional import sinusoidal_encoding
from repro.tensor import Tensor

N, D = 4, 6


def relu(x):
    return np.maximum(x, 0.0)


def sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def softmax(x, axis=-1):
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class TestEq3EstimationGate:
    def test_gate_formula(self, rng):
        """Λ = Sigmoid(σ((T^D || T^W || E^u || E^d) W_1) W_2)."""
        gate = EstimationGate(embed_dim=D, hidden_dim=D)
        batch, steps = 2, 3
        t_day = rng.normal(size=(batch, steps, D)).astype(np.float32)
        t_week = rng.normal(size=(batch, steps, D)).astype(np.float32)
        e_u = rng.normal(size=(N, D)).astype(np.float32)
        e_d = rng.normal(size=(N, D)).astype(np.float32)

        out = gate.gate_values(
            Tensor(t_day), Tensor(t_week), Tensor(e_u), Tensor(e_d)
        ).numpy()

        w1, b1 = gate.fc1.weight.data, gate.fc1.bias.data
        w2, b2 = gate.fc2.weight.data, gate.fc2.bias.data
        expected = np.empty((batch, steps, N, 1))
        for b in range(batch):
            for t in range(steps):
                for i in range(N):
                    features = np.concatenate(
                        [t_day[b, t], t_week[b, t], e_u[i], e_d[i]]
                    )
                    hidden = relu(features @ w1 + b1)
                    expected[b, t, i, 0] = sigmoid(hidden @ w2 + b2)[0]
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)


class TestEq4LocalizedTransition:
    def test_block_structure(self, rng):
        """(P^local)^k = [P^k ⊙ (1-I) || ... || P^k ⊙ (1-I)] (k_t copies)."""
        p = rng.uniform(0, 1, size=(N, N)).astype(np.float32)
        p = p / p.sum(axis=1, keepdims=True)
        k, k_t = 2, 3
        local = localized_transition(p, order=k, k_t=k_t)
        expected_block = p @ p
        np.fill_diagonal(expected_block, 0.0)
        for copy in range(k_t):
            np.testing.assert_allclose(
                local[:, copy * N : (copy + 1) * N], expected_block, rtol=1e-5
            )


class TestEq5and6DiffusionConvolution:
    def test_single_order_single_lag(self, rng):
        """With k_s = k_t = 1 and one support, Eq. 6 reduces to
        H_t = (P ⊙ (1-I)) σ(X_t W_0) W_1 + b — recomputed by hand."""
        block = DiffusionBlock(D, num_supports=1, k_s=1, k_t=1, horizon=2)
        p = rng.uniform(0, 1, size=(N, N)).astype(np.float32)
        p = p / p.sum(axis=1, keepdims=True)
        x = rng.normal(size=(1, 3, N, D)).astype(np.float32)

        hidden, _, _ = block(Tensor(x), [p])

        w0 = block.offset_transforms[0].weight.data
        w1 = block.order_transforms[0].weight.data
        bias = block.output_bias.data
        p_masked = mask_self_loops(p)
        expected = np.empty((1, 3, N, D))
        for t in range(3):
            expected[0, t] = p_masked @ relu(x[0, t] @ w0) @ w1 + bias
        np.testing.assert_allclose(hidden.numpy(), expected, rtol=1e-4, atol=1e-5)

    def test_temporal_sum_matches_eq5(self, rng):
        """With k_t = 2 the localized features sum two shifted transforms."""
        block = DiffusionBlock(D, num_supports=1, k_s=1, k_t=2, horizon=2)
        p = rng.uniform(0, 1, size=(N, N)).astype(np.float32)
        p = p / p.sum(axis=1, keepdims=True)
        x = rng.normal(size=(1, 4, N, D)).astype(np.float32)

        hidden, _, _ = block(Tensor(x), [p])

        w_new = block.offset_transforms[0].weight.data  # offset 0 (current step)
        w_old = block.offset_transforms[1].weight.data  # offset 1 (previous step)
        w_out = block.order_transforms[0].weight.data
        bias = block.output_bias.data
        p_masked = mask_self_loops(p)
        t = 2
        mixed = relu(x[0, t] @ w_new) + relu(x[0, t - 1] @ w_old)
        expected_t = p_masked @ mixed @ w_out + bias
        np.testing.assert_allclose(hidden.numpy()[0, t], expected_t, rtol=1e-4, atol=1e-5)


class TestEq7AdaptiveTransition:
    def test_formula(self):
        """P_apt = Softmax(σ(E^d (E^u)^T))."""
        embeddings = SpatialTemporalEmbeddings(num_nodes=N, steps_per_day=288, dim=D)
        out = embeddings.adaptive_transition().numpy()
        e_u = embeddings.node_source.data
        e_d = embeddings.node_target.data
        expected = softmax(relu(e_d @ e_u.T), axis=-1)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)


class TestEq10GRU:
    def test_cell_formula(self, rng):
        """z/r gates and candidate exactly as printed in Eq. 10."""
        cell = nn.GRUCell(D, D)
        x = rng.normal(size=(1, D)).astype(np.float32)
        h = rng.normal(size=(1, D)).astype(np.float32)
        out = cell(Tensor(x), Tensor(h)).numpy()

        z = sigmoid(x @ cell.w_z.data + h @ cell.u_z.data + cell.b_z.data)
        r = sigmoid(x @ cell.w_r.data + h @ cell.u_r.data + cell.b_r.data)
        candidate = np.tanh(x @ cell.w_h.data + r * (h @ cell.u_h.data + cell.b_h.data))
        expected = (1.0 - z) * h + z * candidate
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)


class TestEq11Attention:
    def test_single_head_formula(self, rng):
        """head = softmax(H W^Q (H W^K)^T / sqrt(d)) H W^V, then W^O."""
        att = nn.MultiHeadSelfAttention(D, num_heads=1)
        h = rng.normal(size=(1, 5, D)).astype(np.float32)
        out = att(Tensor(h)).numpy()

        q = h[0] @ att.w_q.weight.data
        k = h[0] @ att.w_k.weight.data
        v = h[0] @ att.w_v.weight.data
        scores = softmax(q @ k.T / np.sqrt(D), axis=-1)
        expected = (scores @ v) @ att.w_o.weight.data
        np.testing.assert_allclose(out[0], expected, rtol=1e-3, atol=1e-4)


class TestEq12PositionalEncoding:
    def test_formula_entries(self):
        """e_{t,i} = sin(t / 10000^{2i/d}) for even i, cos otherwise."""
        d = 8
        table = sinusoidal_encoding(16, d)
        for t in (0, 3, 11):
            for i in range(d):
                angle = t / (10000.0 ** (2 * (i // 2) / d))
                expected = np.sin(angle) if i % 2 == 0 else np.cos(angle)
                assert table[t, i] == pytest.approx(expected, abs=1e-5)


class TestEq17Metrics:
    def test_metric_formulas(self, rng):
        from repro.training import masked_mae, masked_mape, masked_rmse

        x = rng.uniform(1, 10, size=50)
        x_hat = x + rng.normal(0, 1, size=50)
        assert masked_mae(x_hat, x, None) == pytest.approx(np.abs(x - x_hat).mean())
        assert masked_rmse(x_hat, x, None) == pytest.approx(
            np.sqrt(np.square(x - x_hat).mean())
        )
        assert masked_mape(x_hat, x, None) == pytest.approx(
            (np.abs(x - x_hat) / x).mean() * 100.0, rel=1e-6
        )


class TestEq13and14DynamicGraph:
    def test_dynamic_feature_assembly_and_mask(self, rng):
        """DF = Concat[FC(X), T^D, T^W, E] and P^dy = P ⊙ softmax(QK^T/√d)."""
        from repro.core import DynamicGraphLearner

        T = 3
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D)
        x_np = rng.normal(size=(1, T, N, D)).astype(np.float32)
        t_day = rng.normal(size=(1, T, D)).astype(np.float32)
        t_week = rng.normal(size=(1, T, D)).astype(np.float32)
        e_u = rng.normal(size=(N, D)).astype(np.float32)
        e_d = rng.normal(size=(N, D)).astype(np.float32)
        p_f = rng.uniform(0, 1, size=(N, N)).astype(np.float32)
        p_f = p_f / p_f.sum(axis=1, keepdims=True)
        p_b = p_f.T.copy()

        out_f, out_b = learner(
            Tensor(x_np), Tensor(t_day), Tensor(t_week),
            Tensor(e_u), Tensor(e_d), p_f, p_b,
        )

        # Recompute DF^u by hand: FC over the flattened per-node history,
        # concatenated with the window's last time embeddings and E^u.
        history = x_np[0].transpose(1, 0, 2).reshape(N, T * D)
        l0, l1 = learner.feature_fc.layers
        dynamic = relu(history @ l0.weight.data + l0.bias.data) @ l1.weight.data + l1.bias.data
        df_u = np.concatenate(
            [
                dynamic,
                np.repeat(t_day[0, T - 1][None], N, axis=0),
                np.repeat(t_week[0, T - 1][None], N, axis=0),
                e_u,
            ],
            axis=1,
        )
        q = df_u @ learner.w_q.weight.data
        k = df_u @ learner.w_k.weight.data
        mask = softmax(q @ k.T / np.sqrt(D), axis=-1)
        np.testing.assert_allclose(out_f.numpy()[0], p_f * mask, rtol=1e-3, atol=1e-5)


class TestEq15OutputSummation:
    def test_head_consumes_sum_of_all_forecasts(self, rng):
        """Ŷ = MLP( Σ_l (H_f^dif,l + H_f^inh,l) ) — verified by recomputing
        the head on the externally-collected forecast sum."""
        from repro.core import D2STGNN, D2STGNNConfig
        from repro.tensor import no_grad

        config = D2STGNNConfig(
            num_nodes=N, steps_per_day=288, hidden_dim=8, embed_dim=4,
            num_layers=2, num_heads=2, history=4, horizon=3, dropout=0.0,
        )
        adjacency = rng.uniform(0.1, 1.0, size=(N, N)).astype(np.float32)
        model = D2STGNN(config, adjacency)
        model.eval()
        x = rng.normal(size=(2, 4, N, 1)).astype(np.float32)
        tod = rng.integers(0, 288, size=(2, 4))
        dow = rng.integers(0, 7, size=(2, 4))

        with no_grad():
            expected = model(x, tod, dow).numpy()
            # Re-run the layer loop manually and apply the head to the sum.
            latent = model.input_projection(Tensor(x))
            t_day, t_week = model.embeddings.time_features(tod, dow)
            supports = model._supports(latent, t_day, t_week)
            total = None
            current = latent
            for layer in model.layers:
                current, f_dif, f_inh = layer(
                    current, supports, t_day, t_week,
                    model.embeddings.node_source, model.embeddings.node_target,
                )
                piece = f_dif + f_inh
                total = piece if total is None else total + piece
            manual = model.head(total).numpy()
        np.testing.assert_allclose(expected, manual, atol=1e-5)
