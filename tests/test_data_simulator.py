"""The traffic simulator: superposition structure, periodicity, outages."""

import numpy as np
import pytest

from repro.data import SimulationConfig, simulate_traffic, time_indices
from repro.graph import generate_road_network


@pytest.fixture(scope="module")
def network():
    return generate_road_network(10, np.random.default_rng(3))


@pytest.fixture(scope="module")
def speed_series(network):
    return simulate_traffic(network, 900, kind="speed", rng=np.random.default_rng(4))


@pytest.fixture(scope="module")
def flow_series(network):
    return simulate_traffic(network, 900, kind="flow", rng=np.random.default_rng(4))


class TestTimeIndices:
    def test_time_of_day_wraps(self):
        tod, _ = time_indices(600, steps_per_day=288)
        assert tod.max() == 287 and tod.min() == 0
        assert tod[288] == 0

    def test_day_of_week_advances(self):
        _, dow = time_indices(288 * 8, steps_per_day=288, start_day_of_week=6)
        assert dow[0] == 6
        assert dow[288] == 0  # wraps Sunday -> Monday

    def test_lengths(self):
        tod, dow = time_indices(100, 288)
        assert len(tod) == len(dow) == 100


class TestStructure:
    def test_shapes(self, speed_series, network):
        t, n = 900, network.num_nodes
        assert speed_series.values.shape == (t, n)
        assert speed_series.inherent.shape == (t, n)
        assert speed_series.diffusion.shape == (t, n)
        assert speed_series.failure_mask.shape == (t, n)

    def test_invalid_kind_rejected(self, network):
        with pytest.raises(ValueError):
            simulate_traffic(network, 100, kind="volume")

    def test_both_components_contribute(self, speed_series):
        # Neither hidden signal may be degenerate: the decoupling story
        # requires a genuine superposition.
        var_inherent = speed_series.inherent.var()
        var_diffusion = speed_series.diffusion.var()
        share = var_diffusion / (var_diffusion + var_inherent)
        assert 0.15 < share < 0.9

    def test_diffusion_nonnegative(self, speed_series):
        assert np.all(speed_series.diffusion >= 0.0)

    def test_determinism(self, network):
        a = simulate_traffic(network, 300, rng=np.random.default_rng(9))
        b = simulate_traffic(network, 300, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.values, b.values)

    def test_diffusion_reacts_to_neighbours(self, network):
        # Doubling the coupling must increase the diffusion component.
        weak = simulate_traffic(
            network, 600, config=SimulationConfig(coupling=0.2, failure_rate=0.0),
            rng=np.random.default_rng(5),
        )
        strong = simulate_traffic(
            network, 600, config=SimulationConfig(coupling=0.7, failure_rate=0.0),
            rng=np.random.default_rng(5),
        )
        assert strong.diffusion.mean() > 2.0 * weak.diffusion.mean()


class TestObservationMapping:
    def test_speed_range(self, speed_series):
        cfg = speed_series.config
        assert speed_series.values.min() >= 0.0
        assert speed_series.values.max() <= cfg.speed_limit

    def test_flow_integer_counts(self, flow_series):
        observed = flow_series.values[~flow_series.failure_mask]
        np.testing.assert_array_equal(observed, np.round(observed))
        assert observed.min() >= 0.0

    def test_speed_drops_at_rush_hour(self, network):
        series = simulate_traffic(
            network, 288 * 3, kind="speed",
            config=SimulationConfig(failure_rate=0.0), rng=np.random.default_rng(6),
        )
        hours = series.time_of_day / 288.0 * 24.0
        rush = (hours >= 7.0) & (hours <= 9.0)
        night = (hours >= 1.0) & (hours <= 4.0)
        assert series.values[rush].mean() < series.values[night].mean()

    def test_daily_periodicity(self, network):
        series = simulate_traffic(
            network, 288 * 4, kind="speed",
            config=SimulationConfig(failure_rate=0.0, noise_scale=0.01),
            rng=np.random.default_rng(7),
        )
        day = series.values[:288].mean(axis=1)
        next_day = series.values[288 : 2 * 288].mean(axis=1)
        correlation = np.corrcoef(day, next_day)[0, 1]
        assert correlation > 0.8


class TestFailures:
    def test_outages_write_zeros(self, network):
        series = simulate_traffic(
            network, 2000, config=SimulationConfig(failure_rate=0.01),
            rng=np.random.default_rng(8),
        )
        assert series.failure_mask.any()
        np.testing.assert_array_equal(series.values[series.failure_mask], 0.0)

    def test_failure_rate_zero_disables(self, network):
        series = simulate_traffic(
            network, 500, config=SimulationConfig(failure_rate=0.0),
            rng=np.random.default_rng(8),
        )
        assert not series.failure_mask.any()

    def test_outage_duration_bounds(self, network):
        cfg = SimulationConfig(failure_rate=0.002, failure_duration=(4, 10))
        series = simulate_traffic(network, 3000, config=cfg, rng=np.random.default_rng(9))
        # Each contiguous outage run is at least the minimum duration unless
        # truncated by the end of the series.
        for node in range(network.num_nodes):
            mask = series.failure_mask[:, node].astype(int)
            changes = np.diff(np.concatenate([[0], mask, [0]]))
            starts = np.nonzero(changes == 1)[0]
            ends = np.nonzero(changes == -1)[0]
            for s, e in zip(starts, ends):
                if e < len(mask):  # not truncated
                    assert e - s >= 4


class TestDynamicCoupling:
    def test_coupling_stronger_at_peak(self, network):
        """The dynamic spatial dependency of Fig. 2(c): diffusion share of the
        signal is larger at rush hour than at night."""
        series = simulate_traffic(
            network, 288 * 4,
            config=SimulationConfig(failure_rate=0.0, dynamic_coupling_amplitude=0.8),
            rng=np.random.default_rng(10),
        )
        hours = series.time_of_day / 288.0 * 24.0
        rush = (hours >= 7.5) & (hours <= 8.5)
        night = (hours >= 2.0) & (hours <= 4.0)
        ratio_rush = series.diffusion[rush].sum() / max(series.inherent[rush].sum(), 1e-9)
        ratio_night = series.diffusion[night].sum() / max(series.inherent[night].sum(), 1e-9)
        assert ratio_rush > ratio_night
