"""Docs-consistency gate: fenced code in the docs must match the real API.

Extracts fenced code blocks from ``docs/*.md``, ``README.md`` and
``examples/README.md`` and checks them against the codebase:

* every ```` ```python ```` block must *compile*;
* every ``import repro...`` / ``from repro...`` line in those blocks must
  *execute* — renamed or removed exports fail here;
* every ``repro <subcommand>`` / ``python -m repro <subcommand>`` in any
  fenced block must be a real CLI subcommand;
* every ``make <target>`` in any fenced block must exist in the Makefile;
* every Python block in the *executed* docs (``EXECUTED_DOCS``, currently
  ``docs/scaling.md``, ``docs/scenarios.md``, ``docs/serving.md`` and
  ``docs/tape-analysis.md``)
  must actually **run**, in file order, sharing one namespace per file —
  those pages are written as sequential, self-contained sessions, so
  drifted behaviour (not just drifted names) fails here.

Run via ``make docs-check`` (which also runs the API-quality gates).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(ROOT.glob("docs/*.md")) + [ROOT / "README.md", ROOT / "examples" / "README.md"]

PYTHON_FENCE = re.compile(r"```python[ \t]*\n(.*?)```", re.DOTALL)
ANY_FENCE = re.compile(r"```[a-z]*[ \t]*\n(.*?)```", re.DOTALL)
IMPORT_LINE = re.compile(r"^(?:import repro\b.*|from repro[\w.]* import .*)$")
CLI_INVOCATION = re.compile(r"(?:python -m repro|(?:^|\$ )repro) +([a-z][a-z-]*)", re.MULTILINE)
MAKE_INVOCATION = re.compile(r"^make +([\w-]+)", re.MULTILINE)


def _python_blocks() -> list:
    params = []
    for path in DOC_FILES:
        for index, match in enumerate(PYTHON_FENCE.finditer(path.read_text())):
            params.append(pytest.param(path, match.group(1), id=f"{path.name}-{index}"))
    return params


PYTHON_BLOCKS = _python_blocks()


def test_docs_were_collected():
    """The glob must keep finding the documentation set."""
    assert len(DOC_FILES) >= 6
    assert len(PYTHON_BLOCKS) >= 3


@pytest.mark.parametrize("path,code", PYTHON_BLOCKS)
def test_python_block_compiles(path, code):
    """Every fenced Python example must be syntactically valid."""
    compile(code, f"{path.name}:fenced-block", "exec")


@pytest.mark.parametrize("path,code", PYTHON_BLOCKS)
def test_import_lines_execute(path, code):
    """Every `import repro...` / `from repro...` line must resolve."""
    namespace: dict = {}
    for line in code.splitlines():
        stripped = line.strip()
        if IMPORT_LINE.match(stripped):
            exec(stripped, namespace)  # fails loudly on drifted exports


def test_cli_subcommands_in_docs_exist():
    """Any `repro <sub>` in a fenced block must be a real subcommand."""
    from repro.cli import build_parser

    subparsers = next(
        action for action in build_parser()._actions
        if isinstance(action, __import__("argparse")._SubParsersAction)
    )
    known = set(subparsers.choices)
    for path in DOC_FILES:
        for block in ANY_FENCE.findall(path.read_text()):
            for command in CLI_INVOCATION.findall(block):
                assert command in known, f"{path.name}: unknown subcommand {command!r}"


# Docs written as sequential runnable sessions: every ```python block is
# executed top to bottom in one shared namespace per file.
EXECUTED_DOCS = ("scaling.md", "scenarios.md", "serving.md", "tape-analysis.md")


@pytest.mark.parametrize("name", EXECUTED_DOCS)
def test_doc_snippets_execute(name, tmp_path, monkeypatch):
    """The executed docs' Python blocks must run end to end, in order."""
    path = ROOT / "docs" / name
    blocks = PYTHON_FENCE.findall(path.read_text())
    assert blocks, f"{name} has no fenced Python blocks to execute"
    monkeypatch.chdir(tmp_path)  # anything a snippet writes stays out of the repo
    namespace: dict = {}
    for index, code in enumerate(blocks):
        try:
            exec(compile(code, f"{name}:block-{index}", "exec"), namespace)
        except Exception as err:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"{name} fenced block {index} failed to execute: {err!r}"
            ) from err


def test_make_targets_in_docs_exist():
    """Any `make <target>` in a fenced block must exist in the Makefile."""
    makefile = (ROOT / "Makefile").read_text()
    targets = set(re.findall(r"^([\w-]+):", makefile, re.MULTILINE))
    for path in DOC_FILES:
        for block in ANY_FENCE.findall(path.read_text()):
            for target in MAKE_INVOCATION.findall(block):
                assert target in targets, f"{path.name}: unknown make target {target!r}"
