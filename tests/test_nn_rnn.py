"""GRU and LSTM layers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck


def t(shape, rng):
    return Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=True)


class TestGRUCell:
    def test_output_shape(self, rng):
        cell = nn.GRUCell(3, 5)
        assert cell(t((2, 3), rng), Tensor.zeros((2, 5))).shape == (2, 5)

    def test_gradcheck(self, rng):
        cell = nn.GRUCell(2, 3)
        gradcheck(lambda x, h: cell(x, h), [t((2, 2), rng), t((2, 3), rng)])

    def test_zero_update_gate_keeps_state(self, rng):
        # Force z ≈ 0 by pushing its bias very negative: h_next ≈ h.
        cell = nn.GRUCell(2, 3)
        cell.b_z.data[:] = -50.0
        h = t((1, 3), rng)
        out = cell(t((1, 2), rng), h)
        np.testing.assert_allclose(out.numpy(), h.numpy(), atol=1e-4)


class TestGRU:
    def test_sequence_shapes(self, rng):
        gru = nn.GRU(3, 4)
        seq, last = gru(t((2, 6, 3), rng))
        assert seq.shape == (2, 6, 4)
        assert last.shape == (2, 4)

    def test_last_state_matches_sequence_tail(self, rng):
        gru = nn.GRU(3, 4)
        seq, last = gru(t((2, 5, 3), rng))
        np.testing.assert_array_equal(seq.numpy()[:, -1], last.numpy())

    def test_custom_initial_state(self, rng):
        gru = nn.GRU(2, 3)
        x = t((1, 1, 2), rng)
        h0 = Tensor(np.full((1, 3), 0.5, np.float32))
        seq_a, _ = gru(x, h0)
        seq_b, _ = gru(x)
        assert not np.allclose(seq_a.numpy(), seq_b.numpy())

    def test_gradients_flow_through_time(self, rng):
        gru = nn.GRU(2, 3)
        x = t((1, 8, 2), rng)
        (_, last) = gru(x)
        last.sum().backward()
        # Input at the first step must still receive gradient.
        assert np.abs(x.grad[0, 0]).sum() > 0


class TestLSTM:
    def test_cell_shapes(self, rng):
        cell = nn.LSTMCell(3, 4)
        h, c = cell(t((2, 3), rng), (Tensor.zeros((2, 4)), Tensor.zeros((2, 4))))
        assert h.shape == (2, 4) and c.shape == (2, 4)

    def test_cell_gradcheck(self, rng):
        cell = nn.LSTMCell(2, 3)
        x, h, c = t((2, 2), rng), t((2, 3), rng), t((2, 3), rng)
        gradcheck(lambda x, h, c: cell(x, (h, c))[0], [x, h, c])

    def test_sequence_shapes(self, rng):
        lstm = nn.LSTM(3, 4)
        seq, (h, c) = lstm(t((2, 6, 3), rng))
        assert seq.shape == (2, 6, 4)
        assert h.shape == (2, 4) and c.shape == (2, 4)

    def test_forget_gate_zero_erases_memory(self, rng):
        cell = nn.LSTMCell(2, 3)
        d = cell.hidden_dim
        cell.b.data[d : 2 * d] = -50.0  # forget gate ≈ 0
        cell.b.data[0:d] = -50.0  # input gate ≈ 0
        c_big = Tensor(np.full((1, 3), 5.0, np.float32))
        _, c_next = cell(t((1, 2), rng), (Tensor.zeros((1, 3)), c_big))
        np.testing.assert_allclose(c_next.numpy(), np.zeros((1, 3)), atol=1e-4)

    def test_state_threading(self, rng):
        lstm = nn.LSTM(2, 3)
        x = t((1, 4, 2), rng)
        seq, state = lstm(x)
        seq2, _ = lstm(x, state)
        assert not np.allclose(seq.numpy(), seq2.numpy())
