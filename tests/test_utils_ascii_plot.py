"""ASCII plotting helpers."""

import numpy as np
import pytest

from repro.utils import bar_chart, side_by_side, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        levels = " .:-=+*#%@"
        line = sparkline(np.linspace(0, 1, 10))
        ranks = [levels.index(c) for c in line]
        assert ranks == sorted(ranks)

    def test_constant_series_does_not_crash(self):
        assert sparkline([5.0, 5.0, 5.0]) == "   "

    def test_pinned_range_clips(self):
        line = sparkline([100.0], lo=0.0, hi=1.0)
        assert line == "@"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            sparkline(np.zeros((2, 2)))


class TestBarChart:
    def test_sorted_ascending(self):
        chart = bar_chart({"big": 10.0, "small": 1.0})
        lines = chart.splitlines()
        assert lines[0].startswith("small")
        assert lines[1].startswith("big")

    def test_longest_bar_for_max(self):
        chart = bar_chart({"a": 1.0, "b": 4.0}, width=8)
        a_line, b_line = chart.splitlines()
        assert a_line.count("#") < b_line.count("#")

    def test_unit_suffix(self):
        assert "s" in bar_chart({"x": 2.0}, unit="s")

    def test_empty(self):
        assert bar_chart({}) == ""


class TestSideBySide:
    def test_shared_scale(self):
        out = side_by_side({"lo": np.zeros(4), "hi": np.full(4, 10.0)})
        lo_line, hi_line = out.splitlines()
        assert lo_line.endswith("    ")  # all at the bottom glyph
        assert hi_line.endswith("@@@@")

    def test_labels_aligned(self):
        out = side_by_side({"a": [1.0], "longer": [2.0]})
        a_line, longer_line = out.splitlines()
        # Sparklines start at the same column for every label.
        assert len(a_line) == len(longer_line)
        assert a_line.startswith("a     ")
        assert longer_line.startswith("longer")

    def test_empty(self):
        assert side_by_side({}) == ""
