"""Final coverage sweep: paths not exercised elsewhere."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck


def t(shape, rng):
    return Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=True)


class TestTensorCornerCases:
    def test_boolean_mask_indexing(self, rng):
        a = t((6,), rng)
        mask = np.array([True, False, True, True, False, False])
        out = a[mask]
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, mask.astype(np.float32))

    def test_broadcast_to_multiple_axes(self, rng):
        a = t((1, 3, 1), rng)
        gradcheck(lambda a: a.broadcast_to((2, 3, 4)) * 0.5, [a])

    def test_where_with_scalar_branch(self, rng):
        a = t((4,), rng)
        cond = np.array([True, False, True, False])
        out = Tensor.where(cond, a, Tensor(np.zeros(4, np.float32)))
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, cond.astype(np.float32))

    def test_chained_views_compose_gradients(self, rng):
        a = t((2, 3, 4), rng)
        out = a.transpose(2, 0, 1).reshape(4, 6)[1:3].sum()
        out.backward()
        assert a.grad is not None
        assert a.grad.sum() == pytest.approx(12.0)  # 2 rows x 6 entries of ones

    def test_matmul_vector_cases(self, rng):
        m = t((3, 4), rng)
        v = Tensor(rng.normal(size=4).astype(np.float32))
        assert (m @ v).shape == (3,)

    def test_division_by_scalar(self, rng):
        a = t((3,), rng)
        gradcheck(lambda a: a / 4.0, [a])
        gradcheck(lambda a: 2.0 / (a.abs() + 1.0), [a])


class TestContainerAccess:
    def test_sequential_len_iter_getitem(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[0], nn.Linear)
        assert [type(m).__name__ for m in seq] == ["Linear", "ReLU", "Linear"]

    def test_modulelist_append_chains(self):
        items = nn.ModuleList()
        items.append(nn.Linear(2, 2)).append(nn.Linear(2, 2))
        assert len(items) == 2
        assert items[1].in_features == 2

    def test_repr_of_linear(self):
        assert "Linear(3, 4" in repr(nn.Linear(3, 4))


class TestOptimizerStatePersistence:
    def test_adam_moments_persist_across_steps(self):
        p = nn.Parameter(np.array([1.0], dtype=np.float32))
        from repro.optim import Adam

        opt = Adam([p], lr=0.1)
        for _ in range(3):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        assert opt._step == 3
        assert opt._m[0][0] != 0.0
        assert opt._v[0][0] != 0.0

    def test_sgd_velocity_direction(self):
        p = nn.Parameter(np.array([0.0], dtype=np.float32))
        from repro.optim import SGD

        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        first = p.data.copy()
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()  # momentum keeps moving the weight
        assert p.data[0] < first[0]


class TestCheckpointBaselineRoundtrip:
    def test_dcrnn_checkpoint_cli_roundtrip(self, tmp_path, capsys):
        """End-to-end: train a DCRNN via the CLI, reload, evaluate."""
        from repro.cli import main

        ds_file = tmp_path / "ds.npz"
        ckpt = tmp_path / "dcrnn.npz"
        main(["simulate", "--dataset", "metr-la-sim", "--nodes", "6",
              "--steps", "420", "--out", str(ds_file)])
        code = main([
            "train", "--dataset", str(ds_file), "--model", "DCRNN",
            "--epochs", "1", "--hidden", "8", "--checkpoint", str(ckpt),
        ])
        assert code == 0 and ckpt.exists()
        capsys.readouterr()
        assert main(["evaluate", "--checkpoint", str(ckpt), "--dataset", str(ds_file)]) == 0
        assert "DCRNN" in capsys.readouterr().out


class TestHistorySerialisation:
    def test_history_fields_are_plain_python(self, tiny_data):
        """TrainingHistory must be JSON-serialisable for logging."""
        import json

        from repro.core import D2STGNN, D2STGNNConfig
        from repro.training import Trainer, TrainerConfig
        from repro.utils.seed import set_seed

        set_seed(0)
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes, steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
        )
        model = D2STGNN(config, tiny_data.adjacency)
        history = Trainer(model, tiny_data, TrainerConfig(epochs=1, batch_size=128)).train()
        payload = json.dumps(
            {
                "train_loss": history.train_loss,
                "val_mae": history.val_mae,
                "epoch_seconds": history.epoch_seconds,
            }
        )
        assert json.loads(payload)["train_loss"]
