"""Grid search and LR-scheduler integration in the trainer."""

import numpy as np
import pytest

from repro.core import D2STGNN, D2STGNNConfig
from repro.training import GridResult, Trainer, TrainerConfig, grid_search


def build(data, **overrides):
    defaults = dict(
        num_nodes=data.dataset.num_nodes, steps_per_day=data.steps_per_day,
        hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
    )
    defaults.update(overrides)
    return D2STGNN(D2STGNNConfig(**defaults), data.adjacency)


class TestGridSearch:
    def test_empty_grid_rejected(self, tiny_data):
        with pytest.raises(ValueError):
            grid_search(lambda: None, tiny_data, {})
        with pytest.raises(ValueError):
            grid_search(lambda: None, tiny_data, {"k_s": []})

    def test_results_sorted_and_complete(self, tiny_data):
        results = grid_search(
            lambda k_s: build(tiny_data, k_s=k_s),
            tiny_data,
            {"k_s": [1, 2]},
            trainer_config=TrainerConfig(epochs=1, batch_size=64),
        )
        assert len(results) == 2
        assert results[0].val_mae <= results[1].val_mae
        assert {r.params["k_s"] for r in results} == {1, 2}
        assert all(isinstance(r, GridResult) for r in results)
        assert all("avg" in r.test_report for r in results)

    def test_cartesian_product(self, tiny_data):
        results = grid_search(
            lambda k_s, k_t: build(tiny_data, k_s=k_s, k_t=k_t),
            tiny_data,
            {"k_s": [1, 2], "k_t": [1, 2]},
            trainer_config=TrainerConfig(epochs=1, batch_size=128),
        )
        assert len(results) == 4
        assert {(r.params["k_s"], r.params["k_t"]) for r in results} == {
            (1, 1), (1, 2), (2, 1), (2, 2)
        }

    def test_deterministic_given_seed(self, tiny_data):
        def run():
            return grid_search(
                lambda k_s: build(tiny_data, k_s=k_s),
                tiny_data,
                {"k_s": [2]},
                trainer_config=TrainerConfig(epochs=1, batch_size=128),
                seed=3,
            )[0].val_mae

        assert run() == pytest.approx(run())


class TestLRSchedulerIntegration:
    def test_lr_decays_during_training(self, tiny_data):
        model = build(tiny_data)
        trainer = Trainer(
            model, tiny_data,
            TrainerConfig(epochs=2, batch_size=64, lr_decay_epochs=1, lr_decay_gamma=0.5),
        )
        trainer.train()
        assert trainer.optimizer.lr == pytest.approx(0.001 * 0.25)

    def test_disabled_by_default(self, tiny_data):
        model = build(tiny_data)
        trainer = Trainer(model, tiny_data, TrainerConfig(epochs=1, batch_size=128))
        assert trainer.scheduler is None
        trainer.train()
        assert trainer.optimizer.lr == pytest.approx(0.001)
