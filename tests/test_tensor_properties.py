"""Hypothesis property-based tests on the autodiff engine's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, functional as F

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
)


def arrays(max_side=5, min_dims=1, max_dims=3):
    shapes = hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side)
    return hnp.arrays(np.float32, shapes, elements=finite_floats)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_add_backward_is_ones(data):
    a = Tensor(data, requires_grad=True)
    (a + 1.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(data))


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_mul_by_self_gradient_is_two_x(data):
    a = Tensor(data, requires_grad=True)
    (a * a).sum().backward()
    np.testing.assert_allclose(a.grad, 2.0 * data, rtol=1e-4, atol=1e-4)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_softmax_is_distribution(data):
    out = F.softmax(Tensor(data), axis=-1).numpy()
    assert np.all(out >= 0.0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]), rtol=1e-4)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_softmax_invariant_to_shift(data):
    a = F.softmax(Tensor(data), axis=-1).numpy()
    b = F.softmax(Tensor(data + 3.0), axis=-1).numpy()
    np.testing.assert_allclose(a, b, atol=1e-5)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_relu_never_negative_and_identity_on_positive(data):
    out = Tensor(data).relu().numpy()
    assert np.all(out >= 0.0)
    positive = data > 0
    np.testing.assert_array_equal(out[positive], data[positive])


@given(arrays(max_dims=2))
@settings(max_examples=50, deadline=None)
def test_reshape_preserves_values_and_gradients(data):
    a = Tensor(data, requires_grad=True)
    flat = a.reshape(-1)
    np.testing.assert_array_equal(np.sort(flat.numpy()), np.sort(data.ravel()))
    (flat * 2.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full_like(data, 2.0))


@given(arrays(min_dims=2, max_dims=2))
@settings(max_examples=50, deadline=None)
def test_transpose_is_involution(data):
    a = Tensor(data)
    np.testing.assert_array_equal(a.T.T.numpy(), data)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_abs_backward_matches_sign(data)    :
    a = Tensor(data, requires_grad=True)
    a.abs().sum().backward()
    np.testing.assert_allclose(a.grad, np.sign(data))


@given(arrays(min_dims=2, max_dims=2), st.integers(min_value=0, max_value=1))
@settings(max_examples=50, deadline=None)
def test_sum_axis_matches_numpy(data, axis):
    a = Tensor(data)
    np.testing.assert_allclose(a.sum(axis=axis).numpy(), data.sum(axis=axis), rtol=1e-4, atol=1e-4)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_sigmoid_bounded_and_symmetric(data):
    out = Tensor(data).sigmoid().numpy()
    assert np.all((out >= 0.0) & (out <= 1.0))
    mirrored = Tensor(-data).sigmoid().numpy()
    np.testing.assert_allclose(out + mirrored, np.ones_like(out), atol=1e-5)


@given(arrays(min_dims=1, max_dims=1), arrays(min_dims=1, max_dims=1))
@settings(max_examples=50, deadline=None)
def test_masked_mae_nonnegative(pred, target):
    n = min(pred.shape[0], target.shape[0])
    loss = F.masked_mae_loss(Tensor(pred[:n]), Tensor(target[:n]))
    assert loss.item() >= 0.0
