"""Multi-head self-attention and positional encoding."""

import numpy as np
import pytest

from repro import nn
from repro.nn.attention import scaled_dot_product_attention
from repro.nn.positional import sinusoidal_encoding
from repro.tensor import Tensor, gradcheck


def t(shape, rng):
    return Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=True)


class TestScaledDotProduct:
    def test_shape(self, rng):
        q, k, v = t((2, 5, 4), rng), t((2, 7, 4), rng), t((2, 7, 4), rng)
        assert scaled_dot_product_attention(q, k, v).shape == (2, 5, 4)

    def test_mask_blocks_positions(self, rng):
        q, k = t((1, 2, 4), rng), t((1, 3, 4), rng)
        v = Tensor(np.arange(12, dtype=np.float32).reshape(1, 3, 4))
        mask = np.zeros((1, 2, 3), dtype=bool)
        mask[..., 2] = True  # nothing may attend to key 2
        out = scaled_dot_product_attention(q, k, v, mask=mask).numpy()
        # Output must be a convex combination of rows 0 and 1 of v only.
        lo = v.numpy()[0, :2].min(axis=0)
        hi = v.numpy()[0, :2].max(axis=0)
        assert np.all(out >= lo - 1e-4) and np.all(out <= hi + 1e-4)

    def test_uniform_keys_average_values(self):
        q = Tensor(np.zeros((1, 1, 4), np.float32))
        k = Tensor(np.zeros((1, 3, 4), np.float32))
        v = Tensor(np.arange(12, dtype=np.float32).reshape(1, 3, 4))
        out = scaled_dot_product_attention(q, k, v).numpy()
        np.testing.assert_allclose(out[0, 0], v.numpy()[0].mean(axis=0), rtol=1e-5)


class TestMultiHead:
    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, num_heads=3)

    def test_shape_preserved(self, rng):
        att = nn.MultiHeadSelfAttention(8, num_heads=2)
        assert att(t((3, 6, 8), rng)).shape == (3, 6, 8)

    def test_gradcheck(self, rng):
        att = nn.MultiHeadSelfAttention(4, num_heads=2)
        gradcheck(lambda x: att(x), [t((1, 3, 4), rng)])

    def test_permutation_equivariance_without_positions(self, rng):
        # Self-attention with no positional encoding commutes with permuting
        # the sequence axis.
        att = nn.MultiHeadSelfAttention(4, num_heads=2)
        x = rng.normal(size=(1, 5, 4)).astype(np.float32)
        perm = np.array([3, 1, 4, 0, 2])
        out = att(Tensor(x)).numpy()
        out_perm = att(Tensor(x[:, perm])).numpy()
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-4)

    def test_head_count_stored(self):
        att = nn.MultiHeadSelfAttention(8, num_heads=4)
        assert att.head_dim == 2


class TestPositionalEncoding:
    def test_table_shape_and_range(self):
        table = sinusoidal_encoding(10, 8)
        assert table.shape == (10, 8)
        assert np.all(np.abs(table) <= 1.0)

    def test_even_odd_structure(self):
        table = sinusoidal_encoding(4, 6)
        # position 0: sin(0)=0 on even indices, cos(0)=1 on odd indices.
        np.testing.assert_allclose(table[0, 0::2], 0.0, atol=1e-7)
        np.testing.assert_allclose(table[0, 1::2], 1.0, atol=1e-7)

    def test_distinct_positions_distinct_codes(self):
        table = sinusoidal_encoding(32, 16)
        diffs = np.abs(table[:, None, :] - table[None, :, :]).sum(axis=-1)
        off_diag = diffs[~np.eye(32, dtype=bool)]
        assert off_diag.min() > 1e-3

    def test_module_adds_to_input(self, rng):
        pe = nn.PositionalEncoding(8, max_length=16)
        x = t((2, 5, 8), rng)
        np.testing.assert_allclose(
            pe(x).numpy(), x.numpy() + sinusoidal_encoding(16, 8)[:5], rtol=1e-5
        )

    def test_module_grows_table_on_demand(self, rng):
        pe = nn.PositionalEncoding(4, max_length=2)
        out = pe(t((1, 9, 4), rng))
        assert out.shape == (1, 9, 4)

    def test_has_no_parameters(self):
        assert nn.PositionalEncoding(8).num_parameters() == 0
