"""Finite-difference gradient verification for every public repro.nn layer.

Each case runs :func:`repro.tensor.gradcheck` over the layer's input *and*
all of its parameters at tiny sizes — parameters are perturbed in place via
``Tensor.copy_``, so the module's own parameter objects feed the numerical
gradient.  A coverage meta-test forces future layers to register a case.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor.gradcheck import gradcheck
from repro.utils.seed import set_seed


def t(rng, *shape, offset=0.0):
    data = rng.normal(size=shape).astype(np.float32)
    # Keep values away from piecewise kinks (relu at 0) so the central
    # difference does not straddle a non-differentiable point.
    data = np.where(np.abs(data) < 0.15, data + 0.3, data) + offset
    return Tensor(data.astype(np.float32), requires_grad=True)


# name -> builder(rng) returning (fn, inputs) for gradcheck.  Layers with
# tuple outputs are reduced to a single Tensor so gradcheck can sum them.
CASES = {}


def case(name):
    def register(builder):
        CASES[name] = builder
        return builder

    return register


@case("Linear")
def _linear(rng):
    layer = nn.Linear(3, 4)
    x = t(rng, 2, 3)
    return (lambda *ts: layer(ts[0])), [x] + layer.parameters()


@case("MLP")
def _mlp(rng):
    layer = nn.MLP([3, 4, 2])
    x = t(rng, 2, 3)
    return (lambda *ts: layer(ts[0])), [x] + layer.parameters()


@case("LayerNorm")
def _layernorm(rng):
    layer = nn.LayerNorm(4)
    x = t(rng, 3, 4)
    return (lambda *ts: layer(ts[0])), [x] + layer.parameters()


@case("Embedding")
def _embedding(rng):
    layer = nn.Embedding(5, 3)
    indices = rng.integers(0, 5, size=(4,))
    return (lambda *ts: layer(indices)), layer.parameters()


@case("Dropout")
def _dropout(rng):
    layer = nn.Dropout(0.5)
    layer.eval()  # deterministic identity; training mode is stochastic
    x = t(rng, 2, 3)
    return (lambda *ts: layer(ts[0])), [x]


@case("PositionalEncoding")
def _positional(rng):
    layer = nn.PositionalEncoding(4, max_length=8)
    x = t(rng, 2, 3, 4)
    return (lambda *ts: layer(ts[0])), [x]


@case("MultiHeadSelfAttention")
def _attention(rng):
    layer = nn.MultiHeadSelfAttention(4, num_heads=2)
    x = t(rng, 1, 3, 4)
    return (lambda *ts: layer(ts[0])), [x] + layer.parameters()


@case("CausalConv")
def _causal_conv(rng):
    layer = nn.CausalConv(2, 3, dilation=1)
    x = t(rng, 1, 4, 2, 2)  # (B, T, N, C)
    return (lambda *ts: layer(ts[0])), [x] + layer.parameters()


@case("GatedTemporalConv")
def _gated_conv(rng):
    layer = nn.GatedTemporalConv(2, 2, dilation=1)
    x = t(rng, 1, 4, 2, 2)
    return (lambda *ts: layer(ts[0])), [x] + layer.parameters()


@case("GRUCell")
def _gru_cell(rng):
    layer = nn.GRUCell(3, 4)
    x = t(rng, 2, 3)
    h = t(rng, 2, 4)
    return (lambda *ts: layer(ts[0], ts[1])), [x, h] + layer.parameters()


@case("GRU")
def _gru(rng):
    layer = nn.GRU(3, 4)
    x = t(rng, 2, 3, 3)  # (B, T, C)
    return (lambda *ts: layer(ts[0])[0]), [x] + layer.parameters()


@case("LSTMCell")
def _lstm_cell(rng):
    layer = nn.LSTMCell(3, 4)
    x = t(rng, 2, 3)
    h = t(rng, 2, 4)
    c = t(rng, 2, 4)

    def fn(*ts):
        new_h, new_c = layer(ts[0], (ts[1], ts[2]))
        return new_h + new_c

    return fn, [x, h, c] + layer.parameters()


@case("LSTM")
def _lstm(rng):
    layer = nn.LSTM(3, 4)
    x = t(rng, 2, 3, 3)
    return (lambda *ts: layer(ts[0])[0]), [x] + layer.parameters()


@case("Sequential")
def _sequential(rng):
    layer = nn.Sequential(nn.Linear(3, 4), nn.Tanh(), nn.Linear(4, 2))
    x = t(rng, 2, 3)
    return (lambda *ts: layer(ts[0])), [x] + layer.parameters()


@case("ReLU")
def _relu(rng):
    x = t(rng, 3, 3)  # t() keeps values off the kink at 0
    layer = nn.ReLU()
    return (lambda *ts: layer(ts[0])), [x]


@case("LeakyReLU")
def _leaky_relu(rng):
    x = t(rng, 3, 3)
    layer = nn.LeakyReLU(0.1)
    return (lambda *ts: layer(ts[0])), [x]


@case("Sigmoid")
def _sigmoid(rng):
    layer = nn.Sigmoid()
    x = t(rng, 3, 3)
    return (lambda *ts: layer(ts[0])), [x]


@case("Tanh")
def _tanh(rng):
    layer = nn.Tanh()
    x = t(rng, 3, 3)
    return (lambda *ts: layer(ts[0])), [x]


# Public Module subclasses with no computation of their own.
EXEMPT = {"Module", "ModuleList", "Parameter"}


class TestLayerGradients:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_gradcheck(self, name):
        set_seed(7)
        rng = np.random.default_rng(7)
        fn, inputs = CASES[name](rng)
        assert gradcheck(fn, inputs)

    def test_every_public_layer_has_a_case(self):
        """New nn layers must register a gradcheck case (or an exemption)."""
        public_modules = {
            name
            for name in nn.__all__
            if isinstance(getattr(nn, name), type)
            and issubclass(getattr(nn, name), Module)
        }
        uncovered = public_modules - set(CASES) - EXEMPT
        assert uncovered == set(), f"layers without a gradcheck case: {sorted(uncovered)}"
