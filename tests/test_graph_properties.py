"""Hypothesis property tests on the graph substrate's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.graph import (
    backward_transition,
    forward_transition,
    localized_transition_stack,
    mask_self_loops,
    matrix_powers,
)


def adjacency_matrices(max_nodes=8):
    """Random non-negative square matrices with at least one edge per row."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=max_nodes))
        dense = draw(
            hnp.arrays(
                np.float32,
                (n, n),
                elements=st.floats(min_value=0.0, max_value=5.0, width=32),
            )
        )
        # Guarantee no all-zero rows so transitions are genuinely stochastic,
        # and drop subnormal weights (they underflow to zero during the
        # float32 row normalisation, which is expected numerics, not a bug).
        dense[dense < 1e-3] = 0.0
        dense = dense + np.eye(n, dtype=np.float32) * 0.5
        return dense

    return build()


@given(adjacency_matrices())
@settings(max_examples=50, deadline=None)
def test_forward_transition_is_row_stochastic(adjacency):
    p = forward_transition(adjacency)
    np.testing.assert_allclose(p.sum(axis=1), np.ones(adjacency.shape[0]), rtol=1e-4)
    assert np.all(p >= 0)


@given(adjacency_matrices())
@settings(max_examples=50, deadline=None)
def test_backward_transition_transposes_support(adjacency):
    p_b = backward_transition(adjacency)
    support_b = p_b > 0
    support_a = adjacency.T > 0
    np.testing.assert_array_equal(support_b, support_a)


@given(adjacency_matrices(), st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_powers_preserve_row_stochasticity(adjacency, order):
    p = forward_transition(adjacency)
    for power in matrix_powers(p, order):
        np.testing.assert_allclose(power.sum(axis=1), np.ones(p.shape[0]), rtol=1e-3)


@given(adjacency_matrices())
@settings(max_examples=50, deadline=None)
def test_mask_self_loops_only_touches_diagonal(adjacency):
    p = forward_transition(adjacency)
    masked = mask_self_loops(p)
    np.testing.assert_array_equal(np.diag(masked), np.zeros(p.shape[0]))
    off = ~np.eye(p.shape[0], dtype=bool)
    np.testing.assert_array_equal(masked[off], p[off])


@given(
    adjacency_matrices(),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_localized_stack_shape_and_masking(adjacency, k_s, k_t):
    p = forward_transition(adjacency)
    n = p.shape[0]
    stack = localized_transition_stack(p, k_s=k_s, k_t=k_t)
    assert len(stack) == k_s
    for local in stack:
        assert local.shape == (n, k_t * n)
        for copy in range(k_t):
            block = local[:, copy * n : (copy + 1) * n]
            np.testing.assert_array_equal(np.diag(block), np.zeros(n))
