"""The engine's inference mode: no recording, no tape growth, same numbers."""

import numpy as np
import pytest

from repro.models import build_model
from repro.tensor import (
    Tensor,
    backward_tape_stats,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
)
from repro.training import evaluate_split


class TestContext:
    def test_flags_inside_and_outside(self):
        assert is_grad_enabled() and not is_inference_mode()
        with inference_mode():
            assert not is_grad_enabled()
            assert is_inference_mode()
        assert is_grad_enabled() and not is_inference_mode()

    def test_restores_flags_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode():
                raise RuntimeError("boom")
        assert is_grad_enabled() and not is_inference_mode()

    def test_nests_inside_no_grad(self):
        with no_grad():
            with inference_mode():
                assert is_inference_mode()
            assert not is_grad_enabled()  # outer no_grad still active
        assert is_grad_enabled()

    def test_no_graph_is_built(self):
        a = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
        with inference_mode():
            out = (a * 2.0).sum()
        assert not out.requires_grad


class TestTapeIsolation:
    def test_no_tape_nodes_recorded(self, tiny_data):
        model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
        batch = next(iter(tiny_data.loader("val", batch_size=4, shuffle=False)))
        before = backward_tape_stats()
        with inference_mode():
            model(batch.x, batch.tod, batch.dow)
        after = backward_tape_stats()
        assert after["recorded_nodes"] == before["recorded_nodes"]

    def test_pending_training_tape_survives(self, tiny_data):
        # A forward awaiting backward must not be perturbed by an inference
        # forward in between (the hot-swap-while-training scenario).
        model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
        batch = next(iter(tiny_data.loader("train", batch_size=4, shuffle=False)))
        loss = model(batch.x, batch.tod, batch.dow).sum()
        with inference_mode():
            model(batch.x, batch.tod, batch.dow)
        loss.backward()  # would fail or mis-accumulate if the tape was clobbered
        assert all(p.grad is not None for p in model.parameters())


class TestMetricsUnchanged:
    def test_evaluate_split_matches_no_grad_path(self, tiny_data):
        model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
        under_inference = evaluate_split(model, tiny_data, split="val")
        # Reference: the same streaming evaluation under plain no_grad.
        model.eval()
        with no_grad():
            from repro.training.evaluation import HorizonAccumulator

            accumulator = HorizonAccumulator(0.0)
            for batch in tiny_data.loader("val", batch_size=64, shuffle=False):
                out = model(batch.x, batch.tod, batch.dow)
                prediction = tiny_data.scaler.inverse_transform(out.numpy())
                accumulator.update(prediction, batch.y)
            reference = accumulator.compute()
        assert under_inference["avg"] == reference
