"""Fault injection, NaN-rollback recovery and kill-and-resume equivalence."""

import numpy as np
import pytest

from repro import nn
from repro.check import AnomalyError
from repro.faults import (
    ActivationFault,
    BatchFault,
    CrashFault,
    FaultSchedule,
    GradientFault,
    IMPUTE_STRATEGIES,
    OutageScenario,
    SimulatedCrash,
    evaluate_under_outage,
    impute_windows,
    sample_outage_mask,
)
from repro.obs import MemorySink
from repro.tensor import Tensor
from repro.training import (
    RecoveryExhausted,
    RecoveryPolicy,
    Trainer,
    TrainerConfig,
)
from repro.utils import CheckpointError
from repro.utils.seed import set_seed


class TinyForecaster(nn.Module):
    """Two Linears over the history axis — fast, and exercises relu+dropout."""

    def __init__(self, history=12, horizon=12):
        super().__init__()
        self.l1 = nn.Linear(history, 16)
        self.drop = nn.Dropout(0.2)
        self.l2 = nn.Linear(16, horizon)
        self.horizon = horizon

    def forward(self, x, tod, dow):
        h = Tensor(np.ascontiguousarray(np.transpose(x[..., 0], (0, 2, 1))))
        out = self.l2(self.drop(self.l1(h).relu()))  # (B, N, horizon)
        return out.transpose(0, 2, 1).reshape(x.shape[0], self.horizon, x.shape[2], 1)


def _config(**overrides):
    base = dict(epochs=2, batch_size=64, patience=10, seed=0)
    base.update(overrides)
    return TrainerConfig(**base)


def _records(sink, event):
    return [r for r in sink.records if r["event"] == event]


class TestKillAndResume:
    def test_resumed_run_matches_uninterrupted(self, tiny_data, tmp_path):
        """A run killed between epochs continues to the identical result."""
        cfg = _config(epochs=4)
        set_seed(7)
        reference = Trainer(TinyForecaster(), tiny_data, cfg)
        ref_history = reference.fit()

        state = tmp_path / "state.npz"
        set_seed(7)
        killed = Trainer(
            TinyForecaster(), tiny_data, cfg,
            faults=FaultSchedule([CrashFault(epoch=1)]),
        )
        with pytest.raises(SimulatedCrash):
            killed.fit(state_path=state)
        assert state.exists()

        set_seed(999)  # resume must restore the RNG streams, not reuse this
        sink = MemorySink()
        resumed = Trainer(TinyForecaster(), tiny_data, cfg, sink=sink)
        history = resumed.fit(resume_from=state, state_path=state)

        assert history.train_loss == ref_history.train_loss
        assert history.val_mae == ref_history.val_mae
        assert history.grad_norm_mean == ref_history.grad_norm_mean
        assert resumed.optimizer._step == reference.optimizer._step
        for name, value in reference.model.state_dict().items():
            np.testing.assert_array_equal(value, resumed.model.state_dict()[name])
        (resume,) = _records(sink, "resume")
        assert resume["path"] == str(state)
        assert resume["global_step"] == resumed._global_step - 2 * len(
            list(tiny_data.loader("train", batch_size=cfg.batch_size))
        )

    def test_resume_restores_iterator_order(self, tiny_data, tmp_path):
        """Loader shuffle order is part of the resume contract.

        The Trainer checkpoints both its own batch-order generator and the
        seeded library RNG (which default-constructed ``BatchIterator``s
        split their stream from), so any loader built *after* training must
        shuffle identically whether the run was resumed or not.
        """

        def first_shuffled_batch():
            loader = tiny_data.loader("train", batch_size=16, shuffle=True)
            return next(iter(loader)).x.tobytes()

        cfg = _config(epochs=3)
        set_seed(7)
        Trainer(TinyForecaster(), tiny_data, cfg).fit()
        expected = first_shuffled_batch()

        state = tmp_path / "state.npz"
        set_seed(7)
        killed = Trainer(
            TinyForecaster(), tiny_data, cfg,
            faults=FaultSchedule([CrashFault(epoch=1)]),
        )
        with pytest.raises(SimulatedCrash):
            killed.fit(state_path=state)

        set_seed(999)  # resume must restore the library stream, not reuse this
        resumed = Trainer(TinyForecaster(), tiny_data, cfg)
        resumed.fit(resume_from=state, state_path=state)
        assert first_shuffled_batch() == expected

    def test_resume_rejects_config_mismatch(self, tiny_data, tmp_path):
        state = tmp_path / "state.npz"
        set_seed(1)
        Trainer(TinyForecaster(), tiny_data, _config(epochs=1)).fit(state_path=state)
        set_seed(1)
        other = Trainer(TinyForecaster(), tiny_data, _config(epochs=1, learning_rate=0.01))
        with pytest.raises(CheckpointError, match="learning_rate"):
            other.fit(resume_from=state)

    def test_resume_allows_extending_epochs(self, tiny_data, tmp_path):
        state = tmp_path / "state.npz"
        set_seed(1)
        Trainer(TinyForecaster(), tiny_data, _config(epochs=1)).fit(state_path=state)
        set_seed(1)
        longer = Trainer(TinyForecaster(), tiny_data, _config(epochs=2))
        history = longer.fit(resume_from=state, state_path=state)
        assert history.epochs_run == 2

    def test_missing_state_raises(self, tiny_data, tmp_path):
        trainer = Trainer(TinyForecaster(), tiny_data, _config())
        with pytest.raises(CheckpointError):
            trainer.fit(resume_from=tmp_path / "nothing.npz")


class TestRecovery:
    def test_activation_fault_triggers_rollback(self, tiny_data):
        sink = MemorySink()
        set_seed(3)
        trainer = Trainer(
            TinyForecaster(), tiny_data,
            _config(recovery=RecoveryPolicy()),
            sink=sink,
            faults=FaultSchedule([ActivationFault(step=2, op="relu")]),
        )
        history = trainer.fit()
        (record,) = _records(sink, "recovery")
        assert record["step"] == 2
        assert record["lr_after"] == pytest.approx(record["lr_before"] * 0.5)
        assert np.isfinite(history.train_loss).all()
        assert np.isfinite(history.val_mae).all()
        for value in trainer.model.state_dict().values():
            assert np.isfinite(value).all()

    def test_gradient_fault_triggers_rollback(self, tiny_data):
        sink = MemorySink()
        set_seed(3)
        trainer = Trainer(
            TinyForecaster(), tiny_data,
            _config(recovery=RecoveryPolicy()),
            sink=sink,
            faults=FaultSchedule([GradientFault(step=1, mode="inf")]),
        )
        history = trainer.fit()
        (record,) = _records(sink, "recovery")
        assert "gradient" in record["reason"]
        assert np.isfinite(history.val_mae).all()

    def test_batch_fault_triggers_rollback(self, tiny_data):
        sink = MemorySink()
        set_seed(3)
        trainer = Trainer(
            TinyForecaster(), tiny_data,
            _config(recovery=RecoveryPolicy()),
            sink=sink,
            faults=FaultSchedule([BatchFault(step=0, mode="nan")]),
        )
        trainer.fit()
        assert len(_records(sink, "recovery")) == 1

    def test_without_policy_detect_anomaly_is_fatal(self, tiny_data):
        set_seed(3)
        trainer = Trainer(
            TinyForecaster(), tiny_data, _config(detect_anomaly=True),
            faults=FaultSchedule([ActivationFault(step=0, op="relu")]),
        )
        with pytest.raises(AnomalyError):
            trainer.fit()

    def test_without_policy_nan_counts_against_patience(self, tiny_data):
        set_seed(3)
        trainer = Trainer(
            TinyForecaster(), tiny_data, _config(epochs=4, patience=2),
            faults=FaultSchedule([ActivationFault(step=None, op="relu")]),
        )
        history = trainer.fit()  # legacy contract: must return, not raise
        assert history.epochs_run <= 4

    def test_persistent_fault_exhausts_retries(self, tiny_data):
        sink = MemorySink()
        set_seed(3)
        trainer = Trainer(
            TinyForecaster(), tiny_data,
            _config(recovery=RecoveryPolicy(max_retries=2)),
            sink=sink,
            faults=FaultSchedule([GradientFault(step=None)]),  # every step
        )
        with pytest.raises(RecoveryExhausted):
            trainer.fit()
        assert len(_records(sink, "recovery")) == 2

    def test_backoff_is_cumulative_and_floored(self, tiny_data):
        sink = MemorySink()
        set_seed(3)
        policy = RecoveryPolicy(max_retries=3, lr_backoff=0.5, min_lr=4e-4)
        trainer = Trainer(
            TinyForecaster(), tiny_data,
            _config(recovery=policy),
            sink=sink,
            faults=FaultSchedule([GradientFault(step=0), GradientFault(step=1)]),
        )
        trainer.fit()
        records = _records(sink, "recovery")
        assert [r["lr_after"] for r in records] == [pytest.approx(5e-4), pytest.approx(4e-4)]
        assert records[-1]["total_recoveries"] == 2

    def test_rollback_restores_snapshot(self, tiny_data):
        """Params after a skipped batch equal those before the fault hit."""
        set_seed(3)
        clean = Trainer(TinyForecaster(), tiny_data, _config(epochs=1))
        set_seed(3)
        faulted = Trainer(
            TinyForecaster(), tiny_data,
            # No LR backoff, so the post-recovery trajectory only differs by
            # the skipped batch's missing update.
            _config(epochs=1, recovery=RecoveryPolicy(lr_backoff=1.0)),
            faults=FaultSchedule([ActivationFault(step=0, op="relu")]),
        )
        # Run a single batch each: clean applies step 0, faulted skips it.
        clean_batch = next(iter(tiny_data.loader("train", batch_size=64)))
        loss = clean._loss(clean_batch, 12)
        loss.backward()
        before = {k: v.copy() for k, v in faulted.model.state_dict().items()}
        history = faulted.fit()
        assert history.epochs_run == 1
        # The faulted model moved on (later batches trained), but never went
        # non-finite — the rollback caught the poisoned step.
        assert any(
            not np.array_equal(before[k], v)
            for k, v in faulted.model.state_dict().items()
        )
        for value in faulted.model.state_dict().values():
            assert np.isfinite(value).all()


class TestInjectors:
    def test_activation_fault_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            ActivationFault(step=0, op="definitely_not_an_op")

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            BatchFault(step=0, mode="zero")

    def test_batch_fault_fires_only_at_its_step(self, tiny_data):
        fault = BatchFault(step=3, mode="nan", fraction=0.5)
        batch = next(iter(tiny_data.loader("train", batch_size=4)))
        assert fault.corrupt_batch(2, batch) is batch
        corrupted = fault.corrupt_batch(3, batch)
        assert corrupted is not batch
        assert np.isnan(corrupted.x).any()
        assert np.isfinite(batch.x).all()  # original untouched

    def test_poison_context_restores_tensor_methods(self):
        fault = ActivationFault(step=0, op="relu")
        original = Tensor.relu
        with fault.activation_context(0):
            poisoned = Tensor(np.ones(3)).relu()
            assert np.isnan(poisoned.numpy()).any()
        assert Tensor.relu is original
        assert np.isfinite(Tensor(np.ones(3)).relu().numpy()).all()

    def test_schedule_composes_hooks(self, tiny_data):
        schedule = FaultSchedule([
            BatchFault(step=0, mode="nan"),
            GradientFault(step=5),
            CrashFault(epoch=0),
        ])
        batch = next(iter(tiny_data.loader("train", batch_size=4)))
        assert np.isnan(schedule.corrupt_batch(0, batch).x).any()
        with schedule.activation_context(0):
            pass  # no activation faults scheduled: empty composition
        with pytest.raises(SimulatedCrash):
            schedule.after_epoch(0)
        schedule.after_epoch(1)  # only the targeted epoch crashes

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(lr_backoff=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(min_lr=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(snapshot_every=0)


class TestOutage:
    def test_mask_shape_and_rate(self, rng):
        scenario = OutageScenario(rate=1.0, duration=(2, 4), seed=0)
        mask = sample_outage_mask(rng, 8, 12, 5, scenario)
        assert mask.shape == (8, 12, 5)
        assert mask.any(axis=1).all()  # rate=1: every sensor dark somewhere
        zero = sample_outage_mask(rng, 8, 12, 5, OutageScenario(rate=0.0))
        assert not zero.any()

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            OutageScenario(rate=1.5)
        with pytest.raises(ValueError):
            OutageScenario(duration=(0, 3))
        with pytest.raises(ValueError):
            OutageScenario(duration=(5, 2))

    def test_impute_strategies(self, tiny_data, rng):
        batch = next(iter(tiny_data.loader("test", batch_size=4)))
        mask = sample_outage_mask(rng, 4, 12, batch.x.shape[2], OutageScenario(rate=0.5))
        scaler = tiny_data.scaler
        zero = impute_windows(batch.x, mask, "zero", scaler)
        mean = impute_windows(batch.x, mask, "mean", scaler)
        ffill = impute_windows(batch.x, mask, "ffill", scaler)
        raw_zero = (0.0 - scaler.mean) / scaler.std
        assert np.allclose(zero[..., 0][mask], raw_zero)
        assert np.allclose(mean[..., 0][mask], 0.0)
        assert np.isfinite(ffill).all()
        # Untouched readings and time channels are preserved exactly.
        for imputed in (zero, mean, ffill):
            np.testing.assert_array_equal(imputed[..., 1:], batch.x[..., 1:])
            np.testing.assert_array_equal(
                imputed[..., 0][~mask], batch.x[..., 0][~mask]
            )
        # ffill actually carries the previous value forward.
        b, t, n = np.argwhere(mask[:, 1:, :] & ~mask[:, :-1, :])[0]
        assert ffill[b, t + 1, n, 0] == ffill[b, t, n, 0]

    def test_impute_validation(self, tiny_data, rng):
        batch = next(iter(tiny_data.loader("test", batch_size=2)))
        mask = np.zeros(batch.x.shape[:3], dtype=bool)
        with pytest.raises(ValueError, match="strategy"):
            impute_windows(batch.x, mask, "magic", tiny_data.scaler)
        with pytest.raises(ValueError, match="mask shape"):
            impute_windows(batch.x, mask[:1], "zero", tiny_data.scaler)

    def test_evaluation_degrades_gracefully(self, tiny_data):
        set_seed(5)
        model = TinyForecaster()
        Trainer(model, tiny_data, _config(epochs=1)).fit()
        reports = evaluate_under_outage(
            model, tiny_data, OutageScenario(rate=0.4, seed=11), split="val"
        )
        assert set(reports) == {"clean"} | set(IMPUTE_STRATEGIES)
        mae = {key: report["avg"]["mae"] for key, report in reports.items()}
        assert all(np.isfinite(v) for v in mae.values())
        # Imputing with the training mean beats feeding raw zeros (~7 sigma
        # off-distribution) into the model; clean is the lower bound.
        assert mae["mean"] <= mae["zero"]
        assert mae["clean"] <= mae["zero"]

    def test_evaluation_is_deterministic(self, tiny_data):
        set_seed(5)
        model = TinyForecaster()
        scenario = OutageScenario(rate=0.3, seed=2)
        first = evaluate_under_outage(model, tiny_data, scenario, split="val",
                                      strategies=("mean",))
        second = evaluate_under_outage(model, tiny_data, scenario, split="val",
                                       strategies=("mean",))
        assert first["mean"]["avg"]["mae"] == second["mean"]["avg"]["mae"]

    def test_unknown_strategy_rejected(self, tiny_data):
        with pytest.raises(ValueError, match="strategy"):
            evaluate_under_outage(
                TinyForecaster(), tiny_data, strategies=("nope",), split="val"
            )
