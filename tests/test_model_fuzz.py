"""Hypothesis fuzzing over model configurations.

Any valid :class:`D2STGNNConfig` must build, forward to the right shape and
backpropagate to at least the input projection — across the whole flag
lattice, not only the named ablations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import D2STGNN, D2STGNNConfig
from repro.tensor import Tensor
from repro.utils.seed import set_seed

N = 5
ADJACENCY = (np.eye(N) + np.roll(np.eye(N), 1, axis=1) + np.roll(np.eye(N), -1, axis=1)).astype(
    np.float32
)


configs = st.fixed_dictionaries(
    {
        "num_layers": st.integers(min_value=1, max_value=2),
        "k_s": st.integers(min_value=1, max_value=3),
        "k_t": st.integers(min_value=1, max_value=3),
        "hidden_dim": st.sampled_from([4, 8]),
        "diffusion_first": st.booleans(),
        "use_gate": st.booleans(),
        "use_residual": st.booleans(),
        "use_decouple": st.booleans(),
        "use_dynamic_graph": st.booleans(),
        "dynamic_graph_per_step": st.booleans(),
        "use_adaptive": st.booleans(),
        "use_gru": st.booleans(),
        "use_msa": st.booleans(),
        "autoregressive": st.booleans(),
    }
)


@given(configs)
@settings(max_examples=25, deadline=None)
def test_any_valid_config_trains(flags):
    if not (flags["use_gru"] or flags["use_msa"]):
        flags["use_gru"] = True  # the inherent block needs one sub-module
    set_seed(0)
    config = D2STGNNConfig(
        num_nodes=N,
        steps_per_day=288,
        embed_dim=4,
        num_heads=2,
        history=6,
        horizon=3,
        dropout=0.0,
        **flags,
    )
    model = D2STGNN(config, ADJACENCY)
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 6, N, 1)).astype(np.float32)
    tod = rng.integers(0, 288, size=(2, 6))
    dow = rng.integers(0, 7, size=(2, 6))
    out = model(x, tod, dow)
    assert out.shape == (2, 3, N, 1)
    assert np.isfinite(out.numpy()).all()
    out.sum().backward()
    assert model.input_projection.weight.grad is not None
    assert np.isfinite(model.input_projection.weight.grad).all()


@given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=12))
@settings(max_examples=15, deadline=None)
def test_any_history_horizon_combination(history, horizon):
    set_seed(0)
    config = D2STGNNConfig(
        num_nodes=N, steps_per_day=288, hidden_dim=4, embed_dim=4, num_heads=2,
        num_layers=1, history=history, horizon=horizon, dropout=0.0,
    )
    model = D2STGNN(config, ADJACENCY)
    rng = np.random.default_rng(2)
    x = rng.normal(size=(1, history, N, 1)).astype(np.float32)
    tod = rng.integers(0, 288, size=(1, history))
    dow = rng.integers(0, 7, size=(1, history))
    out = model(x, tod, dow)
    assert out.shape == (1, horizon, N, 1)
