"""The command-line interface (driven in-process via cli.main)."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_models_and_datasets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "D2STGNN" in out
        assert "metr-la-sim" in out
        assert "statistical" in out


class TestSimulate:
    def test_writes_dataset_file(self, tmp_path, capsys):
        out_file = tmp_path / "ds.npz"
        code = main([
            "simulate", "--dataset", "pems08-sim",
            "--nodes", "6", "--steps", "400", "--out", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        assert "6 nodes" in capsys.readouterr().out

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--dataset", "nope", "--out", "x.npz"])


class TestTrainEvaluate:
    def test_statistical_model_flow(self, tmp_path, capsys):
        code = main([
            "train", "--dataset", "metr-la-sim", "--model", "HA",
            "--nodes", "6", "--steps", "420",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "horizon 3" in out

    def test_neural_train_checkpoint_evaluate(self, tmp_path, capsys):
        ds_file = tmp_path / "ds.npz"
        ckpt = tmp_path / "model.npz"
        main(["simulate", "--dataset", "metr-la-sim", "--nodes", "6",
              "--steps", "420", "--out", str(ds_file)])
        code = main([
            "train", "--dataset", str(ds_file), "--model", "D2STGNN",
            "--epochs", "1", "--hidden", "8", "--layers", "1",
            "--checkpoint", str(ckpt),
        ])
        assert code == 0
        assert ckpt.exists()
        capsys.readouterr()
        code = main(["evaluate", "--checkpoint", str(ckpt), "--dataset", str(ds_file)])
        assert code == 0
        assert "MAE" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--model", "NotAModel"])


class TestProfile:
    def test_profile_writes_baseline_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "profile.json"
        code = main([
            "profile", "--dataset", "metr-la-sim", "--model", "d2stgnn",
            "--nodes", "6", "--steps", "420", "--hidden", "8", "--layers", "1",
            "--batches", "1", "--out", str(out),
        ])
        assert code == 0
        assert "distinct ops" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs.profile/v1"
        assert payload["model"] == "D2STGNN"  # case-insensitive resolution
        assert payload["distinct_ops"] >= 10
        for row in payload["ops"]:
            assert {"op", "phase", "count", "time", "bytes"} <= set(row)

    def test_statistical_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "--model", "HA"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "--model", "NotAModel"])


class TestExperiments:
    def test_registry_lists_every_bench(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["experiments"]) == 0
        out = capsys.readouterr().out
        for artifact in ("Table 2", "Table 3", "Table 4", "Table 5",
                         "Figure 6", "Figure 7", "Figure 8"):
            assert artifact in out

    def test_registry_benches_exist_on_disk(self):
        from pathlib import Path

        from repro.experiments import EXPERIMENTS

        root = Path(__file__).resolve().parent.parent
        for spec in EXPERIMENTS.values():
            assert (root / spec.bench).exists(), spec.bench

    def test_get_experiment_validates(self):
        import pytest as _pytest

        from repro.experiments import get_experiment

        assert get_experiment("table3").paper_artifact == "Table 3"
        with _pytest.raises(KeyError):
            get_experiment("table99")

class TestLint:
    def test_repo_head_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_findings_yield_nonzero_exit(self, capsys):
        fixture = "tests/fixtures/lint_violations.py"
        assert main(["lint", fixture]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "finding(s)" in out

    def test_json_output(self, capsys):
        import json

        fixture = "tests/fixtures/lint_violations.py"
        assert main(["lint", fixture, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == len(payload["findings"]) > 0
        assert {"path", "line", "rule", "message"} <= set(payload["findings"][0])


class TestCheck:
    def test_single_model_single_preset_is_clean(self, capsys):
        code = main(["check", "--model", "FC-LSTM", "--dataset", "metr-la-sim"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FC-LSTM" in out
        assert "0 finding(s)" in out

    def test_json_output(self, capsys):
        import json

        code = main(["check", "--model", "fc-lstm", "--dataset", "metr-la-sim",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.check.models/v1"
        assert payload["findings_total"] == 0
        [row] = payload["checks"]
        assert row["model"] == "FC-LSTM"  # case-insensitive resolution

    def test_statistical_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--model", "HA"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--model", "NotAModel"])


class TestTrainResume:
    def test_resume_flag_round_trip(self, tmp_path, capsys):
        state = tmp_path / "state.npz"
        args = [
            "train", "--dataset", "metr-la-sim", "--model", "GraphWaveNet",
            "--nodes", "6", "--steps", "420", "--epochs", "1",
            "--hidden", "8", "--layers", "1", "--resume", str(state),
        ]
        assert main(args) == 0
        assert state.exists()
        assert "starting fresh" in capsys.readouterr().out
        # Second invocation with more epochs picks the run back up.
        args[args.index("--epochs") + 1] = "2"
        assert main(args) == 0
        assert f"resuming from {state}" in capsys.readouterr().out
