"""Scalers, windows, splits and dataset presets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    FLOW_SPLIT,
    PRESETS,
    SPEED_SPLIT,
    BatchIterator,
    SplitRatios,
    StandardScaler,
    WindowDataset,
    build_forecasting_data,
    chronological_split,
    load_dataset,
)


class TestStandardScaler:
    def test_roundtrip(self, rng):
        values = rng.uniform(10, 60, size=(50, 4)).astype(np.float32)
        scaler = StandardScaler(null_value=None).fit(values)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(values)), values, rtol=1e-4
        )

    def test_transform_standardises(self, rng):
        values = rng.normal(30, 5, size=(2000,)).astype(np.float32)
        scaled = StandardScaler(null_value=None).fit_transform(values)
        assert abs(scaled.mean()) < 0.05
        assert abs(scaled.std() - 1.0) < 0.05

    def test_null_masking_excludes_zeros(self):
        values = np.array([0.0, 10.0, 20.0, 0.0], dtype=np.float32)
        scaler = StandardScaler(null_value=0.0).fit(values)
        assert scaler.mean == pytest.approx(15.0)

    def test_unfit_scaler_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones(3))

    def test_all_null_raises(self):
        with pytest.raises(ValueError):
            StandardScaler(null_value=0.0).fit(np.zeros(5))

    def test_constant_series_does_not_divide_by_zero(self):
        scaler = StandardScaler(null_value=None).fit(np.full(10, 7.0))
        out = scaler.transform(np.full(10, 7.0))
        assert np.all(np.isfinite(out))

    @given(st.floats(min_value=-50, max_value=50), st.floats(min_value=0.5, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, mean, std):
        rng = np.random.default_rng(0)
        values = (rng.normal(mean, std, 100)).astype(np.float32)
        scaler = StandardScaler(null_value=None).fit(values)
        back = scaler.inverse_transform(scaler.transform(values))
        np.testing.assert_allclose(back, values, atol=1e-2)


class TestWindows:
    @pytest.fixture()
    def dataset(self, rng):
        t, n = 60, 3
        raw = rng.uniform(1, 10, size=(t, n)).astype(np.float32)
        tod = np.arange(t) % 288
        dow = (np.arange(t) // 288) % 7
        return WindowDataset(raw * 0.1, raw, tod, dow, history=12, horizon=12)

    def test_sample_count(self, dataset):
        assert len(dataset) == 60 - 24 + 1

    def test_window_alignment(self, dataset):
        x, y, tod, dow = dataset.sample(5)
        assert x.shape == (12, 3, 1)
        assert y.shape == (12, 3, 1)
        np.testing.assert_array_equal(tod, np.arange(5, 17) % 288)
        # Target starts exactly where input ends.
        np.testing.assert_allclose(
            dataset.values_raw[17, :, 0], y[0, :, 0]
        )

    def test_scaled_input_raw_target(self, dataset):
        x, y, _, _ = dataset.sample(0)
        np.testing.assert_allclose(x, dataset.values_scaled[0:12])
        np.testing.assert_allclose(y, dataset.values_raw[12:24])

    def test_out_of_range_index(self, dataset):
        with pytest.raises(IndexError):
            dataset.sample(len(dataset))

    def test_too_short_series_rejected(self, rng):
        raw = rng.uniform(size=(10, 2)).astype(np.float32)
        with pytest.raises(ValueError):
            WindowDataset(raw, raw, np.arange(10), np.arange(10), history=12, horizon=12)

    def test_subset_bounds_validated(self, dataset):
        with pytest.raises(ValueError):
            dataset.subset(5, 1000)

    def test_batch_iterator_covers_everything(self, dataset):
        subset = dataset.subset(0, len(dataset))
        batches = list(BatchIterator(subset, batch_size=7, shuffle=False))
        total = sum(b.size for b in batches)
        assert total == len(dataset)
        assert len(batches) == int(np.ceil(len(dataset) / 7))

    def test_shuffle_changes_order_not_content(self, dataset):
        subset = dataset.subset(0, len(dataset))
        plain = np.concatenate(
            [b.x for b in BatchIterator(subset, batch_size=64, shuffle=False)]
        )
        shuffled = np.concatenate(
            [
                b.x
                for b in BatchIterator(
                    subset, batch_size=64, shuffle=True, rng=np.random.default_rng(1)
                )
            ]
        )
        assert not np.array_equal(plain, shuffled)
        np.testing.assert_allclose(np.sort(plain.ravel()), np.sort(shuffled.ravel()))


class TestSplits:
    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SplitRatios(0.5, 0.2, 0.2)

    def test_ratios_must_be_positive(self):
        with pytest.raises(ValueError):
            SplitRatios(1.0, 0.0, 0.0)

    def test_chronological_order(self):
        (a0, a1), (b0, b1), (c0, c1) = chronological_split(1000, SPEED_SPLIT)
        assert a0 == 0 and a1 == b0 and b1 == c0 and c1 == 1000

    def test_proportions_approximate(self):
        (a0, a1), (b0, b1), (c0, c1) = chronological_split(1000, FLOW_SPLIT)
        assert a1 - a0 == pytest.approx(600, abs=2)
        assert b1 - b0 == pytest.approx(200, abs=2)
        assert c1 - c0 == pytest.approx(200, abs=2)

    def test_tiny_input_rejected(self):
        with pytest.raises(ValueError):
            chronological_split(2, SPEED_SPLIT)


class TestPresets:
    def test_all_presets_load(self):
        for name in PRESETS:
            ds = load_dataset(name, num_nodes=6, num_steps=300)
            assert ds.num_nodes == 6
            assert ds.num_steps == 300
            assert ds.series.kind == PRESETS[name].kind

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_speed_flow_character(self):
        speed = load_dataset("pems-bay-sim", num_nodes=6, num_steps=400)
        flow = load_dataset("pems04-sim", num_nodes=6, num_steps=400)
        assert speed.series.values.max() <= 70.0
        assert flow.series.values.max() > 70.0  # flow counts in the hundreds

    def test_deterministic_loads(self):
        a = load_dataset("metr-la-sim", num_nodes=6, num_steps=300)
        b = load_dataset("metr-la-sim", num_nodes=6, num_steps=300)
        np.testing.assert_array_equal(a.series.values, b.series.values)

    def test_reference_stats_recorded(self):
        spec = PRESETS["metr-la-sim"]
        assert spec.reference_nodes == 207
        assert spec.reference_edges == 1722
        assert spec.reference_steps == 34272

    def test_profile_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "weird")
        from repro.data import scale_profile

        with pytest.raises(ValueError):
            scale_profile()


class TestForecastingData:
    def test_scaler_fit_on_train_only(self, tiny_dataset):
        data = build_forecasting_data(tiny_dataset)
        values = tiny_dataset.series.values
        train_stop = data.train.stop
        train_values = values[:train_stop]
        observed = train_values[train_values != 0]
        assert data.scaler.mean == pytest.approx(float(observed.mean()), rel=0.05)

    def test_split_sizes_ordered(self, tiny_data):
        assert len(tiny_data.train) > len(tiny_data.test) > 0
        assert len(tiny_data.val) > 0

    def test_loader_split_selection(self, tiny_data):
        batch = next(iter(tiny_data.loader("test", batch_size=4)))
        assert batch.size == 4

    def test_no_window_overlap_between_train_and_test_targets(self, tiny_data):
        # Train windows end strictly before test windows begin.
        assert tiny_data.train.stop <= tiny_data.test.start


class TestGraphConstructionByKind:
    def test_speed_uses_dense_kernel_flow_uses_sparse_binary(self):
        """Sec. 6.1: speed datasets take the DCRNN Gaussian kernel (dense,
        weighted), flow datasets the ASTGCN binary connectivity (sparse)."""
        speed = load_dataset("metr-la-sim", num_nodes=10, num_steps=320)
        flow = load_dataset("pems04-sim", num_nodes=10, num_steps=320)
        assert flow.num_edges < speed.num_edges
        # Binary adjacency: off-diagonal weights are exactly 0/1.
        off = flow.adjacency[~np.eye(10, dtype=bool)]
        assert set(np.unique(off)) <= {0.0, 1.0}
        # Kernel adjacency: weighted values strictly between 0 and 1 exist.
        speed_off = speed.adjacency[~np.eye(10, dtype=bool)]
        assert np.any((speed_off > 0) & (speed_off < 1))
