"""Metrics, curriculum, early stopping, trainer, significance test."""

import numpy as np
import pytest

from repro.core import D2STGNN, D2STGNNConfig
from repro.training import (
    CurriculumSchedule,
    EarlyStopping,
    Trainer,
    TrainerConfig,
    evaluate_horizons,
    format_horizon_report,
    masked_mae,
    masked_mape,
    masked_rmse,
    paired_t_test,
)


class TestMetrics:
    def test_mae_manual(self):
        pred = np.array([1.0, 2.0, 3.0])
        target = np.array([2.0, 2.0, 5.0])
        assert masked_mae(pred, target, null_value=None) == pytest.approx(1.0)

    def test_rmse_manual(self):
        pred = np.array([0.0, 0.0])
        target = np.array([3.0, 4.0])
        assert masked_rmse(pred, target, null_value=None) == pytest.approx(np.sqrt(12.5))

    def test_mape_is_percentage(self):
        pred = np.array([110.0])
        target = np.array([100.0])
        assert masked_mape(pred, target) == pytest.approx(10.0)

    def test_masking_excludes_zeros(self):
        pred = np.array([1.0, 100.0])
        target = np.array([2.0, 0.0])
        assert masked_mae(pred, target) == pytest.approx(1.0)

    def test_all_masked_gives_nan(self):
        assert np.isnan(masked_mae(np.ones(3), np.zeros(3)))

    def test_rmse_at_least_mae(self, rng):
        pred = rng.normal(size=100)
        target = rng.normal(size=100)
        assert masked_rmse(pred, target, None) >= masked_mae(pred, target, None)

    def test_evaluate_horizons_keys(self, rng):
        pred = rng.normal(size=(10, 12, 4, 1))
        target = rng.uniform(1, 2, size=(10, 12, 4, 1))
        report = evaluate_horizons(pred, target)
        assert set(report) == {"3", "6", "12", "avg"}
        assert set(report["3"]) == {"mae", "rmse", "mape"}

    def test_evaluate_horizons_validates_length(self, rng):
        pred = rng.normal(size=(10, 6, 4, 1))
        with pytest.raises(ValueError):
            evaluate_horizons(pred, pred, horizons=(12,))

    def test_format_report_contains_all_rows(self, rng):
        pred = rng.normal(size=(5, 12, 2, 1))
        target = rng.uniform(1, 2, size=(5, 12, 2, 1))
        text = format_horizon_report("model", evaluate_horizons(pred, target))
        assert "horizon 3" in text and "average" in text and "MAPE" in text


class TestCurriculum:
    def test_disabled_gives_full_horizon(self):
        schedule = CurriculumSchedule(12, step_every=4, enabled=False)
        assert schedule.active_horizon == 12

    def test_starts_at_one(self):
        assert CurriculumSchedule(12, step_every=4).active_horizon == 1

    def test_increments_every_step_every(self):
        schedule = CurriculumSchedule(12, step_every=3)
        horizons = []
        for _ in range(9):
            horizons.append(schedule.active_horizon)
            schedule.step()
        assert horizons == [1, 1, 1, 2, 2, 2, 3, 3, 3]

    def test_saturates_at_horizon(self):
        schedule = CurriculumSchedule(2, step_every=1)
        for _ in range(10):
            schedule.step()
        assert schedule.active_horizon == 2
        assert schedule.saturated

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            CurriculumSchedule(0)
        with pytest.raises(ValueError):
            CurriculumSchedule(12, step_every=0)


class TestEarlyStopping:
    def test_keeps_best_state(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(3.0, {"w": np.array([1.0])})
        stopper.update(2.0, {"w": np.array([2.0])})
        stopper.update(2.5, {"w": np.array([3.0])})
        assert stopper.best_loss == 2.0
        np.testing.assert_array_equal(stopper.best_state["w"], [2.0])

    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(1.0, {})
        assert not stopper.update(1.5, {})
        assert stopper.update(1.4, {})

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, {})
        stopper.update(1.5, {})
        stopper.update(0.9, {})
        assert stopper.bad_epochs == 0

    def test_nan_counts_as_bad(self):
        stopper = EarlyStopping(patience=1)
        assert stopper.update(float("nan"), {})

    def test_validates_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestTrainer:
    @pytest.fixture()
    def model(self, tiny_data):
        config = D2STGNNConfig(
            num_nodes=tiny_data.dataset.num_nodes,
            steps_per_day=tiny_data.steps_per_day,
            hidden_dim=8, embed_dim=4, num_layers=1, num_heads=2, dropout=0.0,
        )
        return D2STGNN(config, tiny_data.adjacency)

    def test_loss_decreases(self, model, tiny_data):
        trainer = Trainer(model, tiny_data, TrainerConfig(epochs=2, batch_size=16))
        history = trainer.train()
        assert history.epochs_run == 2
        assert history.train_loss[-1] < history.train_loss[0]

    def test_evaluate_report_structure(self, model, tiny_data):
        trainer = Trainer(model, tiny_data, TrainerConfig(epochs=1, batch_size=32))
        trainer.train()
        report = trainer.evaluate()
        assert set(report) == {"3", "6", "12", "avg"}
        assert report["avg"]["mae"] > 0

    def test_best_state_restored(self, model, tiny_data):
        trainer = Trainer(model, tiny_data, TrainerConfig(epochs=2, batch_size=32, patience=1))
        trainer.train()
        best_epoch = int(np.argmin(trainer.history.val_mae))
        # After restore, validation equals the best epoch's value.
        assert trainer.validate() == pytest.approx(
            trainer.history.val_mae[best_epoch], rel=1e-5
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)

    def test_history_timing_recorded(self, model, tiny_data):
        trainer = Trainer(model, tiny_data, TrainerConfig(epochs=1, batch_size=64))
        history = trainer.train()
        assert history.mean_epoch_seconds > 0


class TestSignificance:
    def test_identical_models_not_significant(self, rng):
        target = rng.uniform(1, 2, size=(50, 4, 3, 1))
        pred = target + rng.normal(0, 0.1, size=target.shape)
        result = paired_t_test(pred, pred.copy(), target)
        assert not result.significant()

    def test_clearly_better_model_significant(self, rng):
        target = rng.uniform(1, 2, size=(80, 4, 3, 1))
        good = target + rng.normal(0, 0.05, size=target.shape)
        bad = target + rng.normal(0, 0.5, size=target.shape)
        result = paired_t_test(good, bad, target)
        assert result.significant()
        assert result.mean_difference < 0

    def test_worse_model_not_flagged(self, rng):
        target = rng.uniform(1, 2, size=(80, 4, 3, 1))
        good = target + rng.normal(0, 0.05, size=target.shape)
        bad = target + rng.normal(0, 0.5, size=target.shape)
        result = paired_t_test(bad, good, target)
        assert not result.significant()  # significant but in the wrong direction

    def test_shape_mismatch_rejected(self, rng):
        a = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            paired_t_test(a, a, rng.normal(size=(6, 2)))


class TestEarlyStoppingState:
    def test_best_state_is_a_deep_copy(self):
        """A live state_dict mutated after update() must not drift the snapshot."""
        live = {"w": np.array([1.0, 2.0])}
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, live)
        live["w"][:] = 99.0  # training keeps writing into the same arrays
        np.testing.assert_array_equal(stopper.best_state["w"], [1.0, 2.0])

    def test_state_dict_roundtrip(self):
        stopper = EarlyStopping(patience=3, min_delta=0.1)
        stopper.update(2.0, {"w": np.array([1.0])})
        stopper.update(2.5, {"w": np.array([9.0])})  # worse: bad epoch
        state = stopper.state_dict()

        fresh = EarlyStopping(patience=3)
        fresh.load_state_dict(state)
        assert fresh.best_loss == stopper.best_loss
        assert fresh.bad_epochs == 1
        assert fresh.min_delta == 0.1
        np.testing.assert_array_equal(fresh.best_state["w"], [1.0])
        # The restored stopper continues the patience countdown, not restarts.
        assert fresh.update(2.5, {"w": np.array([9.0])}) is False
        assert fresh.update(2.5, {"w": np.array([9.0])}) is True

    def test_state_dict_without_best(self):
        state = EarlyStopping(patience=1).state_dict()
        assert state["best_state"] is None
        fresh = EarlyStopping(patience=1)
        fresh.load_state_dict(state)
        assert fresh.best_state is None
