"""Scenario presets: each must produce its advertised characteristic."""

import numpy as np
import pytest

from repro.data import SCENARIOS, scenario_config, simulate_traffic
from repro.graph import generate_road_network


@pytest.fixture(scope="module")
def network():
    return generate_road_network(8, np.random.default_rng(3))


def run(network, name, steps=288 * 3, seed=11):
    return simulate_traffic(
        network, steps, kind="speed",
        config=scenario_config(name), rng=np.random.default_rng(seed),
    )


class TestRegistry:
    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_config("apocalypse")

    def test_all_scenarios_generate(self, network):
        for name in SCENARIOS:
            series = run(network, name, steps=300)
            assert np.isfinite(series.values).all()

    def test_normal_matches_default(self):
        from repro.data import SimulationConfig

        assert scenario_config("normal") == SimulationConfig()


class TestCharacteristics:
    def test_incident_heavy_has_more_inherent_variance(self, network):
        normal = run(network, "normal")
        heavy = run(network, "incident-heavy")
        assert heavy.inherent.var() > normal.inherent.var()

    def test_diffusion_dominant_shifts_signal_shares(self, network):
        from repro.analysis import true_diffusion_share

        dominant = true_diffusion_share(run(network, "diffusion-dominant"))
        isolated = true_diffusion_share(run(network, "isolated"))
        assert dominant > 2.0 * isolated

    def test_isolated_nearly_uncoupled(self, network):
        series = run(network, "isolated")
        total = series.diffusion + series.inherent
        assert series.diffusion.sum() / total.sum() < 0.25

    def test_flaky_sensors_fail_often(self, network):
        normal = run(network, "normal")
        flaky = run(network, "flaky-sensors")
        assert flaky.failure_mask.mean() > 5.0 * max(normal.failure_mask.mean(), 1e-6)

    def test_quiet_is_more_predictable_day_to_day(self, network):
        def day_to_day_correlation(series):
            steps = series.config.steps_per_day
            day1 = series.values[:steps].mean(axis=1)
            day2 = series.values[steps : 2 * steps].mean(axis=1)
            return np.corrcoef(day1, day2)[0, 1]

        assert day_to_day_correlation(run(network, "quiet")) > day_to_day_correlation(
            run(network, "incident-heavy")
        )
