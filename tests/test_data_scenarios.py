"""Scenario presets: each must produce its advertised characteristic."""

import numpy as np
import pytest

from repro.data import SCENARIOS, scenario_config, simulate_traffic
from repro.graph import generate_road_network


@pytest.fixture(scope="module")
def network():
    return generate_road_network(8, np.random.default_rng(3))


def run(network, name, steps=288 * 3, seed=11):
    return simulate_traffic(
        network, steps, kind="speed",
        config=scenario_config(name), rng=np.random.default_rng(seed),
    )


class TestRegistry:
    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_config("apocalypse")

    def test_all_scenarios_generate(self, network):
        for name in SCENARIOS:
            series = run(network, name, steps=300)
            assert np.isfinite(series.values).all()

    def test_normal_matches_default(self):
        from repro.data import SimulationConfig

        assert scenario_config("normal") == SimulationConfig()


class TestCharacteristics:
    def test_incident_heavy_has_more_inherent_variance(self, network):
        normal = run(network, "normal")
        heavy = run(network, "incident-heavy")
        assert heavy.inherent.var() > normal.inherent.var()

    def test_diffusion_dominant_shifts_signal_shares(self, network):
        from repro.analysis import true_diffusion_share

        dominant = true_diffusion_share(run(network, "diffusion-dominant"))
        isolated = true_diffusion_share(run(network, "isolated"))
        assert dominant > 2.0 * isolated

    def test_isolated_nearly_uncoupled(self, network):
        series = run(network, "isolated")
        total = series.diffusion + series.inherent
        assert series.diffusion.sum() / total.sum() < 0.25

    def test_flaky_sensors_fail_often(self, network):
        normal = run(network, "normal")
        flaky = run(network, "flaky-sensors")
        assert flaky.failure_mask.mean() > 5.0 * max(normal.failure_mask.mean(), 1e-6)

    def test_quiet_is_more_predictable_day_to_day(self, network):
        def day_to_day_correlation(series):
            steps = series.config.steps_per_day
            day1 = series.values[:steps].mean(axis=1)
            day2 = series.values[steps : 2 * steps].mean(axis=1)
            return np.corrcoef(day1, day2)[0, 1]

        assert day_to_day_correlation(run(network, "quiet")) > day_to_day_correlation(
            run(network, "incident-heavy")
        )


class TestSensorDrift:
    def test_preset_registered(self):
        assert "sensor-drift" in SCENARIOS
        config = scenario_config("sensor-drift")
        assert config.drift_rate > 0 and config.drift_fraction > 0
        assert config.failure_rate == 0.0  # drift, not darkness

    def test_drift_bias_is_a_ramp_on_a_subset(self, network):
        series = run(network, "sensor-drift")
        bias = series.drift_bias
        assert bias is not None and bias.shape == series.values.shape
        drifting = np.nonzero(np.abs(bias[-1]) > 0)[0]
        clean = np.setdiff1d(np.arange(bias.shape[1]), drifting)
        assert 0 < len(drifting) < bias.shape[1]
        assert np.all(bias[:, clean] == 0)
        # Each drifting sensor: zero before its onset, then a monotone
        # one-signed ramp — additive miscalibration, not a zero-coded outage.
        config = scenario_config("sensor-drift")
        earliest = int(config.drift_onset * bias.shape[0])
        assert np.all(bias[:earliest] == 0)
        for sensor in drifting:
            column = bias[:, sensor]
            magnitude = np.abs(column)
            assert np.all(np.diff(magnitude) >= 0)
            signs = np.sign(column[magnitude > 0])
            assert len(set(signs.tolist())) == 1

    def test_drifted_readings_stay_plausible(self, network):
        series = run(network, "sensor-drift")
        assert not series.failure_mask.any()
        assert np.isfinite(series.values).all()
        assert series.values.min() >= 0.0
        assert series.values.max() <= series.config.speed_limit

    def test_disabled_drift_is_bit_identical_and_unbiased(self, network):
        from repro.data import SimulationConfig

        base = simulate_traffic(
            network, 300, kind="speed", config=SimulationConfig(),
            rng=np.random.default_rng(21),
        )
        # drift_rate=0 must not consume any rng draws: the stream, and
        # therefore every downstream dataset, stays bit-identical to pre-drift
        # builds of the simulator.
        assert base.drift_bias is None
        from dataclasses import replace

        off = simulate_traffic(
            network, 300, kind="speed",
            config=replace(SimulationConfig(), drift_fraction=0.5),  # rate=0
            rng=np.random.default_rng(21),
        )
        assert off.drift_bias is None
        np.testing.assert_array_equal(base.values, off.values)

    def test_drift_data_serves_through_replay_split(self, network):
        """The drift preset drives the online serving path end to end."""
        from repro.data import build_forecasting_data
        from repro.data.datasets import PRESETS, TrafficDataset
        from repro.graph import gaussian_kernel_adjacency, shortest_path_distances
        from repro.models import build_model
        from repro.serve import (
            ModelRegistry,
            ServeConfig,
            ServingEngine,
            SlidingWindowStore,
            make_servable,
            replay_split,
        )
        from repro.utils.seed import set_seed

        series = run(network, "sensor-drift", steps=420)
        adjacency = gaussian_kernel_adjacency(
            shortest_path_distances(network.distances)
        )
        data = build_forecasting_data(
            TrafficDataset(
                spec=PRESETS["metr-la-sim"].scaled(num_nodes=8, num_steps=420),
                series=series, network=network, adjacency=adjacency,
            )
        )
        set_seed(0)
        model, _ = build_model("STGCN", data, hidden=8, layers=1)
        bundle = make_servable("STGCN", model, data, hidden=8, layers=1)
        registry = ModelRegistry()
        registry.publish(bundle)
        engine = ServingEngine(
            registry, SlidingWindowStore.for_bundle(bundle),
            ServeConfig(max_wait_s=0.001),
        )
        summary = replay_split(engine, data, steps=6, requests_per_step=2)
        assert summary["requests"] == 12
        # Drifted-but-plausible readings serve on the model tier: no
        # anomaly/outage degradation fires on additive bias alone.
        assert summary["sources"]["model"] >= 6
        assert summary["fallback_reasons"] == {}
