"""Neural baselines: construction, forward contract, and trainability."""

import numpy as np
import pytest

from repro.baselines import (
    ASTGCN,
    DCRNN,
    DGCRN,
    FCLSTM,
    GMAN,
    MTGNN,
    STGCN,
    STSGCN,
    GraphWaveNet,
    build_localized_st_graph,
)
from repro.baselines.common import CausalConv, GraphConv, cheb_polynomials
from repro.graph import symmetric_normalized_laplacian
from repro.optim import Adam
from repro.tensor import Tensor, functional as F

N, T_H, T_F = 6, 12, 12


@pytest.fixture(scope="module")
def adjacency():
    rng = np.random.default_rng(2)
    adj = (rng.uniform(size=(N, N)) > 0.5).astype(np.float32)
    np.fill_diagonal(adj, 1.0)
    return adj


def make_models(adjacency):
    return {
        "FCLSTM": FCLSTM(hidden_dim=8),
        "DCRNN": DCRNN(adjacency, hidden_dim=8),
        "STGCN": STGCN(adjacency, hidden_dim=8),
        "GWNet": GraphWaveNet(adjacency, hidden_dim=8),
        "ASTGCN": ASTGCN(adjacency, hidden_dim=8),
        "STSGCN": STSGCN(adjacency, hidden_dim=8),
        "GMAN": GMAN(N, 288, hidden_dim=8, num_heads=2),
        "MTGNN": MTGNN(N, hidden_dim=8),
        "DGCRN": DGCRN(adjacency, hidden_dim=8),
    }


def batch(rng, b=2):
    x = rng.normal(size=(b, T_H, N, 1)).astype(np.float32)
    tod = rng.integers(0, 288, size=(b, T_H))
    dow = rng.integers(0, 7, size=(b, T_H))
    return x, tod, dow


class TestForwardContract:
    @pytest.mark.parametrize("name", sorted(make_models.__call__(np.eye(N, dtype=np.float32))))
    def test_output_shape(self, adjacency, rng, name):
        model = make_models(adjacency)[name]
        x, tod, dow = batch(rng)
        assert model(x, tod, dow).shape == (2, T_F, N, 1)

    @pytest.mark.parametrize("name", ["DCRNN", "GWNet", "GMAN", "MTGNN", "DGCRN"])
    def test_single_gradient_step_reduces_loss(self, adjacency, rng, name):
        model = make_models(adjacency)[name]
        x, tod, dow = batch(rng, b=4)
        target = Tensor(np.zeros((4, T_F, N, 1), np.float32))
        opt = Adam(model.parameters(), lr=0.01)
        first = None
        for _ in range(5):
            opt.zero_grad()
            loss = F.mse_loss(model(x, tod, dow), target)
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first


class TestDGCRNVariants:
    def test_static_variant_has_fewer_parameters(self, adjacency):
        dynamic = DGCRN(adjacency, hidden_dim=8, dynamic=True)
        static = DGCRN(adjacency, hidden_dim=8, dynamic=False)
        assert static.num_parameters() < dynamic.num_parameters()

    def test_static_variant_forward(self, adjacency, rng):
        model = DGCRN(adjacency, hidden_dim=8, dynamic=False)
        x, tod, dow = batch(rng)
        assert model(x, tod, dow).shape == (2, T_F, N, 1)


class TestGWNetVariants:
    def test_without_adaptive_adjacency(self, adjacency, rng):
        model = GraphWaveNet(adjacency, hidden_dim=8, adaptive=False)
        x, tod, dow = batch(rng)
        assert model(x, tod, dow).shape == (2, T_F, N, 1)
        assert len(model._supports()) == 2


class TestCommonBlocks:
    def test_graph_conv_identity_support(self, rng):
        conv = GraphConv(4, 4, num_supports=1, order=1)
        x = Tensor(rng.normal(size=(2, N, 4)).astype(np.float32))
        out = conv(x, [np.eye(N, dtype=np.float32)])
        assert out.shape == (2, N, 4)

    def test_graph_conv_validates_support_count(self, rng):
        conv = GraphConv(4, 4, num_supports=2)
        x = Tensor(rng.normal(size=(2, N, 4)).astype(np.float32))
        with pytest.raises(ValueError):
            conv(x, [np.eye(N, dtype=np.float32)])

    def test_causal_conv_is_causal(self, rng):
        conv = CausalConv(3, 3, dilation=2)
        x = rng.normal(size=(1, 8, N, 3)).astype(np.float32)
        out_a = conv(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[:, 5:] += 10.0  # future change
        out_b = conv(Tensor(perturbed)).numpy()
        np.testing.assert_allclose(out_a[:, :5], out_b[:, :5], atol=1e-5)

    def test_causal_conv_dilation_reach(self, rng):
        conv = CausalConv(2, 2, dilation=3)
        x = rng.normal(size=(1, 8, N, 2)).astype(np.float32)
        out_a = conv(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[:, 2] += 5.0
        out_b = conv(Tensor(perturbed)).numpy()
        changed = np.abs(out_a - out_b).sum(axis=(0, 2, 3)) > 1e-5
        np.testing.assert_array_equal(np.nonzero(changed)[0], [2, 5])

    def test_cheb_polynomials_structure(self, adjacency):
        lap = symmetric_normalized_laplacian(np.maximum(adjacency, adjacency.T))
        polys = cheb_polynomials(lap, 3)
        assert len(polys) == 3
        np.testing.assert_array_equal(polys[0], np.eye(N, dtype=np.float32))
        scaled = lap - np.eye(N, dtype=np.float32)
        np.testing.assert_allclose(polys[2], 2 * scaled @ scaled - np.eye(N), atol=1e-4)

    def test_localized_st_graph_blocks(self, adjacency):
        local = build_localized_st_graph(adjacency, window=3)
        assert local.shape == (3 * N, 3 * N)
        np.testing.assert_array_equal(local[:N, :N], adjacency)
        np.testing.assert_array_equal(local[:N, N : 2 * N], np.eye(N, dtype=np.float32))
        np.testing.assert_array_equal(local[:N, 2 * N :], np.zeros((N, N)))
