"""The per-step dynamic graph extension (exact variant of Sec. 5.3)."""

import numpy as np
import pytest

from repro.core import D2STGNN, D2STGNNConfig, DynamicGraphLearner, SpatialTemporalEmbeddings
from repro.tensor import Tensor

B, T, N, D = 2, 6, 5, 8


@pytest.fixture()
def setup(rng):
    embeddings = SpatialTemporalEmbeddings(num_nodes=N, steps_per_day=288, dim=D)
    tod = rng.integers(0, 288, size=(B, T))
    dow = rng.integers(0, 7, size=(B, T))
    t_day, t_week = embeddings.time_features(tod, dow)
    transition = rng.uniform(0, 1, size=(N, N)).astype(np.float32)
    transition = transition / transition.sum(axis=1, keepdims=True)
    x = Tensor(rng.normal(size=(B, T, N, D)).astype(np.float32), requires_grad=True)
    return embeddings, t_day, t_week, transition, x


class TestPerStepLearner:
    def test_shapes(self, setup):
        embeddings, t_day, t_week, transition, x = setup
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D, per_step=True)
        p_f, p_b = learner(
            x, t_day, t_week, embeddings.node_source, embeddings.node_target,
            transition, transition.T.copy(),
        )
        assert p_f.shape == (B, T, N, N)
        assert p_b.shape == (B, T, N, N)

    def test_graphs_vary_across_steps(self, setup):
        embeddings, t_day, t_week, transition, x = setup
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D, per_step=True)
        p_f, _ = learner(
            x, t_day, t_week, embeddings.node_source, embeddings.node_target,
            transition, transition.T.copy(),
        )
        values = p_f.numpy()
        assert not np.allclose(values[:, 0], values[:, T - 1])

    def test_static_zero_edges_stay_zero(self, setup):
        embeddings, t_day, t_week, transition, x = setup
        transition = transition.copy()
        transition[0, :] = 0.0
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D, per_step=True)
        p_f, _ = learner(
            x, t_day, t_week, embeddings.node_source, embeddings.node_target,
            transition, transition.T.copy(),
        )
        np.testing.assert_array_equal(p_f.numpy()[:, :, 0, :], 0.0)

    def test_gradients_flow(self, setup):
        embeddings, t_day, t_week, transition, x = setup
        learner = DynamicGraphLearner(history=T, hidden_dim=D, embed_dim=D, per_step=True)
        p_f, _ = learner(
            x, t_day, t_week, embeddings.node_source, embeddings.node_target,
            transition, transition.T.copy(),
        )
        p_f.sum().backward()
        assert x.grad is not None


class TestPerStepModel:
    @pytest.fixture()
    def adjacency(self, rng):
        adj = rng.uniform(0, 1, size=(N, N)).astype(np.float32)
        np.fill_diagonal(adj, 1.0)
        return adj

    def test_forward_backward(self, adjacency, rng):
        config = D2STGNNConfig(
            num_nodes=N, steps_per_day=288, hidden_dim=8, embed_dim=4,
            num_layers=1, num_heads=2, history=T, horizon=3, dropout=0.0,
            dynamic_graph_per_step=True,
        )
        model = D2STGNN(config, adjacency)
        x = rng.normal(size=(B, T, N, 1)).astype(np.float32)
        tod = rng.integers(0, 288, size=(B, T))
        dow = rng.integers(0, 7, size=(B, T))
        out = model(x, tod, dow)
        assert out.shape == (B, 3, N, 1)
        out.sum().backward()
        assert model.embeddings.node_source.grad is not None

    def test_differs_from_per_window(self, adjacency, rng):
        from repro.utils.seed import set_seed

        x = rng.normal(size=(B, T, N, 1)).astype(np.float32)
        tod = rng.integers(0, 288, size=(B, T))
        dow = rng.integers(0, 7, size=(B, T))
        outputs = []
        for per_step in (False, True):
            set_seed(9)
            config = D2STGNNConfig(
                num_nodes=N, steps_per_day=288, hidden_dim=8, embed_dim=4,
                num_layers=1, num_heads=2, history=T, horizon=3, dropout=0.0,
                dynamic_graph_per_step=per_step,
            )
            model = D2STGNN(config, adjacency)
            model.eval()
            outputs.append(model(x, tod, dow).numpy())
        assert not np.allclose(outputs[0], outputs[1])
