"""Golden fixture for the repo linter: one deliberate violation per rule.

This file is parsed (never imported) by ``tests/test_check_linter.py``,
which asserts the linter reports *exactly* the violations marked below —
no more, no fewer.  Line numbers matter: keep the layout stable or update
the expected findings in the test.
"""

import time

import numpy as np

from repro import nn
from repro.nn import Module, init
from repro.tensor import Tensor


def bad_rng():
    np.random.seed(0)                     # line 19: R001
    values = np.random.rand(3)            # line 20: R001
    rng = np.random.default_rng()         # line 21: R001 (unseeded)
    seeded = np.random.default_rng(7)     # ok: explicit seed
    quiet = np.random.randn(2)  # lint: disable=R001
    return values, rng, seeded, quiet


class MissingSuper(Module):
    def __init__(self):                   # line 28: R002
        self.weight = nn.Parameter(init.zeros(4))


class RawParameters(Module):
    def __init__(self):
        super().__init__()
        self.weight = init.xavier_uniform(3, 3)              # line 35: R003
        self.bias = Tensor(np.zeros(3), requires_grad=True)  # line 36: R003
        self.gain = nn.Parameter(init.ones(3))               # ok: registered


def bad_data_writes(t):
    t.data = np.zeros(3)                  # line 41: R004
    t.data += 1.0                         # line 42: R004
    t.data[0] = 5.0                       # line 43: R004 (slice write)
    t.copy_(np.zeros(3))                  # ok: version-counted
    t.data = np.ones(3)  # lint: disable
    return t


def bad_clocks():
    start = time.time()                   # line 50: R005
    tick = time.perf_counter()            # line 51: R005
    return start, tick


def bad_persistence(path, arrays):
    np.savez(path, **arrays)              # line 56: R006
    np.savez_compressed(path, **arrays)   # line 57: R006
    np.savez(path, **arrays)  # lint: disable=R006
