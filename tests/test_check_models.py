"""Static model analysis: every registered model passes clean, and the
analyzer provably catches the defect classes it claims to."""

import numpy as np
import pytest

from repro import nn
from repro.check import (
    ANALYZER_SCHEMA,
    analyze_model,
    analyze_models,
    format_model_report,
    model_report_dict,
)
from repro.models import NEURAL, STATISTICAL


def probe_batch(rng, batch=2, steps=12, nodes=5):
    x = rng.normal(size=(batch, steps, nodes, 1)).astype(np.float32)
    tod = rng.integers(0, 288, size=(batch, steps))
    dow = rng.integers(0, 7, size=(batch, steps))
    return x, tod, dow


class TestModelZooIsClean:
    def test_every_neural_model_passes_on_one_preset(self):
        checks = analyze_models(datasets=["metr-la-sim"])
        assert [c.model for c in checks] == list(NEURAL)
        failed = {c.model: c.findings() for c in checks if not c.ok}
        assert failed == {}, format_model_report(checks)

    def test_report_schema(self):
        checks = analyze_models(models=["FC-LSTM"], datasets=["pems08-sim"])
        report = model_report_dict(checks)
        assert report["schema"] == ANALYZER_SCHEMA
        assert report["findings_total"] == 0
        [row] = report["checks"]
        assert row["ok"] is True
        assert row["num_parameters"] > 0
        assert row["output_shape"] == row["expected_shape"]

    def test_statistical_models_rejected(self):
        for name in STATISTICAL:
            with pytest.raises(ValueError, match="statistical"):
                analyze_models(models=[name], datasets=["metr-la-sim"])

    def test_case_insensitive_model_selection(self):
        checks = analyze_models(models=["stgcn"], datasets=["metr-la-sim"])
        assert checks[0].model == "STGCN"


class _DeadParamModel(nn.Module):
    """Registers one parameter the forward never touches."""

    def __init__(self):
        super().__init__()
        self.used = nn.Linear(1, 1)
        self.unused = nn.Parameter(nn.init.zeros(3))

    def forward(self, x, tod, dow):
        from repro.tensor import Tensor

        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.used(x)


class _WrongShapeModel(nn.Module):
    def __init__(self):
        super().__init__()
        self.head = nn.Linear(1, 1)

    def forward(self, x, tod, dow):
        from repro.tensor import Tensor

        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.head(x).sum(axis=1, keepdims=True)  # horizon collapsed


class _Float64Model(nn.Module):
    def __init__(self):
        super().__init__()
        self.head = nn.Linear(1, 1)

    def forward(self, x, tod, dow):
        from repro.tensor import Tensor

        if not isinstance(x, Tensor):
            x = Tensor(x)
        # Simulate a drift bug: the constructor normally downcasts, so force
        # float64 payload directly — the op result then computes in float64.
        constant = Tensor(np.ones(1))
        constant.data = np.full(1, 2.0, dtype=np.float64)
        return self.head(x * constant)


class TestAnalyzerCatchesDefects:
    def test_dead_parameter_is_reported_by_name(self, rng):
        x, tod, dow = probe_batch(rng)
        check = analyze_model(
            _DeadParamModel(), name="dead", dataset="unit",
            x=x, tod=tod, dow=dow, horizon=x.shape[1],
        )
        assert not check.ok
        assert check.dead_parameters == ["unused"]
        assert any("dead parameter 'unused'" in f for f in check.findings())

    def test_shape_contract_break_is_reported(self, rng):
        x, tod, dow = probe_batch(rng)
        check = analyze_model(
            _WrongShapeModel(), name="shape", dataset="unit",
            x=x, tod=tod, dow=dow, horizon=x.shape[1],
        )
        assert check.output_shape != check.expected_shape
        assert any("contract" in f for f in check.findings())

    def test_float64_drift_names_op_and_scope(self, rng):
        x, tod, dow = probe_batch(rng)
        check = analyze_model(
            _Float64Model(), name="drift", dataset="unit",
            x=x, tod=tod, dow=dow, horizon=x.shape[1],
        )
        assert check.float64_ops, check.to_dict()
        assert any("op 'mul'" in entry for entry in check.float64_ops)

    def test_clean_model_restores_engine_hooks(self, rng):
        from repro.nn.module import Module
        from repro.tensor.tensor import Tensor

        x, tod, dow = probe_batch(rng)
        analyze_model(
            _DeadParamModel(), name="dead", dataset="unit",
            x=x, tod=tod, dow=dow, horizon=x.shape[1],
        )
        assert isinstance(Tensor.__dict__["_make"], staticmethod)
        assert "__call__" in vars(Module)

    def test_human_report_mentions_findings(self, rng):
        x, tod, dow = probe_batch(rng)
        check = analyze_model(
            _DeadParamModel(), name="dead", dataset="unit",
            x=x, tod=tod, dow=dow, horizon=x.shape[1],
        )
        table = format_model_report([check])
        assert "1 finding(s)" in table
        assert "unused" in table
