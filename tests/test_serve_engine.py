"""The assembled serving stack: engine flows, degradation and telemetry."""

import numpy as np
import pytest

from repro.check.sanitizers import AnomalyError
from repro.models import build_model
from repro.obs import TELEMETRY_SCHEMA, MemorySink
from repro.serve import (
    DegradationPolicy,
    ModelRegistry,
    ServableBundle,
    ServeConfig,
    ServingEngine,
    SlidingWindowStore,
    make_servable,
    replay_split,
)
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def bundle(tiny_data):
    set_seed(0)
    model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
    return make_servable("STGCN", model, tiny_data, hidden=8, layers=1)


def _engine(bundle, config=None, sink=None):
    registry = ModelRegistry()
    registry.publish(bundle)
    store = SlidingWindowStore.for_bundle(bundle)
    return ServingEngine(
        registry, store, config or ServeConfig(max_wait_s=0.001), sink=sink
    )


def _warm(engine, tiny_data, steps=None):
    series = tiny_data.dataset.series
    steps = steps if steps is not None else engine.store.history
    engine.store.warm_from(
        series.values[:steps], series.time_of_day[:steps], series.day_of_week[:steps]
    )


class TestForecastFlow:
    def test_model_then_cache(self, bundle, tiny_data):
        with _engine(bundle) as engine:
            _warm(engine, tiny_data)
            first = engine.forecast()
            second = engine.forecast()
        assert first.source == "model" and first.version == "v1"
        assert second.source == "cache"
        np.testing.assert_array_equal(first.values, second.values)
        assert first.values.shape == (
            bundle.spec.horizon, bundle.spec.num_nodes
        )

    def test_new_observation_invalidates_cache(self, bundle, tiny_data):
        series = tiny_data.dataset.series
        with _engine(bundle) as engine:
            _warm(engine, tiny_data)
            engine.forecast()
            row = engine.store.history
            engine.observe(
                series.values[row], int(series.time_of_day[row]), int(series.day_of_week[row])
            )
            assert len(engine.cache) == 0
            result = engine.forecast()
        assert result.source == "model"

    def test_forecast_without_observations_raises(self, bundle):
        with _engine(bundle) as engine:
            with pytest.raises(RuntimeError, match="observe"):
                engine.forecast()

    def test_invalid_horizon_rejected(self, bundle, tiny_data):
        with _engine(bundle) as engine:
            _warm(engine, tiny_data)
            with pytest.raises(ValueError):
                engine.forecast(horizon=bundle.spec.horizon + 1)

    def test_shorter_horizon_served_and_cached_separately(self, bundle, tiny_data):
        with _engine(bundle) as engine:
            _warm(engine, tiny_data)
            short = engine.forecast(horizon=3)
            full = engine.forecast()
        assert short.values.shape[0] == 3
        assert short.source == "model" and full.source == "model"
        np.testing.assert_array_equal(short.values, full.values[:3])


class TestDegradation:
    def test_cold_start_falls_back(self, bundle, tiny_data):
        with _engine(bundle) as engine:
            _warm(engine, tiny_data, steps=2)  # window not full yet
            result = engine.forecast()
        assert result.source == "fallback" and result.reason == "cold_start"
        assert np.isfinite(result.values).all()

    def test_outage_falls_back(self, bundle, tiny_data):
        with _engine(bundle) as engine:
            dark = np.zeros(bundle.spec.num_nodes, np.float32)
            for step in range(bundle.spec.history):
                engine.observe(dark, step, 0)
            result = engine.forecast()
        assert result.source == "fallback" and result.reason == "outage"

    def test_nan_weights_fall_back_as_anomaly(self, bundle, tiny_data):
        poisoned_state = {k: v.copy() for k, v in bundle.state.items()}
        first = next(iter(poisoned_state))
        poisoned_state[first][:] = np.nan
        poisoned = ServableBundle(
            spec=bundle.spec, state=poisoned_state, adjacency=bundle.adjacency,
            fallback_profile=bundle.fallback_profile, extra={},
        )
        with _engine(poisoned) as engine:
            _warm(engine, tiny_data)
            result = engine.forecast()
        assert result.source == "fallback" and result.reason == "anomaly"
        assert np.isfinite(result.values).all()

    def test_broken_servable_falls_back_as_error(self, bundle, tiny_data):
        broken = ServableBundle(
            spec=bundle.spec,
            state={k: v for k, v in list(bundle.state.items())[:-1]},  # instantiate fails
            adjacency=bundle.adjacency,
            fallback_profile=bundle.fallback_profile,
            extra={},
        )
        with _engine(broken) as engine:
            _warm(engine, tiny_data)
            result = engine.forecast()
        assert result.source == "fallback" and result.reason == "error"

    def test_strict_policy_reraises(self, bundle, tiny_data):
        poisoned_state = {k: np.full_like(v, np.nan) for k, v in bundle.state.items()}
        poisoned = ServableBundle(
            spec=bundle.spec, state=poisoned_state, adjacency=bundle.adjacency,
            fallback_profile=bundle.fallback_profile, extra={},
        )
        config = ServeConfig(
            max_wait_s=0.001,
            policy=DegradationPolicy(fallback_on_nan=False, fallback_on_error=False),
        )
        with _engine(poisoned, config) as engine:
            _warm(engine, tiny_data)
            with pytest.raises(AnomalyError):
                engine.forecast()


class TestHotSwap:
    def test_activate_switches_serving_version(self, bundle, tiny_data):
        set_seed(7)
        model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
        second = make_servable("STGCN", model, tiny_data, hidden=8, layers=1)
        registry = ModelRegistry()
        registry.publish(bundle)
        store = SlidingWindowStore.for_bundle(bundle)
        with ServingEngine(registry, store, ServeConfig(max_wait_s=0.001)) as engine:
            _warm(engine, tiny_data)
            before = engine.forecast()
            registry.publish(second)  # activates v2
            after = engine.forecast()
            registry.activate("v1")
            back = engine.forecast()
        assert before.version == "v1" and before.source == "model"
        assert after.version == "v2" and after.source == "model"
        assert not np.array_equal(before.values, after.values)
        # v1's cached prediction is still keyed under v1 and is served again.
        assert back.version == "v1" and back.source == "cache"
        np.testing.assert_array_equal(back.values, before.values)


class TestReplayAndTelemetry:
    def test_replay_exercises_model_and_cache(self, bundle, tiny_data):
        sink = MemorySink()
        with _engine(bundle, sink=sink) as engine:
            summary = replay_split(
                engine, tiny_data, steps=6, requests_per_step=3, concurrency=3
            )
            engine.emit_telemetry()
        assert summary["requests"] == 18
        assert summary["sources"]["model"] == 6
        assert summary["sources"]["cache"] == 12
        assert summary["sources"]["fallback"] == 0
        [record] = sink.records
        assert record["schema"] == TELEMETRY_SCHEMA
        assert record["event"] == "serving"
        assert record["requests"] == 18
        assert record["cache_hits"] == 12
        assert record["served_by_model"] == 6
        assert record["active_version"] == "v1"
        assert record["latency_ms_p50"] <= record["latency_ms_p99"]

    def test_fallbacks_counted_in_telemetry(self, bundle, tiny_data):
        with _engine(bundle) as engine:
            _warm(engine, tiny_data, steps=1)
            engine.forecast()  # cold_start fallback
            report = engine.telemetry_report()
        assert report["fallbacks"] == 1
        assert report["fallback_reasons"] == {"cold_start": 1}
        assert report["served_by_model"] == 0
