"""The full D2STGNN model and all its ablation variants."""

import numpy as np
import pytest

from repro.core import D2STGNN, D2STGNNConfig
from repro.tensor import Tensor, functional as F


@pytest.fixture(scope="module")
def adjacency():
    rng = np.random.default_rng(11)
    adj = rng.uniform(0, 1, size=(6, 6)).astype(np.float32)
    adj = (adj > 0.5) * adj
    np.fill_diagonal(adj, 1.0)
    return adj


def make_model(adjacency, **overrides):
    defaults = dict(
        num_nodes=6, steps_per_day=288, hidden_dim=8, embed_dim=4,
        num_layers=2, num_heads=2, history=6, horizon=4, dropout=0.0,
    )
    defaults.update(overrides)
    return D2STGNN(D2STGNNConfig(**defaults), adjacency)


def batch(rng, b=2, t=6, n=6, c=1):
    x = rng.normal(size=(b, t, n, c)).astype(np.float32)
    tod = rng.integers(0, 288, size=(b, t))
    dow = rng.integers(0, 7, size=(b, t))
    return x, tod, dow


class TestConfigValidation:
    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            D2STGNNConfig(num_nodes=1)

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            D2STGNNConfig(num_nodes=4, hidden_dim=10, num_heads=4)

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            D2STGNNConfig(num_nodes=4, num_layers=0)

    def test_adjacency_shape_checked(self, adjacency):
        with pytest.raises(ValueError):
            D2STGNN(D2STGNNConfig(num_nodes=9, hidden_dim=8, embed_dim=4, num_heads=2), adjacency)


class TestForward:
    def test_output_shape(self, adjacency, rng):
        model = make_model(adjacency)
        x, tod, dow = batch(rng)
        assert model(x, tod, dow).shape == (2, 4, 6, 1)

    def test_wrong_node_count_rejected(self, adjacency, rng):
        model = make_model(adjacency)
        x, tod, dow = batch(rng, n=5)
        with pytest.raises(ValueError):
            model(x, tod, dow)

    def test_wrong_rank_rejected(self, adjacency, rng):
        model = make_model(adjacency)
        with pytest.raises(ValueError):
            model(np.zeros((2, 6, 6), np.float32), *batch(rng)[1:])

    def test_accepts_tensor_input(self, adjacency, rng):
        model = make_model(adjacency)
        x, tod, dow = batch(rng)
        out = model(Tensor(x), tod, dow)
        assert out.shape == (2, 4, 6, 1)

    def test_deterministic_in_eval_mode(self, adjacency, rng):
        model = make_model(adjacency, dropout=0.2)
        model.eval()
        x, tod, dow = batch(rng)
        a = model(x, tod, dow).numpy()
        b = model(x, tod, dow).numpy()
        np.testing.assert_array_equal(a, b)

    def test_dropout_randomises_training_mode(self, adjacency, rng):
        model = make_model(adjacency, dropout=0.3)
        model.train()
        x, tod, dow = batch(rng)
        a = model(x, tod, dow).numpy()
        b = model(x, tod, dow).numpy()
        assert not np.array_equal(a, b)

    def test_all_parameters_receive_gradients(self, adjacency, rng):
        model = make_model(adjacency)
        x, tod, dow = batch(rng)
        out = model(x, tod, dow)
        F.mae_loss(out, Tensor(np.zeros_like(out.numpy()))).backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        # Every registered parameter must train: the final layer's second
        # block no longer builds the backcast nobody consumes.
        assert missing == [], missing

    def test_final_layer_second_block_has_no_backcast(self, adjacency):
        model = make_model(adjacency)
        last = model.layers[len(model.layers) - 1]
        assert last.inherent.backcast is None
        assert last.diffusion.backcast is not None


VARIANTS = {
    "switch": dict(diffusion_first=False),
    "wo_gate": dict(use_gate=False),
    "wo_res": dict(use_residual=False),
    "wo_decouple": dict(use_decouple=False),
    "wo_dg": dict(use_dynamic_graph=False),
    "wo_apt": dict(use_adaptive=False),
    "wo_gru": dict(use_gru=False),
    "wo_msa": dict(use_msa=False),
    "wo_ar": dict(autoregressive=False),
    "static_coupled": dict(use_dynamic_graph=False, use_decouple=False),
}


class TestVariants:
    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_variant_forward_and_backward(self, adjacency, rng, name):
        model = make_model(adjacency, **VARIANTS[name])
        x, tod, dow = batch(rng)
        out = model(x, tod, dow)
        assert out.shape == (2, 4, 6, 1)
        out.sum().backward()
        trained = sum(1 for p in model.parameters() if p.grad is not None)
        assert trained > 0

    def test_wo_apt_has_fewer_supports(self, adjacency):
        full = make_model(adjacency)
        ablated = make_model(adjacency, use_adaptive=False)
        assert ablated.num_parameters() < full.num_parameters()

    def test_wo_dg_drops_graph_learner(self, adjacency):
        model = make_model(adjacency, use_dynamic_graph=False)
        assert not hasattr(model, "graph_learner")

    def test_wo_decouple_has_no_gate_parameters(self, adjacency):
        model = make_model(adjacency, use_decouple=False)
        assert not any("gate" in name for name, _ in model.named_parameters())

    def test_variants_differ_in_outputs(self, adjacency, rng):
        x, tod, dow = batch(rng)
        full = make_model(adjacency)
        full.eval()
        switched = make_model(adjacency, diffusion_first=False)
        switched.eval()
        assert not np.allclose(full(x, tod, dow).numpy(), switched(x, tod, dow).numpy())


class TestSupports:
    def test_full_model_uses_three_supports(self, adjacency, rng):
        model = make_model(adjacency)
        x, tod, dow = batch(rng)
        t_day, t_week = model.embeddings.time_features(tod, dow)
        latent = model.input_projection(Tensor(x))
        supports = model._supports(latent, t_day, t_week)
        assert len(supports) == 3
        # Dynamic supports are per-sample tensors.
        assert supports[0].shape == (2, 6, 6)
        # Adaptive support is a shared (N, N) tensor.
        assert supports[2].shape == (6, 6)

    def test_static_model_uses_numpy_supports(self, adjacency, rng):
        model = make_model(adjacency, use_dynamic_graph=False)
        x, tod, dow = batch(rng)
        t_day, t_week = model.embeddings.time_features(tod, dow)
        latent = model.input_projection(Tensor(x))
        supports = model._supports(latent, t_day, t_week)
        assert isinstance(supports[0], np.ndarray)
        assert isinstance(supports[1], np.ndarray)
