"""Road networks, adjacency construction and transition matrices."""

import numpy as np
import pytest

from repro.graph import (
    backward_transition,
    binary_adjacency,
    forward_transition,
    gaussian_kernel_adjacency,
    generate_road_network,
    localized_transition,
    localized_transition_stack,
    mask_self_loops,
    matrix_powers,
    shortest_path_distances,
    symmetric_normalized_laplacian,
    transition_pair,
    validate_adjacency,
)


class TestRoadNetwork:
    def test_minimum_size(self, rng):
        with pytest.raises(ValueError):
            generate_road_network(1, rng)

    def test_shapes(self, rng):
        net = generate_road_network(15, rng)
        assert net.positions.shape == (15, 2)
        assert net.distances.shape == (15, 15)

    def test_zero_diagonal(self, rng):
        net = generate_road_network(10, rng)
        np.testing.assert_array_equal(np.diag(net.distances), np.zeros(10))

    def test_connected_via_shortest_paths(self, rng):
        net = generate_road_network(20, rng)
        # Treat edges as undirected for reachability: every node reachable.
        sym = np.minimum(net.distances, net.distances.T)
        paths = shortest_path_distances(sym)
        assert np.isfinite(paths).all()

    def test_deterministic_given_rng_seed(self):
        a = generate_road_network(10, np.random.default_rng(5))
        b = generate_road_network(10, np.random.default_rng(5))
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.distances, b.distances)

    def test_edge_count_positive(self, rng):
        net = generate_road_network(12, rng)
        assert net.num_edges > 0

    def test_road_distance_at_least_euclidean(self, rng):
        net = generate_road_network(12, rng, distance_noise=0.2)
        diffs = net.positions[:, None] - net.positions[None, :]
        euclid = np.sqrt((diffs**2).sum(-1))
        finite = np.isfinite(net.distances) & (euclid > 0)
        assert np.all(net.distances[finite] >= euclid[finite] - 1e-9)


class TestAdjacency:
    def test_kernel_in_unit_interval(self, rng):
        net = generate_road_network(12, rng)
        adj = gaussian_kernel_adjacency(shortest_path_distances(net.distances))
        assert np.all((adj >= 0) & (adj <= 1))

    def test_threshold_zeroes_small_weights(self, rng):
        net = generate_road_network(12, rng)
        adj = gaussian_kernel_adjacency(shortest_path_distances(net.distances), threshold=0.5)
        nonzero = adj[adj > 0]
        assert np.all(nonzero >= 0.5)

    def test_self_loops_controlled(self, rng):
        net = generate_road_network(8, rng)
        paths = shortest_path_distances(net.distances)
        with_loops = gaussian_kernel_adjacency(paths, include_self_loops=True)
        np.testing.assert_allclose(np.diag(with_loops), np.ones(8))
        without = gaussian_kernel_adjacency(paths, include_self_loops=False)
        np.testing.assert_array_equal(np.diag(without), np.zeros(8))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            gaussian_kernel_adjacency(np.zeros((2, 3)))

    def test_rejects_edgeless(self):
        distances = np.full((3, 3), np.inf)
        np.fill_diagonal(distances, 0.0)
        with pytest.raises(ValueError):
            gaussian_kernel_adjacency(distances)

    def test_binary_adjacency(self, rng):
        net = generate_road_network(8, rng)
        adj = binary_adjacency(net.distances)
        assert set(np.unique(adj)) <= {0.0, 1.0}
        np.testing.assert_array_equal(np.diag(adj), np.zeros(8))

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_adjacency(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_validate_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_adjacency(np.array([[0.0, np.nan], [0.0, 0.0]]))

    def test_shortest_paths_triangle_inequality(self, rng):
        net = generate_road_network(10, rng, directed_fraction=0.0)
        paths = shortest_path_distances(net.distances)
        finite = np.isfinite(paths)
        for k in range(10):
            via_k = paths[:, k : k + 1] + paths[k : k + 1, :]
            ok = finite & np.isfinite(via_k)
            assert np.all(paths[ok] <= via_k[ok] + 1e-6)


class TestTransition:
    @pytest.fixture()
    def adjacency(self, rng):
        net = generate_road_network(10, rng)
        return gaussian_kernel_adjacency(shortest_path_distances(net.distances))

    def test_forward_row_stochastic(self, adjacency):
        p = forward_transition(adjacency)
        np.testing.assert_allclose(p.sum(axis=1), np.ones(10), rtol=1e-5)

    def test_backward_row_stochastic(self, adjacency):
        p = backward_transition(adjacency)
        np.testing.assert_allclose(p.sum(axis=1), np.ones(10), rtol=1e-5)

    def test_backward_is_forward_of_transpose(self, adjacency):
        np.testing.assert_allclose(
            backward_transition(adjacency), forward_transition(adjacency.T), rtol=1e-5
        )

    def test_pair(self, adjacency):
        p_f, p_b = transition_pair(adjacency)
        np.testing.assert_allclose(p_f, forward_transition(adjacency))
        np.testing.assert_allclose(p_b, backward_transition(adjacency))

    def test_isolated_node_gives_zero_row(self):
        adjacency = np.zeros((3, 3), dtype=np.float32)
        adjacency[0, 1] = 1.0
        p = forward_transition(adjacency)
        np.testing.assert_array_equal(p[2], np.zeros(3))

    def test_powers_stay_row_stochastic(self, adjacency):
        for power in matrix_powers(forward_transition(adjacency), 3):
            np.testing.assert_allclose(power.sum(axis=1), np.ones(10), rtol=1e-4)

    def test_powers_order(self, adjacency):
        p = forward_transition(adjacency)
        powers = matrix_powers(p, 3)
        np.testing.assert_allclose(powers[1], p @ p, rtol=1e-5)
        np.testing.assert_allclose(powers[2], p @ p @ p, rtol=1e-4)

    def test_powers_validates_order(self, adjacency):
        with pytest.raises(ValueError):
            matrix_powers(forward_transition(adjacency), 0)

    def test_laplacian_symmetric_psd(self, adjacency):
        sym = np.maximum(adjacency, adjacency.T)
        lap = symmetric_normalized_laplacian(sym)
        np.testing.assert_allclose(lap, lap.T, atol=1e-5)
        eigenvalues = np.linalg.eigvalsh(lap.astype(np.float64))
        assert eigenvalues.min() > -1e-5
        assert eigenvalues.max() < 2.0 + 1e-5


class TestLocalized:
    @pytest.fixture()
    def transition(self, rng):
        net = generate_road_network(6, rng)
        return forward_transition(
            gaussian_kernel_adjacency(shortest_path_distances(net.distances))
        )

    def test_shape_matches_eq4(self, transition):
        local = localized_transition(transition, order=2, k_t=3)
        assert local.shape == (6, 3 * 6)

    def test_diagonal_blocks_masked(self, transition):
        # P^local[i, i + k'N] must be zero for every temporal copy k'
        # (self-influence is inherent, not diffusion).
        k_t = 3
        local = localized_transition(transition, order=1, k_t=k_t)
        for copy in range(k_t):
            block = local[:, copy * 6 : (copy + 1) * 6]
            np.testing.assert_array_equal(np.diag(block), np.zeros(6))

    def test_copies_identical(self, transition):
        local = localized_transition(transition, order=2, k_t=2)
        np.testing.assert_array_equal(local[:, :6], local[:, 6:])

    def test_stack_orders(self, transition):
        stack = localized_transition_stack(transition, k_s=3, k_t=2)
        assert len(stack) == 3
        expected_order2 = mask_self_loops(transition @ transition)
        np.testing.assert_allclose(stack[1][:, :6], expected_order2, rtol=1e-5)

    def test_mask_self_loops_pure(self, transition):
        before = transition.copy()
        masked = mask_self_loops(transition)
        np.testing.assert_array_equal(transition, before)  # input untouched
        np.testing.assert_array_equal(np.diag(masked), np.zeros(6))

    def test_validates_sizes(self, transition):
        with pytest.raises(ValueError):
            localized_transition(transition, order=2, k_t=0)
        with pytest.raises(ValueError):
            localized_transition_stack(transition, k_s=0, k_t=1)
