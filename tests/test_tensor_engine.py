"""Semantics of the autodiff engine: graph recording, backward, no_grad."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad


class TestGraphRecording:
    def test_leaf_has_no_parents(self):
        a = Tensor([1.0], requires_grad=True)
        assert a._parents == ()

    def test_result_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_detach_severs_graph(self):
        a = Tensor([3.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b.numpy() is (a * 2.0).numpy() or np.array_equal(b.numpy(), [6.0])


class TestBackward:
    def test_scalar_backward_default_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 6.0])

    def test_nonscalar_backward_requires_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_shared_subexpression_counted_once_per_use(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        (b + b).sum().backward()  # d/da (6a) = 6
        np.testing.assert_allclose(a.grad, [6.0])

    def test_diamond_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        (b * c).sum().backward()  # d/da (6 a^2) = 12 a = 24
        np.testing.assert_allclose(a.grad, [24.0])

    def test_deep_chain_does_not_overflow(self):
        # RNN-length chains must not hit the recursion limit (iterative DFS).
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 0.001
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_intermediate_grads_are_freed(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        b.sum().backward()
        assert b.grad is None  # intermediates freed eagerly
        assert a.grad is not None  # leaves keep theirs


class TestDtypeAndConstruction:
    def test_float64_is_downcast(self):
        a = Tensor(np.zeros(3, dtype=np.float64))
        assert a.dtype == np.float32

    def test_python_list_accepted(self):
        a = Tensor([[1.0, 2.0]])
        assert a.shape == (1, 2)

    def test_item_and_len(self):
        assert Tensor([5.0]).item() == 5.0
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_t_property_transposes(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert a.T.shape == (3, 2)
