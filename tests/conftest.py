"""Shared fixtures: small deterministic datasets reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_forecasting_data, load_dataset
from repro.utils.seed import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    """Every test starts from the same global RNG state."""
    set_seed(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small speed dataset shared by model/training tests (read-only)."""
    return load_dataset("metr-la-sim", num_nodes=8, num_steps=420)


@pytest.fixture(scope="session")
def tiny_data(tiny_dataset):
    return build_forecasting_data(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_flow_dataset():
    return load_dataset("pems08-sim", num_nodes=8, num_steps=420)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
