"""Unit coverage of the serving building blocks.

Registry/bundle round-trips, ring-buffered ingestion, the prediction cache,
micro-batch coalescing and the historical-average fallback math — each in
isolation; ``test_serve_engine.py`` covers the assembled stack.
"""

import threading

import numpy as np
import pytest

from repro.baselines import HistoricalAverage
from repro.models import build_model
from repro.serve import (
    ForecastRequest,
    MicroBatcher,
    ModelRegistry,
    PredictionCache,
    ServableBundle,
    SlidingWindowStore,
    fallback_forecast,
    make_servable,
)
from repro.utils.checkpoint import CheckpointError
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def bundle(tiny_data):
    set_seed(0)
    model, _ = build_model("STGCN", tiny_data, hidden=8, layers=1)
    return make_servable("STGCN", model, tiny_data, hidden=8, layers=1)


class TestServableBundle:
    def test_save_load_round_trip(self, bundle, tmp_path):
        path = bundle.save(tmp_path / "stgcn.npz")
        loaded = ServableBundle.load(path)
        assert loaded.spec == bundle.spec
        assert set(loaded.state) == set(bundle.state)
        for key in bundle.state:
            np.testing.assert_array_equal(loaded.state[key], bundle.state[key])
        np.testing.assert_array_equal(loaded.adjacency, bundle.adjacency)
        np.testing.assert_array_equal(loaded.fallback_profile, bundle.fallback_profile)

    def test_instantiate_restores_parameters(self, bundle):
        model = bundle.instantiate()
        assert not model.training  # ready to serve, dropout off
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, bundle.state[name])

    def test_scaler_round_trips_statistics(self, bundle, tiny_data):
        scaler = bundle.scaler()
        assert scaler.mean == tiny_data.scaler.mean
        assert scaler.std == tiny_data.scaler.std
        assert scaler.mask_nulls == tiny_data.scaler.mask_nulls

    def test_corrupted_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError):
            ServableBundle.load(path)

    def test_truncated_file_raises_checkpoint_error(self, bundle, tmp_path):
        path = bundle.save(tmp_path / "stgcn.npz")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            ServableBundle.load(path)

    def test_foreign_checkpoint_rejected(self, bundle, tiny_data, tmp_path):
        from repro.utils.checkpoint import save_checkpoint

        model = bundle.instantiate()
        path = save_checkpoint(tmp_path / "plain.npz", model)
        with pytest.raises(CheckpointError, match="not a servable"):
            ServableBundle.load(path)

    def test_mismatched_state_raises_on_instantiate(self, bundle):
        broken = ServableBundle(
            spec=bundle.spec,
            state={k: v for k, v in list(bundle.state.items())[:-1]},
            adjacency=bundle.adjacency,
            fallback_profile=bundle.fallback_profile,
            extra={},
        )
        with pytest.raises(CheckpointError):
            broken.instantiate()

    def test_statistical_models_rejected(self, tiny_data):
        ha = HistoricalAverage(tiny_data.dataset.steps_per_day).fit(tiny_data)
        with pytest.raises(ValueError, match="statistical"):
            make_servable("HA", ha, tiny_data)


class TestModelRegistry:
    def test_publish_assigns_monotone_versions(self, bundle):
        registry = ModelRegistry()
        assert registry.publish(bundle) == "v1"
        assert registry.publish(bundle, activate=False) == "v2"
        assert registry.versions() == ("v1", "v2")
        assert registry.active_version == "v1"

    def test_hot_swap_changes_resolution(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        registry.publish(bundle)
        assert registry.resolve()[0] == "v2"
        registry.activate("v1")
        assert registry.resolve()[0] == "v1"

    def test_resolve_caches_instances(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        _, first, _ = registry.resolve()
        _, second, _ = registry.resolve()
        assert first is second

    def test_unknown_version_raises(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        with pytest.raises(KeyError):
            registry.activate("v9")

    def test_duplicate_version_raises(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle, version="gold")
        with pytest.raises(ValueError):
            registry.publish(bundle, version="gold")

    def test_empty_registry_raises(self):
        with pytest.raises(RuntimeError):
            ModelRegistry().resolve()

    def test_publish_path_round_trips(self, bundle, tmp_path):
        registry = ModelRegistry()
        path = bundle.save(tmp_path / "b.npz")
        version = registry.publish_path(path)
        assert registry.active_bundle().spec == bundle.spec
        assert version == "v1"


class TestSlidingWindowStore:
    def _store(self, tiny_data, history=4):
        return SlidingWindowStore(
            history=history,
            num_nodes=tiny_data.dataset.num_nodes,
            scaler=tiny_data.scaler,
        )

    def test_ring_keeps_latest_history(self, tiny_data):
        store = self._store(tiny_data)
        nodes = tiny_data.dataset.num_nodes
        for step in range(7):  # wraps the 4-slot ring
            store.append(np.full(nodes, 10.0 + step, np.float32), step % 288, 2)
        x, tod, _ = store.window()
        expected = tiny_data.scaler.transform(
            np.stack([np.full(nodes, 10.0 + s, np.float32) for s in range(3, 7)])
        )
        np.testing.assert_array_equal(x[0, :, :, 0], expected)
        assert list(tod[0]) == [3, 4, 5, 6]

    def test_not_ready_until_full(self, tiny_data):
        store = self._store(tiny_data)
        assert not store.ready
        with pytest.raises(RuntimeError, match="not ready"):
            store.window()
        for step in range(4):
            store.append(np.ones(tiny_data.dataset.num_nodes), step, 0)
        assert store.ready and len(store) == 4

    def test_nulls_neutralised_at_ingest(self, tiny_data):
        store = self._store(tiny_data)
        nodes = tiny_data.dataset.num_nodes
        dark = np.full(nodes, 60.0, np.float32)
        dark[0] = 0.0  # one sensor in outage
        for step in range(4):
            store.append(dark, step, 0)
        x, _, _ = store.window()
        assert np.all(x[0, :, 0, 0] == 0.0)  # outage -> scaled-space mean
        healthy = tiny_data.scaler.transform(np.array([60.0], np.float32))[0]
        assert np.all(x[0, :, 1:, 0] == healthy)

    def test_outage_fraction(self, tiny_data):
        store = self._store(tiny_data)
        nodes = tiny_data.dataset.num_nodes
        half_dark = np.full(nodes, 50.0, np.float32)
        half_dark[: nodes // 2] = 0.0
        for step in range(4):
            store.append(half_dark, step, 0)
        assert store.outage_fraction() == pytest.approx(0.5)

    def test_signature_is_monotone(self, tiny_data):
        store = self._store(tiny_data)
        nodes = tiny_data.dataset.num_nodes
        signatures = [store.append(np.ones(nodes), s, 0) for s in range(5)]
        assert signatures == sorted(set(signatures))
        assert store.signature() == signatures[-1]

    def test_last_time_and_warm_from(self, tiny_data):
        store = self._store(tiny_data)
        series = tiny_data.dataset.series
        store.warm_from(series.values[:6], series.time_of_day[:6], series.day_of_week[:6])
        assert store.last_time() == (
            int(series.time_of_day[5]), int(series.day_of_week[5])
        )

    def test_wrong_row_size_raises(self, tiny_data):
        store = self._store(tiny_data)
        with pytest.raises(ValueError):
            store.append(np.ones(3), 0, 0)

    def test_for_bundle_matches_spec(self, bundle):
        store = SlidingWindowStore.for_bundle(bundle)
        assert store.history == bundle.spec.history
        assert store.num_nodes == bundle.spec.num_nodes
        assert store.scaler.mean == bundle.spec.scaler_mean


class TestPredictionCache:
    def test_miss_then_hit(self):
        cache = PredictionCache()
        assert cache.get(("v1", 1, 12)) is None
        cache.put(("v1", 1, 12), np.arange(3.0))
        np.testing.assert_array_equal(cache.get(("v1", 1, 12)), np.arange(3.0))
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_returns_copies(self):
        cache = PredictionCache()
        value = np.arange(3.0)
        cache.put(("v1", 1, 12), value)
        value[:] = -1.0
        fetched = cache.get(("v1", 1, 12))
        np.testing.assert_array_equal(fetched, np.arange(3.0))
        fetched[:] = -2.0
        np.testing.assert_array_equal(cache.get(("v1", 1, 12)), np.arange(3.0))

    def test_lru_eviction(self):
        cache = PredictionCache(capacity=2)
        cache.put(("v1", 1, 12), np.zeros(1))
        cache.put(("v1", 2, 12), np.zeros(1))
        cache.get(("v1", 1, 12))  # refresh 1; 2 becomes LRU
        cache.put(("v1", 3, 12), np.zeros(1))
        assert cache.get(("v1", 2, 12)) is None
        assert cache.get(("v1", 1, 12)) is not None

    def test_invalidate_by_version(self):
        cache = PredictionCache()
        cache.put(("v1", 1, 12), np.zeros(1))
        cache.put(("v2", 1, 12), np.zeros(1))
        assert cache.invalidate("v1") == 1
        assert cache.get(("v1", 1, 12)) is None
        assert cache.get(("v2", 1, 12)) is not None

    def test_invalidate_stale_signatures(self):
        cache = PredictionCache()
        cache.put(("v1", 1, 12), np.zeros(1))
        cache.put(("v1", 2, 12), np.zeros(1))
        assert cache.invalidate_stale(2) == 1
        assert len(cache) == 1
        assert cache.get(("v1", 2, 12)) is not None


class TestMicroBatcher:
    @pytest.fixture()
    def registry(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        return registry

    def _requests(self, tiny_data, bundle, count):
        series = tiny_data.dataset.series
        history = bundle.spec.history
        requests = []
        for index in range(count):
            window = tiny_data.scaler.transform(series.values[index : index + history])
            requests.append(
                ForecastRequest(
                    x=window[None, :, :, None],
                    tod=series.time_of_day[index : index + history][None, :],
                    dow=series.day_of_week[index : index + history][None, :],
                )
            )
        return requests

    def test_batched_matches_single_request_bitwise(self, tiny_data, bundle, registry):
        batcher = MicroBatcher(registry.resolve, max_batch=8)
        requests = self._requests(tiny_data, bundle, 5)
        batched, version = batcher.run_batch(requests)
        assert version == "v1"
        for request, expected in zip(requests, batched):
            single, _ = batcher.run_batch([request])
            assert single[0].tobytes() == expected.tobytes()

    def test_serve_chunks_by_max_batch(self, tiny_data, bundle, registry):
        batcher = MicroBatcher(registry.resolve, max_batch=2)
        outputs = batcher.serve(self._requests(tiny_data, bundle, 5))
        assert len(outputs) == 5
        assert batcher.batches == 3  # 2 + 2 + 1
        assert batcher.batch_sizes == [2, 2, 1]

    def test_threaded_submits_are_coalesced(self, tiny_data, bundle, registry):
        batcher = MicroBatcher(registry.resolve, max_batch=8, max_wait_s=0.2)
        requests = self._requests(tiny_data, bundle, 6)
        expected = batcher.serve(requests)
        start_barrier = threading.Barrier(len(requests))
        results: dict[int, np.ndarray] = {}

        def worker(index):
            start_barrier.wait()
            value, version = batcher.submit(requests[index]).result(timeout=10.0)
            assert version == "v1"
            results[index] = value

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batcher.stop()
        for index, value in results.items():
            assert value.tobytes() == expected[index].tobytes()
        coalesced = batcher.batch_sizes[1:]  # everything after serve()'s one batch
        assert sum(coalesced) == len(requests)
        assert len(coalesced) < len(requests), "no coalescing happened"

    def test_forward_errors_reach_every_waiter(self, tiny_data, bundle):
        def broken_resolve():
            raise RuntimeError("registry on fire")

        batcher = MicroBatcher(broken_resolve, max_batch=4)
        pending = batcher.submit(self._requests(tiny_data, bundle, 1)[0])
        with pytest.raises(RuntimeError, match="registry on fire"):
            pending.result(timeout=5.0)
        batcher.stop()

    def test_submit_after_stop_raises(self, tiny_data, bundle, registry):
        batcher = MicroBatcher(registry.resolve)
        batcher.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            batcher.submit(self._requests(tiny_data, bundle, 1)[0])


class TestFallbackForecast:
    def test_matches_historical_average_baseline(self, tiny_data, bundle):
        ha = HistoricalAverage(tiny_data.dataset.steps_per_day).fit(tiny_data)
        horizon = 12
        last_tod, last_dow = 280, 4  # rolls over midnight into a weekend
        raw = fallback_forecast(
            ha._profile, last_tod, last_dow, horizon, tiny_data.dataset.steps_per_day
        )
        assert raw.shape == (horizon, tiny_data.dataset.num_nodes)
        x = np.zeros((1, horizon, tiny_data.dataset.num_nodes, 1), np.float32)
        tod = np.full((1, horizon), last_tod)
        dow = np.full((1, horizon), last_dow)
        expected_scaled = ha.forward(x, tod, dow).numpy()[0, :, :, 0]
        np.testing.assert_array_equal(
            tiny_data.scaler.transform(raw), expected_scaled
        )

    def test_uses_bundle_profile(self, bundle):
        raw = fallback_forecast(
            bundle.fallback_profile, 0, 0, 3, bundle.spec.steps_per_day
        )
        assert np.isfinite(raw).all()
        assert raw.shape == (3, bundle.spec.num_nodes)

    def test_invalid_horizon_raises(self, bundle):
        with pytest.raises(ValueError):
            fallback_forecast(bundle.fallback_profile, 0, 0, 0, 288)
