"""Alternative DSTF instantiations (framework pluggability, Sec. 4)."""

import numpy as np
import pytest

from repro.core import (
    AttentionDiffusionBlock,
    DSTFModel,
    TCNInherentBlock,
    build_dstf_model,
)
from repro.tensor import Tensor
from repro.utils.seed import set_seed

B, T, N, D = 2, 6, 5, 8


@pytest.fixture()
def adjacency(rng):
    adj = rng.uniform(0, 1, size=(N, N)).astype(np.float32)
    adj = (adj > 0.4) * adj
    np.fill_diagonal(adj, 1.0)
    return adj


def latent(rng):
    return Tensor(rng.normal(size=(B, T, N, D)).astype(np.float32), requires_grad=True)


class TestAttentionDiffusion:
    def test_block_contract(self, adjacency, rng):
        block = AttentionDiffusionBlock(D, num_heads=2, horizon=3)
        hidden, forecast, backcast = block(latent(rng), [adjacency])
        assert hidden.shape == (B, T, N, D)
        assert forecast.shape == (B, 3, N, D)
        assert backcast.shape == (B, T, N, D)

    def test_self_history_excluded(self, adjacency, rng):
        """The framework invariant: a diffusion block must be structurally
        blind to a node's own history, whatever its internals."""
        block = AttentionDiffusionBlock(D, num_heads=2, horizon=2)
        x = rng.normal(size=(1, T, N, D)).astype(np.float32)
        node = 1
        hidden_a, _, _ = block(Tensor(x), [adjacency])
        perturbed = x.copy()
        perturbed[:, :, node, :] += 10.0
        hidden_b, _, _ = block(Tensor(perturbed), [adjacency])
        np.testing.assert_allclose(
            hidden_a.numpy()[:, :, node], hidden_b.numpy()[:, :, node], atol=1e-3
        )

    def test_non_edges_blocked(self, rng):
        # A star graph: node 0 connects to everyone, others only to node 0.
        star = np.zeros((N, N), dtype=np.float32)
        star[0, :] = 1.0
        star[:, 0] = 1.0
        block = AttentionDiffusionBlock(D, num_heads=2, horizon=2)
        x = rng.normal(size=(1, T, N, D)).astype(np.float32)
        hidden_a, _, _ = block(Tensor(x), [star])
        perturbed = x.copy()
        perturbed[:, :, 2, :] += 10.0  # node 2 only touches node 0
        hidden_b, _, _ = block(Tensor(perturbed), [star])
        # Nodes 1, 3, 4 cannot see node 2 directly: unchanged.
        for other in (1, 3, 4):
            np.testing.assert_allclose(
                hidden_a.numpy()[:, :, other], hidden_b.numpy()[:, :, other], atol=1e-3
            )
        # Node 0 does see it.
        assert np.abs(hidden_a.numpy()[:, :, 0] - hidden_b.numpy()[:, :, 0]).max() > 1e-3

    def test_edgeless_support_rejected(self, rng):
        block = AttentionDiffusionBlock(D, num_heads=2, horizon=2)
        with pytest.raises(ValueError):
            block(latent(rng), [np.eye(N, dtype=np.float32)])  # only self-loops

    def test_direct_forecast_mode(self, adjacency, rng):
        block = AttentionDiffusionBlock(D, num_heads=2, horizon=5, autoregressive=False)
        _, forecast, _ = block(latent(rng), [adjacency])
        assert forecast.shape == (B, 5, N, D)


class TestTCNInherent:
    def test_block_contract(self, rng):
        block = TCNInherentBlock(D, horizon=4)
        hidden, forecast, backcast = block(latent(rng))
        assert hidden.shape == (B, T, N, D)
        assert forecast.shape == (B, 4, N, D)
        assert backcast.shape == (B, T, N, D)

    def test_nodes_independent(self, rng):
        block = TCNInherentBlock(D, horizon=2)
        x = rng.normal(size=(1, T, N, D)).astype(np.float32)
        hidden_a, _, _ = block(Tensor(x))
        perturbed = x.copy()
        perturbed[:, :, 0, :] += 10.0
        hidden_b, _, _ = block(Tensor(perturbed))
        np.testing.assert_allclose(
            hidden_a.numpy()[:, :, 1:], hidden_b.numpy()[:, :, 1:], atol=1e-4
        )

    def test_causality(self, rng):
        block = TCNInherentBlock(D, horizon=2)
        x = rng.normal(size=(1, T, N, D)).astype(np.float32)
        hidden_a, _, _ = block(Tensor(x))
        perturbed = x.copy()
        perturbed[:, T - 1] += 5.0  # change only the last step
        hidden_b, _, _ = block(Tensor(perturbed))
        np.testing.assert_allclose(
            hidden_a.numpy()[:, : T - 1], hidden_b.numpy()[:, : T - 1], atol=1e-4
        )


class TestFactory:
    @pytest.mark.parametrize("diffusion", ["localized-conv", "graph-attention"])
    @pytest.mark.parametrize("inherent", ["gru-msa", "tcn"])
    def test_all_combinations_run(self, adjacency, rng, diffusion, inherent):
        set_seed(0)
        model = build_dstf_model(
            N, adjacency, diffusion=diffusion, inherent=inherent,
            hidden_dim=8, embed_dim=4, num_layers=1, horizon=3,
        )
        x = rng.normal(size=(B, T, N, 1)).astype(np.float32)
        tod = rng.integers(0, 288, size=(B, T))
        dow = rng.integers(0, 7, size=(B, T))
        out = model(x, tod, dow)
        assert out.shape == (B, 3, N, 1)
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())

    def test_unknown_names_rejected(self, adjacency):
        with pytest.raises(KeyError):
            build_dstf_model(N, adjacency, diffusion="fourier")
        with pytest.raises(KeyError):
            build_dstf_model(N, adjacency, inherent="kalman")

    def test_is_a_module(self, adjacency):
        model = build_dstf_model(N, adjacency, hidden_dim=8, embed_dim=4, num_layers=1)
        assert isinstance(model, DSTFModel)
        assert model.num_parameters() > 0
