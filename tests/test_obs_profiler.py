"""The observability layer: op profiler, metrics sinks, trainer telemetry."""

import json

import numpy as np
import pytest

import repro.nn.module as module_mod
import repro.tensor.tensor as tensor_mod
from repro.baselines import FCLSTM
from repro.nn import Linear, Module, Parameter
from repro.obs import (
    FileSink,
    MemorySink,
    Profiler,
    StdoutSink,
    TELEMETRY_SCHEMA,
    annotate_model_scopes,
    memory_high_water_mark_bytes,
    read_jsonl,
)
from repro.tensor import Tensor, functional as F
from repro.training import Trainer, TrainerConfig


def scripted_forward_backward():
    """One fixed computation whose op counts are known exactly."""
    x = Tensor(np.ones((4, 5), dtype=np.float32), requires_grad=True)
    w = Tensor(np.full((5, 3), 0.1, dtype=np.float32), requires_grad=True)
    y = ((x @ w).relu().sum())  # matmul, relu, sum
    y.backward()
    return x, w


class TestProfilerRecords:
    def test_known_op_counts_forward_and_backward(self):
        with Profiler() as prof:
            scripted_forward_backward()
        assert prof.ops[("matmul", "forward")].count == 1
        assert prof.ops[("relu", "forward")].count == 1
        assert prof.ops[("sum", "forward")].count == 1
        assert prof.ops[("matmul", "backward")].count == 1
        assert prof.ops[("relu", "backward")].count == 1
        assert prof.ops[("sum", "backward")].count == 1

    def test_records_have_time_and_bytes(self):
        with Profiler() as prof:
            scripted_forward_backward()
        stat = prof.ops[("matmul", "forward")]
        assert stat.time >= 0.0
        assert stat.bytes == 4 * 3 * 4  # (4,3) float32 output
        back = prof.ops[("matmul", "backward")]
        assert back.bytes == 4 * 3 * 4  # incoming gradient, same shape

    def test_composite_functions_recorded(self):
        x = Tensor(np.random.rand(3, 4).astype(np.float32), requires_grad=True)
        with Profiler() as prof:
            F.softmax(x).sum().backward()
        assert prof.ops[("softmax", "forward")].count == 1

    def test_gradients_unaffected_by_profiling(self):
        x1, w1 = scripted_forward_backward()
        with Profiler():
            x2, w2 = scripted_forward_backward()
        np.testing.assert_array_equal(x1.grad, x2.grad)
        np.testing.assert_array_equal(w1.grad, w2.grad)

    def test_top_ops_and_to_dict_schema(self):
        with Profiler() as prof:
            scripted_forward_backward()
        payload = prof.to_dict()
        assert payload["schema"] == "repro.obs.profile/v1"
        assert payload["distinct_ops"] == prof.distinct_ops() >= 3
        for row in payload["ops"]:
            assert set(row) == {"op", "phase", "count", "time", "bytes"}
        assert json.loads(json.dumps(payload)) == payload  # JSON-clean
        assert len(prof.top_ops(2)) == 2


class TestProfilerDisabled:
    def test_disabled_mode_adds_no_entries(self):
        with Profiler() as prof:
            pass
        scripted_forward_backward()  # outside the with-block
        assert prof.ops == {}
        assert prof.scopes == {}

    def test_originals_restored_and_hooks_cleared(self):
        matmul = Tensor.__dict__["__matmul__"]
        concat = Tensor.__dict__["concatenate"]
        softmax = F.softmax
        with Profiler():
            assert Tensor.__dict__["__matmul__"] is not matmul
        assert Tensor.__dict__["__matmul__"] is matmul
        assert Tensor.__dict__["concatenate"] is concat
        assert F.softmax is softmax
        assert tensor_mod._BACKWARD_OP_HOOK is None
        assert module_mod._FORWARD_SCOPE_HOOK is None

    def test_profilers_do_not_nest(self):
        with Profiler():
            with pytest.raises(RuntimeError):
                with Profiler():
                    pass
        # and a crashed nesting attempt must not leave stale instrumentation
        assert tensor_mod._BACKWARD_OP_HOOK is None


class TestScopes:
    def test_module_forward_recorded_under_class_name(self):
        layer = Linear(5, 3)
        x = Tensor(np.random.rand(2, 5).astype(np.float32))
        with Profiler() as prof:
            layer(x)
        assert prof.scopes["Linear"].count == 1
        assert prof.scopes["Linear"].time >= prof.scopes["Linear"].self_time >= 0.0

    def test_annotate_scope_and_named_modules(self):
        class Net(Module):
            """Two-layer toy net."""

            def __init__(self):
                super().__init__()
                self.first = Linear(5, 4)
                self.second = Linear(4, 3)

            def forward(self, x):
                """Chain the two layers."""
                return self.second(self.first(x))

        net = Net()
        paths = dict(net.named_modules())
        assert set(paths) == {"", "first", "second"}
        annotate_model_scopes(net)
        with Profiler() as prof:
            net(Tensor(np.random.rand(2, 5).astype(np.float32)))
        assert prof.scopes["first"].count == 1
        assert prof.scopes["second"].count == 1
        # parent's inclusive time covers the children; self time excludes them
        net_stat = prof.scopes["Net"]
        assert net_stat.time >= prof.scopes["first"].time
        assert net_stat.self_time <= net_stat.time


class TestSinks:
    def test_file_sink_round_trips_json_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        records = [{"event": "epoch", "epoch": 1, "loss": 0.5},
                   {"event": "train_end", "epochs_run": 1}]
        with FileSink(path) as sink:
            for record in records:
                sink.emit(record)
        assert read_jsonl(path) == records

    def test_memory_sink_copies_records(self):
        sink = MemorySink()
        record = {"epoch": 1}
        sink.emit(record)
        record["epoch"] = 99
        assert sink.records == [{"epoch": 1}]

    def test_stdout_sink_emits_one_json_line(self, capsys):
        StdoutSink().emit({"a": 1, "b": "x"})
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == {"a": 1, "b": "x"}


class TestTrainerTelemetry:
    def test_epoch_and_end_records(self, tiny_data):
        sink = MemorySink()
        trainer = Trainer(FCLSTM(hidden_dim=4), tiny_data,
                          TrainerConfig(epochs=2, patience=5), sink=sink)
        trainer.train()
        epochs = [r for r in sink.records if r["event"] == "epoch"]
        ends = [r for r in sink.records if r["event"] == "train_end"]
        assert len(epochs) == 2 and len(ends) == 1
        first = epochs[0]
        assert first["schema"] == TELEMETRY_SCHEMA
        assert first["epoch"] == 1
        assert first["windows_per_second"] > 0
        assert first["grad_norm_mean"] > 0
        assert first["memory_peak_bytes"] > 0
        assert first["teacher_forcing_ratio"] is None  # no scheduled sampling
        assert ends[0]["epochs_run"] == 2
        assert ends[0]["best_val_mae"] == min(r["val_mae"] for r in epochs)
        # every record must be JSON-lines serialisable
        for record in sink.records:
            json.dumps(record)

    def test_history_gains_throughput_and_grad_norms(self, tiny_data):
        trainer = Trainer(FCLSTM(hidden_dim=4), tiny_data, TrainerConfig(epochs=1))
        history = trainer.train()
        assert len(history.grad_norm_mean) == 1
        assert len(history.windows_per_second) == 1
        assert history.windows_per_second[0] > 0

    def test_memory_high_water_mark_positive(self):
        assert memory_high_water_mark_bytes() > 1024 * 1024

class TestSanitizerTelemetry:
    """Sanitizer trips flow through the same MetricsSink as epoch records."""

    def test_sanitizer_record_shares_the_telemetry_schema(self):
        from repro.obs import sanitizer_record

        record = sanitizer_record(
            kind="anomaly", op="div", phase="forward", message="boom"
        )
        assert record["schema"] == TELEMETRY_SCHEMA
        assert record["event"] == "sanitizer"
        json.dumps(record)

    def test_trainer_detect_anomaly_clean_run_emits_no_sanitizer_records(self, tiny_data):
        sink = MemorySink()
        trainer = Trainer(FCLSTM(hidden_dim=4), tiny_data,
                          TrainerConfig(epochs=1, detect_anomaly=True), sink=sink)
        trainer.train()
        events = {record["event"] for record in sink.records}
        assert "sanitizer" not in events
        assert {"epoch", "train_end"} <= events
        # the engine must be back to its uninstrumented state
        assert tensor_mod._BACKWARD_OP_HOOK is None

    def test_trainer_detect_anomaly_reports_poisoned_forward(self, tiny_data):
        from repro.check import AnomalyError

        class PoisonedModel(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(1, 1)

            def forward(self, x, tod, dow):
                if not isinstance(x, Tensor):
                    x = Tensor(x)
                with np.errstate(divide="ignore"):
                    return self.lin(x) / Tensor(np.zeros(1, dtype=np.float32))

        sink = MemorySink()
        trainer = Trainer(PoisonedModel(), tiny_data,
                          TrainerConfig(epochs=1, detect_anomaly=True), sink=sink)
        with pytest.raises(AnomalyError, match="op 'div'"):
            trainer.train()
        sanitizer = [r for r in sink.records if r["event"] == "sanitizer"]
        assert len(sanitizer) == 1
        assert sanitizer[0]["kind"] == "anomaly"
        assert sanitizer[0]["op"] == "div"
        assert sanitizer[0]["phase"] == "forward"
        assert tensor_mod._BACKWARD_OP_HOOK is None

    def test_trainer_without_flag_does_not_wrap_steps(self, tiny_data):
        trainer = Trainer(FCLSTM(hidden_dim=4), tiny_data, TrainerConfig(epochs=1))
        assert trainer.config.detect_anomaly is False
        trainer.train()  # no sanitizer active: nothing to restore
        assert tensor_mod._BACKWARD_OP_HOOK is None
