"""Bit-identity of the engine fast paths and the vectorized batch gather.

The cached-tape / in-place / fast-scatter backward paths and the
sliding-window-view gather are pure performance work: they must produce
*exactly* the same bytes as their reference implementations.  ``allclose``
is not good enough here — the kill-and-resume equivalence contract compares
training histories bit-for-bit, so any reordered float summation would
surface as a spurious resume mismatch.

The fused matmul path stays enabled on both legs of every comparison: it is
an allclose-only rewrite by design (documented in docs/performance.md), so
flipping it would compare different numerics rather than different code
paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_forecasting_data, load_dataset
from repro.data.windows import BatchIterator, WindowDataset
from repro.models import build_model
from repro.obs import FAST_CONFIG, REFERENCE_CONFIG
from repro.optim import Adam, clip_grad_norm
from repro.tensor import (
    Tensor,
    backward_tape_stats,
    configure_fast_backward,
    fast_backward_config,
    functional as F,
)
from repro.utils.seed import set_seed

# Models chosen to cover the structures that stress the fast paths: the
# paper model (gated graph convolutions + attention), a pure RNN
# encoder-decoder (whose decoder loop exposed grad-buffer layout bugs), a
# dilated-conv stack and a diffusion RNN.
MODELS = ("D2STGNN", "FC-LSTM", "GraphWaveNet", "DCRNN")


@pytest.fixture(autouse=True)
def _restore_engine_config():
    previous = fast_backward_config()
    yield
    configure_fast_backward(**previous)


def _train_steps(name, data, config, steps=2):
    """Run ``steps`` deterministic optimisation steps under ``config``.

    Returns (grads, params) as raw bytes; both must match across engine
    configurations for the fast paths to be safe.
    """
    configure_fast_backward(**config)
    set_seed(0)
    model, _ = build_model(name, data, hidden=8, layers=1)
    optimizer = Adam(model.parameters(), lr=1e-3)
    scaler = data.scaler
    iterator = iter(data.loader("train", batch_size=16, shuffle=False))
    for _ in range(steps):
        batch = next(iterator)
        optimizer.zero_grad()
        prediction = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
        loss = F.masked_mae_loss(prediction, Tensor(batch.y))
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
    grads = [p.grad.tobytes() for p in model.parameters()]
    params = [p.data.tobytes() for p in model.parameters()]
    return grads, params


class TestBackwardFastPaths:
    @pytest.mark.parametrize("name", MODELS)
    def test_grads_and_updates_bit_identical(self, name, tiny_data):
        fast = _train_steps(name, tiny_data, FAST_CONFIG)
        reference = _train_steps(name, tiny_data, REFERENCE_CONFIG)
        assert fast[0] == reference[0], f"{name}: gradients diverged"
        assert fast[1] == reference[1], f"{name}: parameter updates diverged"

    def test_tape_replays_repeated_graphs(self, tiny_data):
        """Same-shape steps hit the cached order; a shape change misses."""
        configure_fast_backward(**FAST_CONFIG)
        set_seed(0)
        model, _ = build_model("GraphWaveNet", tiny_data, hidden=8, layers=1)
        scaler = tiny_data.scaler
        batches = []
        for batch in tiny_data.loader("train", batch_size=16, shuffle=False):
            batches.append(batch)
            if len(batches) == 3:
                break

        def backward(batch):
            for p in model.parameters():
                p.grad = None
            out = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
            F.masked_mae_loss(out, Tensor(batch.y)).backward()

        backward(batches[0])
        before = backward_tape_stats()
        backward(batches[1])
        backward(batches[2])
        after = backward_tape_stats()
        assert after["hits"] >= before["hits"] + 2

        # A different batch size changes every shape: must miss, not replay.
        small = tiny_data.train.gather(np.arange(4))
        backward(small)
        assert backward_tape_stats()["misses"] > after["misses"]


class TestVectorizedGather:
    @pytest.mark.parametrize("preset", ["metr-la-sim", "pems08-sim"])
    def test_bitwise_equal_to_loop(self, preset):
        data = build_forecasting_data(load_dataset(preset, num_nodes=6, num_steps=200))
        dataset = data.windows
        assert dataset._views is not None
        rng = np.random.default_rng(3)
        indices = rng.integers(0, len(dataset), size=40)
        fast = dataset.gather(indices)
        loop = dataset.gather_loop(indices)
        for field in ("x", "y", "tod", "dow"):
            a, b = getattr(fast, field), getattr(loop, field)
            assert a.dtype == b.dtype and a.shape == b.shape
            assert a.tobytes() == b.tobytes(), field
            assert a.flags.c_contiguous

    def test_time_channel_inputs(self, tiny_dataset):
        data = build_forecasting_data(tiny_dataset, time_channels=True)
        indices = np.arange(10)
        fast = data.windows.gather(indices)
        loop = data.windows.gather_loop(indices)
        assert fast.x.tobytes() == loop.x.tobytes()
        assert fast.x.shape[-1] == 3

    def test_subset_offsets(self, tiny_data):
        subset = tiny_data.val
        indices = np.arange(len(subset))[:8]
        fast = subset.gather(indices)
        loop = subset.dataset.gather_loop(indices + subset.start)
        assert fast.x.tobytes() == loop.x.tobytes()
        assert fast.y.tobytes() == loop.y.tobytes()

    def test_out_of_range_raises(self, tiny_data):
        dataset = tiny_data.windows
        with pytest.raises(IndexError):
            dataset.gather(np.array([len(dataset)]))
        with pytest.raises(IndexError):
            dataset.gather(np.array([-1]))

    def test_fallback_path_matches(self, tiny_data):
        """With views unavailable, gather must fall back to the loop."""
        dataset = tiny_data.windows
        indices = np.arange(12)
        expected = dataset.gather(indices)
        views, dataset._views = dataset._views, None
        try:
            fallback = dataset.gather(indices)
        finally:
            dataset._views = views
        assert fallback.x.tobytes() == expected.x.tobytes()
        assert fallback.y.tobytes() == expected.y.tobytes()

    def test_short_time_index_disables_views(self):
        """Time indices shorter than the series cannot be windowed."""
        values = np.arange(60.0, dtype=np.float32).reshape(30, 2)
        dataset = WindowDataset(
            values_scaled=values,
            values_raw=values,
            time_of_day=np.arange(5),
            day_of_week=np.arange(30),
            history=3,
            horizon=3,
        )
        assert dataset._views is None


class TestBatchIteratorRNG:
    def test_default_rng_streams_are_independent(self, tiny_data):
        set_seed(11)
        first = next(iter(BatchIterator(tiny_data.train, batch_size=16, shuffle=True)))
        second = next(iter(BatchIterator(tiny_data.train, batch_size=16, shuffle=True)))
        assert first.x.tobytes() != second.x.tobytes()

    def test_default_rng_is_seed_reproducible(self, tiny_data):
        set_seed(11)
        first = next(iter(BatchIterator(tiny_data.train, batch_size=16, shuffle=True)))
        set_seed(11)
        replay = next(iter(BatchIterator(tiny_data.train, batch_size=16, shuffle=True)))
        assert first.x.tobytes() == replay.x.tobytes()

    def test_explicit_rng_still_wins(self, tiny_data):
        a = next(iter(BatchIterator(
            tiny_data.train, batch_size=16, shuffle=True, rng=np.random.default_rng(5)
        )))
        b = next(iter(BatchIterator(
            tiny_data.train, batch_size=16, shuffle=True, rng=np.random.default_rng(5)
        )))
        assert a.x.tobytes() == b.x.tobytes()
