"""Synthetic road-network generation.

The real datasets derive their graphs from sensor GPS coordinates and road
distances (Sec. 6.1 of the paper).  Offline, we generate a comparable
structure: sensors scattered in the plane, connected to near neighbours with
road distances proportional to (and noisier than) Euclidean distance — the
same ingredients the thresholded-Gaussian-kernel construction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["RoadNetwork", "generate_road_network"]


@dataclass(frozen=True)
class RoadNetwork:
    """A sensor network: positions plus pairwise road distances on edges.

    Attributes
    ----------
    positions:
        (N, 2) planar coordinates of the sensors.
    distances:
        (N, N) road distance for connected pairs, ``inf`` elsewhere,
        0 on the diagonal.  Asymmetric in general (one-way ramps).
    """

    positions: np.ndarray
    distances: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.positions.shape[0]

    @property
    def num_edges(self) -> int:
        off_diag = ~np.eye(self.num_nodes, dtype=bool)
        return int(np.isfinite(self.distances[off_diag]).sum())


def generate_road_network(
    num_nodes: int,
    rng: np.random.Generator,
    radius: float | None = None,
    directed_fraction: float = 0.1,
    distance_noise: float = 0.15,
) -> RoadNetwork:
    """Create a connected sensor network over ``num_nodes`` sensors.

    Sensors are placed uniformly in the unit square and joined to all
    neighbours within ``radius`` (auto-chosen to give a road-like average
    degree if omitted).  A ``directed_fraction`` of edges is made one-way,
    mimicking freeway ramps; ``distance_noise`` perturbs road distances away
    from straight-line distance (roads bend).
    """
    if num_nodes < 2:
        raise ValueError("a road network needs at least two sensors")
    positions = rng.uniform(0.0, 1.0, size=(num_nodes, 2))
    if radius is None:
        # Average degree ~ N * pi * r^2; target degree ~6 like highway grids.
        radius = float(np.sqrt(6.0 / (np.pi * num_nodes)))

    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    diffs = positions[:, None, :] - positions[None, :, :]
    euclid = np.sqrt((diffs**2).sum(axis=-1))
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if euclid[i, j] <= radius:
                graph.add_edge(i, j)

    # Stitch disconnected components together through nearest pairs so the
    # diffusion process reaches every sensor.
    components = [list(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        a, b = components[0], components[1]
        sub = euclid[np.ix_(a, b)]
        ai, bj = np.unravel_index(np.argmin(sub), sub.shape)
        graph.add_edge(a[ai], b[bj])
        components = [list(c) for c in nx.connected_components(graph)]

    distances = np.full((num_nodes, num_nodes), np.inf)
    np.fill_diagonal(distances, 0.0)
    for i, j in graph.edges:
        noise = 1.0 + distance_noise * abs(rng.standard_normal())
        road = euclid[i, j] * noise
        if rng.random() < directed_fraction:
            # One-way: keep a single direction.
            if rng.random() < 0.5:
                distances[i, j] = road
            else:
                distances[j, i] = road
        else:
            distances[i, j] = road
            distances[j, i] = road
    return RoadNetwork(positions=positions, distances=distances)
