"""Diffusion transition matrices.

The diffusion model treats traffic as a random walk on the sensor graph
(Sec. 5.1): the forward transition ``P_f = A / rowsum(A)`` describes where
vehicles at a node go next, and the backward transition
``P_b = A^T / rowsum(A^T)`` where they came from.
"""

from __future__ import annotations

import numpy as np

from .adjacency import validate_adjacency

__all__ = [
    "forward_transition",
    "backward_transition",
    "transition_pair",
    "matrix_powers",
    "symmetric_normalized_laplacian",
]


def _row_normalize(matrix: np.ndarray) -> np.ndarray:
    rowsum = matrix.sum(axis=1, keepdims=True)
    rowsum[rowsum == 0] = 1.0  # isolated rows become zero rows, not NaN
    return (matrix / rowsum).astype(np.float32)


def forward_transition(adjacency: np.ndarray) -> np.ndarray:
    """``P_f = A / rowsum(A)`` — row-stochastic where the graph has edges."""
    return _row_normalize(validate_adjacency(adjacency))


def backward_transition(adjacency: np.ndarray) -> np.ndarray:
    """``P_b = A^T / rowsum(A^T)``."""
    return _row_normalize(validate_adjacency(adjacency).T)


def transition_pair(adjacency: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(P_f, P_b)``."""
    return forward_transition(adjacency), backward_transition(adjacency)


def matrix_powers(transition: np.ndarray, max_order: int) -> list[np.ndarray]:
    """Return ``[P^1, P^2, ..., P^max_order]``."""
    if max_order < 1:
        raise ValueError("max_order must be >= 1")
    powers = [transition.astype(np.float32)]
    for _ in range(max_order - 1):
        powers.append((powers[-1] @ transition).astype(np.float32))
    return powers


def symmetric_normalized_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """``I - D^{-1/2} A D^{-1/2}``; used by the STGCN baseline's Chebyshev GCN."""
    adjacency = validate_adjacency(adjacency)
    degree = adjacency.sum(axis=1)
    inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(degree), 0.0)
    normalized = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    return (np.eye(adjacency.shape[0], dtype=np.float32) - normalized).astype(np.float32)
