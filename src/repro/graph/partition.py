"""Spatial graph partitioning for sharded serving.

Sharded serving (``repro.serve.shard``) splits the road graph into K
balanced node sets and runs one worker per set.  D²STGNN's decoupling makes
this tractable: the *inherent* signal is node-local, so only the *diffusion*
term crosses shard boundaries — a partition that cuts few diffusion edges
keeps the halo (the out-of-shard nodes a shard must still see) small.

:func:`greedy_min_cut` is a deterministic METIS-style heuristic: seed K
shards at mutually distant nodes, then grow each shard one frontier node at
a time, always absorbing the unassigned node with the strongest connection
to the shard, under a hard balance cap.  It is not optimal — min-cut
partitioning is NP-hard — but on the planar road networks the simulator
generates it recovers contiguous regions with boundary-sized cuts, which is
all the halo-size bound needs.

:func:`hop_neighborhood` and :func:`cut_edges` are the supporting
primitives: the r-hop ball a shard's receptive field covers, and the edges a
partition severs (what the halo must exactly re-cover — see
``tests/test_serve_shard.py`` for the invariant).
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_min_cut", "hop_neighborhood", "cut_edges"]


def _support(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric boolean connectivity without self-loops.

    Diffusion flows both ways through the forward/backward transition pair
    (Eq. 4 context), so partition quality is judged on the symmetrised
    structure even when the adjacency itself is directed.
    """
    adjacency = np.asarray(adjacency)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    support = (adjacency != 0) | (adjacency.T != 0)
    np.fill_diagonal(support, False)
    return support


def greedy_min_cut(adjacency: np.ndarray, num_parts: int) -> np.ndarray:
    """Partition nodes into ``num_parts`` balanced sets with a small cut.

    Returns an ``(N,)`` int array mapping node -> part id in
    ``[0, num_parts)``.  Deterministic for a given adjacency; every node is
    assigned to exactly one part, and no part exceeds ``ceil(N / num_parts)``
    nodes.  ``num_parts=1`` returns the trivial all-zeros assignment.
    """
    support = _support(adjacency)
    n = support.shape[0]
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if num_parts > n:
        raise ValueError(f"cannot split {n} nodes into {num_parts} parts")
    assignment = np.full(n, -1, dtype=np.int64)
    if num_parts == 1:
        return np.zeros(n, dtype=np.int64)

    weights = np.where(support, np.abs(np.asarray(adjacency, dtype=np.float64)), 0.0)
    weights = np.maximum(weights, weights.T)  # symmetric edge weights

    # Seed parts at mutually distant nodes (greedy k-center on hop distance),
    # so shards grow from opposite ends of the network instead of fighting
    # over one region.
    seeds = [0]
    distance = _hop_distances(support, 0)
    for _ in range(1, num_parts):
        candidate = int(np.argmax(np.where(np.isfinite(distance), distance, -1.0)))
        if candidate in seeds:  # disconnected leftovers: take smallest unseeded
            candidate = int(next(i for i in range(n) if i not in seeds))
        seeds.append(candidate)
        distance = np.minimum(distance, _hop_distances(support, candidate))

    capacity = -(-n // num_parts)  # ceil(N / K) hard balance cap
    sizes = np.zeros(num_parts, dtype=np.int64)
    # attraction[p, j]: total edge weight from part p to unassigned node j.
    attraction = np.zeros((num_parts, n), dtype=np.float64)
    for part, seed in enumerate(seeds):
        assignment[seed] = part
        sizes[part] = 1
        attraction[:, seed] = -np.inf
        attraction[part] += weights[seed]

    # Round-robin growth: each part absorbs its best frontier node in turn,
    # which keeps sizes balanced while following the edge structure.
    remaining = n - num_parts
    while remaining:
        progressed = False
        for part in range(num_parts):
            if not remaining or sizes[part] >= capacity:
                continue
            row = attraction[part]
            best = int(np.argmax(row))
            if not np.isfinite(row[best]) or row[best] <= 0.0:
                unassigned = np.nonzero(assignment < 0)[0]
                if unassigned.size == 0:
                    break
                best = int(unassigned[0])  # disconnected: smallest id
            assignment[best] = part
            sizes[part] += 1
            attraction[:, best] = -np.inf
            attraction[part] += np.where(assignment < 0, weights[best], 0.0)
            remaining -= 1
            progressed = True
        if not progressed:  # all open parts full — widen the smallest
            part = int(np.argmin(sizes))
            capacity += 1
    return assignment


def _hop_distances(support: np.ndarray, source: int) -> np.ndarray:
    """BFS hop distances from ``source``; ``inf`` where unreachable."""
    n = support.shape[0]
    distance = np.full(n, np.inf)
    distance[source] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    hops = 0
    while frontier.any():
        hops += 1
        reached = support[frontier].any(axis=0) & ~np.isfinite(distance)
        distance[reached] = hops
        frontier = reached
    return distance


def hop_neighborhood(
    adjacency: np.ndarray, members: np.ndarray, hops: int = 1
) -> np.ndarray:
    """Nodes within ``hops`` edges of ``members``, excluding the members.

    This is the halo a shard needs: with a spatial receptive field of
    ``r`` hops, a worker holding ``members`` plus their ``r``-hop
    neighborhood can reproduce the full-graph outputs for ``members``
    exactly (see ``docs/scaling.md`` for the dependency argument).
    Returns sorted global node ids.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    support = _support(adjacency)
    inside = np.zeros(support.shape[0], dtype=bool)
    inside[np.asarray(members, dtype=np.int64)] = True
    covered = inside.copy()
    frontier = inside
    for _ in range(hops):
        reached = support[frontier].any(axis=0) & ~covered
        if not reached.any():
            break
        covered |= reached
        frontier = reached
    return np.nonzero(covered & ~inside)[0].astype(np.int64)


def cut_edges(adjacency: np.ndarray, assignment: np.ndarray) -> np.ndarray:
    """The (i, j) pairs the partition severs, as an ``(E, 2)`` id array.

    An edge is cut when its endpoints land in different parts; both
    directions of a symmetric edge count once (i < j ordering on the
    symmetrised support).
    """
    support = _support(adjacency)
    assignment = np.asarray(assignment, dtype=np.int64)
    i, j = np.nonzero(np.triu(support, k=1))
    crossing = assignment[i] != assignment[j]
    return np.stack([i[crossing], j[crossing]], axis=1)
