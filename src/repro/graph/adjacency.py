"""Adjacency-matrix construction via the thresholded Gaussian kernel.

This is the DCRNN procedure the paper follows for the speed datasets
(Sec. 6.1): ``A_ij = exp(-dist_ij^2 / sigma^2)`` where ``sigma`` is the
standard deviation of the finite distances, with entries below a threshold
set to zero for sparsity.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import dijkstra

__all__ = [
    "shortest_path_distances",
    "gaussian_kernel_adjacency",
    "binary_adjacency",
    "mask_adjacency",
    "validate_adjacency",
]


def shortest_path_distances(distances: np.ndarray) -> np.ndarray:
    """All-pairs road distances via Dijkstra over the edge-distance matrix.

    DCRNN's construction (which the paper follows for the speed datasets)
    computes "pairwise road network distances between sensors" — i.e. path
    distances, not only direct-edge distances — before applying the kernel.
    """
    distances = np.asarray(distances, dtype=np.float64)
    graph = np.where(np.isfinite(distances), distances, 0.0)
    return dijkstra(graph, directed=True)


def gaussian_kernel_adjacency(
    distances: np.ndarray,
    threshold: float = 0.1,
    include_self_loops: bool = True,
) -> np.ndarray:
    """Build a weighted adjacency matrix from road distances.

    Parameters
    ----------
    distances:
        (N, N) road distances; ``inf`` for unconnected pairs.
    threshold:
        Kernel weights strictly below this are zeroed (paper: "thresholded
        Gaussian kernel", after Shuman et al. 2013).
    include_self_loops:
        Keep the unit diagonal (distance 0 → weight 1).  The localized
        transition matrix of Eq. 4 masks self-influence separately.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError(f"distances must be square, got {distances.shape}")
    finite = distances[np.isfinite(distances) & (distances > 0)]
    if finite.size == 0:
        raise ValueError("no finite off-diagonal distances; the graph has no edges")
    sigma = finite.std()
    if sigma == 0:
        sigma = finite.mean() or 1.0
    with np.errstate(over="ignore"):
        kernel = np.exp(-np.square(distances / sigma))
    kernel[~np.isfinite(distances)] = 0.0
    kernel[kernel < threshold] = 0.0
    if not include_self_loops:
        np.fill_diagonal(kernel, 0.0)
    return kernel.astype(np.float32)


def binary_adjacency(distances: np.ndarray) -> np.ndarray:
    """0/1 connectivity matrix (used by the flow datasets, after ASTGCN)."""
    adj = np.isfinite(distances) & (distances > 0)
    return adj.astype(np.float32)


def mask_adjacency(
    adjacency: np.ndarray,
    *,
    nodes=(),
    edges=(),
    keep_self_loops: bool = True,
) -> np.ndarray:
    """A copy of ``adjacency`` with closed roads removed.

    ``nodes`` severs every edge touching the listed nodes (their rows and
    columns are zeroed; ``keep_self_loops`` preserves the diagonal so the
    node still exists, merely unreachable); ``edges`` removes individual
    ``(i, j)`` pairs in both directions.  This is the masked-adjacency
    derivation behind :class:`repro.data.events.RoadClosure`: the rewritten
    matrix is what serving hot-swaps to mid-stream when a closure begins or
    lifts.
    """
    masked = validate_adjacency(adjacency).copy()
    n = masked.shape[0]
    node_ids = np.asarray(sorted({int(node) for node in nodes}), dtype=np.int64)
    if node_ids.size:
        if node_ids.min() < 0 or node_ids.max() >= n:
            raise ValueError(f"closed nodes outside [0, {n})")
        diagonal = masked[node_ids, node_ids].copy()
        masked[node_ids, :] = 0.0
        masked[:, node_ids] = 0.0
        if keep_self_loops:
            masked[node_ids, node_ids] = diagonal
    for i, j in edges:
        i, j = int(i), int(j)
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"closed edge ({i}, {j}) outside [0, {n})")
        masked[i, j] = 0.0
        masked[j, i] = 0.0
    return masked


def validate_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Check an adjacency matrix is square, finite and non-negative."""
    adjacency = np.asarray(adjacency, dtype=np.float32)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if not np.isfinite(adjacency).all():
        raise ValueError("adjacency contains non-finite entries")
    if (adjacency < 0).any():
        raise ValueError("adjacency contains negative weights")
    return adjacency
