"""Spatial-temporal localized transition matrices (paper Eq. 4).

For a transition matrix ``P`` and orders ``k = 1..k_s``, the localized matrix

    (P^local)^k = [ P^k ⊙ (1 - I_N) || ... || P^k ⊙ (1 - I_N) ]   (k_t copies)

has shape ``(N, k_t * N)``; entry ``[i, j + k'N]`` is the influence of node
``j`` at time offset ``k'`` on node ``i``.  The diagonal of every block is
masked to zero: a node's own history is *inherent*, not diffusion, and must
be left for the inherent model — this masking is the mechanism that ties the
diffusion block to the decoupling story.
"""

from __future__ import annotations

import numpy as np

from .transition import matrix_powers

__all__ = ["mask_self_loops", "localized_transition", "localized_transition_stack"]


def mask_self_loops(transition: np.ndarray) -> np.ndarray:
    """``P ⊙ (1 - I_N)``: remove each node's self-influence."""
    masked = transition.copy()
    np.fill_diagonal(masked, 0.0)
    return masked


def localized_transition(transition: np.ndarray, order: int, k_t: int) -> np.ndarray:
    """``(P^local)^order`` of shape ``(N, k_t * N)`` for a single order."""
    if k_t < 1:
        raise ValueError("temporal kernel size k_t must be >= 1")
    power = matrix_powers(transition, order)[-1]
    block = mask_self_loops(power)
    return np.concatenate([block] * k_t, axis=1).astype(np.float32)


def localized_transition_stack(
    transition: np.ndarray, k_s: int, k_t: int
) -> list[np.ndarray]:
    """``[(P^local)^1, ..., (P^local)^{k_s}]``, each ``(N, k_t * N)``."""
    if k_s < 1:
        raise ValueError("spatial kernel size k_s must be >= 1")
    powers = matrix_powers(transition, k_s)
    return [
        np.concatenate([mask_self_loops(p)] * k_t, axis=1).astype(np.float32)
        for p in powers
    ]
