"""Road networks, adjacency construction and diffusion transition matrices."""

from .adjacency import (
    binary_adjacency,
    gaussian_kernel_adjacency,
    mask_adjacency,
    shortest_path_distances,
    validate_adjacency,
)
from .localized import localized_transition, localized_transition_stack, mask_self_loops
from .partition import cut_edges, greedy_min_cut, hop_neighborhood
from .road_network import RoadNetwork, generate_road_network
from .transition import (
    backward_transition,
    forward_transition,
    matrix_powers,
    symmetric_normalized_laplacian,
    transition_pair,
)

__all__ = [
    "RoadNetwork",
    "backward_transition",
    "binary_adjacency",
    "cut_edges",
    "shortest_path_distances",
    "forward_transition",
    "gaussian_kernel_adjacency",
    "generate_road_network",
    "greedy_min_cut",
    "hop_neighborhood",
    "localized_transition",
    "localized_transition_stack",
    "mask_adjacency",
    "mask_self_loops",
    "matrix_powers",
    "symmetric_normalized_laplacian",
    "transition_pair",
    "validate_adjacency",
]
