"""Dataset import/export.

Two purposes:

* **export** a simulated dataset (with its latent components and graph) to a
  single ``.npz`` so experiments can be shared and rerun bit-identically;
* **import** external recordings — if you have the real METR-LA / PEMS
  arrays, :func:`dataset_from_arrays` wraps them in the same
  :class:`~repro.data.TrafficDataset` interface the rest of the library
  consumes, so every model/benchmark runs on real data unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..graph.road_network import RoadNetwork
from ..utils.atomic import atomic_savez
from ..utils.checkpoint import CheckpointError
from .datasets import DatasetSpec, TrafficDataset
from .simulator import SimulationConfig, TrafficSeries, time_indices
from .splits import FLOW_SPLIT, SPEED_SPLIT

__all__ = ["save_dataset", "load_dataset_file", "dataset_from_arrays"]

_FORMAT_VERSION = 1


def save_dataset(path: str | Path, dataset: TrafficDataset) -> Path:
    """Write a :class:`TrafficDataset` to one compressed ``.npz`` file.

    The archive is written atomically (temp file + ``os.replace``), so an
    interrupted save leaves any previous file at ``path`` intact.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    series = dataset.series
    meta = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.spec.name,
        "kind": dataset.spec.kind,
        "seed": dataset.spec.seed,
        "steps_per_day": series.config.steps_per_day,
        "reference": {
            "nodes": dataset.spec.reference_nodes,
            "edges": dataset.spec.reference_edges,
            "steps": dataset.spec.reference_steps,
        },
    }
    return atomic_savez(
        path,
        values=series.values,
        inherent=series.inherent,
        diffusion=series.diffusion,
        time_of_day=series.time_of_day,
        day_of_week=series.day_of_week,
        failure_mask=series.failure_mask,
        positions=dataset.network.positions,
        distances=dataset.network.distances,
        adjacency=dataset.adjacency,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_dataset_file(path: str | Path) -> TrafficDataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Malformed archives — truncated files, missing members, corrupted or
    version-mismatched metadata — raise
    :class:`~repro.utils.checkpoint.CheckpointError` rather than a raw
    ``zipfile``/``KeyError`` traceback.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no dataset file at {path}")
    try:
        archive_ctx = np.load(path)
    except Exception as error:  # zipfile.BadZipFile, OSError, EOFError, ...
        raise CheckpointError(f"{path} is not a readable dataset archive: {error}") from error
    with archive_ctx as archive:
        if "meta" not in archive.files:
            raise CheckpointError(f"{path} is not a repro dataset archive (missing meta)")
        try:
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        except Exception as error:
            raise CheckpointError(f"{path} holds corrupted dataset metadata: {error}") from error
        if meta.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported dataset format {meta.get('format_version')!r}"
            )
        try:
            series = TrafficSeries(
                values=archive["values"],
                inherent=archive["inherent"],
                diffusion=archive["diffusion"],
                time_of_day=archive["time_of_day"],
                day_of_week=archive["day_of_week"],
                failure_mask=archive["failure_mask"],
                kind=meta["kind"],
                config=SimulationConfig(steps_per_day=meta["steps_per_day"]),
            )
            network = RoadNetwork(
                positions=archive["positions"], distances=archive["distances"]
            )
            adjacency = archive["adjacency"]
        except CheckpointError:
            raise
        except Exception as error:
            raise CheckpointError(f"{path} holds a truncated or incomplete dataset: {error}") from error
    num_steps, num_nodes = series.values.shape
    spec = DatasetSpec(
        name=meta["name"], kind=meta["kind"], num_nodes=num_nodes, num_steps=num_steps,
        split=SPEED_SPLIT if meta["kind"] == "speed" else FLOW_SPLIT,
        seed=meta["seed"],
        reference_nodes=meta["reference"]["nodes"],
        reference_edges=meta["reference"]["edges"],
        reference_steps=meta["reference"]["steps"],
    )
    return TrafficDataset(spec=spec, series=series, network=network, adjacency=adjacency)


def dataset_from_arrays(
    values: np.ndarray,
    adjacency: np.ndarray,
    kind: str = "speed",
    steps_per_day: int = 288,
    start_day_of_week: int = 0,
    name: str = "external",
) -> TrafficDataset:
    """Wrap external recordings in a :class:`TrafficDataset`.

    Parameters
    ----------
    values:
        (T, N) observations (speed in mph or flow counts); zeros are treated
        as missing, matching the METR-LA convention.
    adjacency:
        (N, N) non-negative weighted adjacency (e.g. the DCRNN-provided
        ``adj_mx`` for METR-LA).
    """
    values = np.asarray(values, dtype=np.float32)
    if values.ndim != 2:
        raise ValueError(f"values must be (T, N), got shape {values.shape}")
    adjacency = np.asarray(adjacency, dtype=np.float32)
    num_steps, num_nodes = values.shape
    if adjacency.shape != (num_nodes, num_nodes):
        raise ValueError(
            f"adjacency {adjacency.shape} does not match {num_nodes} sensors"
        )
    if kind not in ("speed", "flow"):
        raise ValueError(f"kind must be 'speed' or 'flow', got {kind!r}")
    tod, dow = time_indices(num_steps, steps_per_day, start_day_of_week)
    zeros = values == 0.0
    series = TrafficSeries(
        values=values,
        inherent=np.zeros_like(values),  # latent components unknown for real data
        diffusion=np.zeros_like(values),
        time_of_day=tod,
        day_of_week=dow,
        failure_mask=zeros,
        kind=kind,
        config=SimulationConfig(steps_per_day=steps_per_day),
    )
    # A placeholder geometry: external datasets come with an adjacency, not
    # coordinates; distances are backed out of the weights for reference.
    with np.errstate(divide="ignore"):
        pseudo_distances = np.where(adjacency > 0, -np.log(np.maximum(adjacency, 1e-9)), np.inf)
    np.fill_diagonal(pseudo_distances, 0.0)
    network = RoadNetwork(
        positions=np.zeros((num_nodes, 2)), distances=pseudo_distances
    )
    spec = DatasetSpec(
        name=name, kind=kind, num_nodes=num_nodes, num_steps=num_steps,
        split=SPEED_SPLIT if kind == "speed" else FLOW_SPLIT, seed=0,
        reference_nodes=num_nodes, reference_edges=int((adjacency > 0).sum()),
        reference_steps=num_steps,
    )
    return TrafficDataset(spec=spec, series=series, network=network, adjacency=adjacency)
