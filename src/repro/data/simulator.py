"""Synthetic traffic simulator.

Offline stand-in for the METR-LA / PEMS recordings (see DESIGN.md).  Each
sensor's series is generated as an explicit superposition of the two hidden
signals the paper postulates (Sec. 1, Fig. 2):

* an **inherent** signal — traffic originating near the sensor: per-node
  morning/evening peak profiles, a day-of-week modulation, and AR(1) noise;
* a **diffusion** signal — traffic arriving from neighbouring sensors,
  propagated along the road graph through a row-stochastic transition matrix
  with travel-time lags and a *time-varying* coupling strength (rush hours
  couple the network more tightly), which realises the dynamic spatial
  dependency of Fig. 2(c).

Because the generator literally implements "traffic = diffusion + inherent",
it is the right test bed for the decoupling hypothesis: models that separate
the two signals should win for the same reason they win on real data, and
the simulator exposes the latent components so tests can verify the
decomposition story quantitatively.

Speed-type datasets are produced by mapping congestion load to speed
(``speed = free_flow - scale * load``, clipped to [0, 70] mph); flow-type
datasets report the load directly as vehicle counts.  Random sensor outages
write zeros, mimicking the failure visible in Fig. 8 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.road_network import RoadNetwork
from ..graph.transition import forward_transition

__all__ = ["SimulationConfig", "TrafficSeries", "simulate_traffic", "time_indices"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the generative process.

    Defaults are tuned so that roughly 55-70% of signal variance is
    diffusion-driven, matching the paper's premise that diffusion dominates
    but the inherent part is too large to ignore.
    """

    steps_per_day: int = 288  # 5-minute sampling, like all four datasets
    start_day_of_week: int = 0  # Monday
    coupling: float = 0.55  # total diffusion gain (< 1 keeps the system stable)
    max_lag: int = 3  # travel-time lags, in sampling intervals
    noise_scale: float = 0.10
    ar_coefficient: float = 0.88
    weekend_factor: float = 0.55
    day_variation: float = 0.25  # day-to-day amplitude jitter (defeats HA)
    event_rate: float = 0.002  # per-node probability of a congestion event
    event_magnitude: float = 0.9
    event_duration: tuple[int, int] = (12, 30)  # 1-2.5 hours
    dynamic_coupling_amplitude: float = 0.6  # rush-hour boost of edge strength
    failure_rate: float = 0.0008  # per-node probability of an outage starting
    failure_duration: tuple[int, int] = (6, 36)  # outage length range, in steps
    speed_limit: float = 70.0
    free_flow_speed: float = 65.0
    flow_scale: float = 220.0
    # Sensor drift: a slow additive bias ramp on a random subset of sensors
    # (miscalibration, not darkness — ROADMAP item 4's "drift/bias, not just
    # zeros").  Disabled by default; when off, no extra rng draws happen, so
    # existing seeded datasets stay bit-identical.
    drift_rate: float = 0.0  # bias added per step once a sensor starts drifting
    drift_fraction: float = 0.0  # fraction of sensors that drift
    drift_onset: float = 0.25  # earliest onset, as a fraction of the run


@dataclass
class TrafficSeries:
    """Simulator output: observations plus the latent ground truth.

    ``values`` is what a model sees; ``inherent``/``diffusion`` are the
    hidden components (before the speed/flow mapping) kept for analysis and
    for the decoupling tests.
    """

    values: np.ndarray  # (T, N) observed speed or flow
    inherent: np.ndarray  # (T, N) latent inherent load
    diffusion: np.ndarray  # (T, N) latent diffusion load
    time_of_day: np.ndarray  # (T,) slot index in [0, steps_per_day)
    day_of_week: np.ndarray  # (T,) day index in [0, 7)
    failure_mask: np.ndarray  # (T, N) True where an outage zeroed the sensor
    kind: str = "speed"
    config: SimulationConfig = field(default_factory=SimulationConfig)
    drift_bias: np.ndarray | None = None  # (T, N) additive drift actually applied


def time_indices(
    num_steps: int, steps_per_day: int, start_day_of_week: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Return (time-of-day, day-of-week) index arrays for ``num_steps``."""
    steps = np.arange(num_steps)
    tod = steps % steps_per_day
    dow = (steps // steps_per_day + start_day_of_week) % 7
    return tod.astype(np.int64), dow.astype(np.int64)


def _daily_profile(tod: np.ndarray, steps_per_day: int, rng: np.random.Generator,
                   num_nodes: int) -> np.ndarray:
    """Per-node daily demand profiles with node-specific peak structure.

    Every node mixes a morning and an evening Gaussian bump with its own
    weights, widths and phase jitter — this is what makes node 2 congest in
    the morning and node 111 in the evening in Fig. 8.
    """
    hours = tod / steps_per_day * 24.0  # (T,)
    morning_center = 8.0 + rng.normal(0.0, 0.7, size=num_nodes)
    evening_center = 17.5 + rng.normal(0.0, 0.7, size=num_nodes)
    morning_weight = rng.uniform(0.2, 1.0, size=num_nodes)
    evening_weight = rng.uniform(0.2, 1.0, size=num_nodes)
    width = rng.uniform(1.2, 2.2, size=num_nodes)
    base = rng.uniform(0.15, 0.35, size=num_nodes)

    delta_m = hours[:, None] - morning_center[None, :]
    delta_e = hours[:, None] - evening_center[None, :]
    profile = (
        base[None, :]
        + morning_weight[None, :] * np.exp(-0.5 * (delta_m / width[None, :]) ** 2)
        + evening_weight[None, :] * np.exp(-0.5 * (delta_e / width[None, :]) ** 2)
    )
    return profile  # (T, N)


def simulate_traffic(
    network: RoadNetwork,
    num_steps: int,
    kind: str = "speed",
    config: SimulationConfig | None = None,
    rng: np.random.Generator | None = None,
) -> TrafficSeries:
    """Run the generative process for ``num_steps`` 5-minute intervals.

    Parameters
    ----------
    network:
        The road network whose (thresholded) connectivity drives diffusion.
    kind:
        ``"speed"`` (METR-LA / PEMS-BAY style) or ``"flow"`` (PEMS04/08).
    """
    if kind not in ("speed", "flow"):
        raise ValueError(f"kind must be 'speed' or 'flow', got {kind!r}")
    config = config or SimulationConfig()
    rng = rng or np.random.default_rng(0)
    num_nodes = network.num_nodes

    finite = np.isfinite(network.distances) & (network.distances > 0)
    adjacency = np.where(finite, np.exp(-network.distances / 0.3), 0.0)
    transition = forward_transition(adjacency.astype(np.float32)).astype(np.float64)
    np.fill_diagonal(transition, 0.0)  # diffusion is strictly from *other* nodes
    rowsum = transition.sum(axis=1, keepdims=True)
    rowsum[rowsum == 0] = 1.0
    transition = transition / rowsum

    tod, dow = time_indices(num_steps, config.steps_per_day, config.start_day_of_week)
    hours = tod / config.steps_per_day * 24.0

    # --- inherent signal -------------------------------------------------
    profile = _daily_profile(tod, config.steps_per_day, rng, num_nodes)
    weekday_scale = np.where(dow >= 5, config.weekend_factor, 1.0)[:, None]

    # Day-to-day amplitude variation: every (day, node) gets its own demand
    # level.  A seasonal-profile model (HA) cannot see it; a model reading
    # the recent history can — this is what separates the two families on
    # the real datasets, where HA is the weakest baseline (Table 3).
    num_days = num_steps // config.steps_per_day + 1
    day_levels = 1.0 + config.day_variation * rng.standard_normal((num_days, num_nodes))
    day_levels = np.clip(day_levels, 0.4, None)
    day_index = np.arange(num_steps) // config.steps_per_day
    inherent = profile * weekday_scale * day_levels[day_index]

    noise = np.zeros((num_steps, num_nodes))
    shocks = rng.normal(0.0, config.noise_scale, size=(num_steps, num_nodes))
    for t in range(1, num_steps):
        noise[t] = config.ar_coefficient * noise[t - 1] + shocks[t]
    inherent = inherent + noise

    # Congestion events: localized demand surges (accidents, closures) that
    # build up and decay over 1-2 hours — predictable from recent readings,
    # invisible to a seasonal profile.
    if config.event_rate > 0:
        starts = rng.random((num_steps, num_nodes)) < config.event_rate
        for t0, node in zip(*np.nonzero(starts)):
            duration = int(rng.integers(*config.event_duration))
            magnitude = config.event_magnitude * rng.uniform(0.5, 1.5)
            span = np.arange(t0, min(t0 + duration, num_steps))
            envelope = np.sin(np.linspace(0.0, np.pi, len(span)))
            inherent[span, node] += magnitude * envelope
    inherent = np.clip(inherent, 0.0, None)

    # --- diffusion signal -------------------------------------------------
    # Time-varying coupling: the network couples more tightly at rush hours
    # (Fig. 2(c): sensors 3/4 strongly affect sensor 2 at 8am, weakly at 10am).
    rush = np.exp(-0.5 * ((hours - 8.0) / 1.5) ** 2) + np.exp(
        -0.5 * ((hours - 17.5) / 1.5) ** 2
    )
    coupling_t = config.coupling * (
        (1.0 - config.dynamic_coupling_amplitude)
        + config.dynamic_coupling_amplitude * rush / max(rush.max(), 1e-9)
    )  # (T,)
    # Per-edge random modulation phase: different edges peak at slightly
    # different times, so the *pattern* of spatial dependency changes too.
    edge_phase = rng.uniform(-1.0, 1.0, size=transition.shape)
    lag_weights = np.array([0.5, 0.3, 0.2])[: config.max_lag]
    lag_weights = lag_weights / lag_weights.sum()

    total = np.zeros((num_steps, num_nodes))
    diffusion = np.zeros((num_steps, num_nodes))
    for t in range(num_steps):
        incoming = np.zeros(num_nodes)
        modulation = 1.0 + 0.3 * np.sin(2.0 * np.pi * hours[t] / 24.0 + edge_phase)
        p_t = transition * modulation
        p_t = p_t / np.maximum(p_t.sum(axis=1, keepdims=True), 1e-9)
        for lag, weight in enumerate(lag_weights, start=1):
            if t - lag >= 0:
                incoming += weight * (p_t @ total[t - lag])
        diffusion[t] = coupling_t[t] * incoming
        total[t] = inherent[t] + diffusion[t]

    # --- observation mapping ---------------------------------------------
    if kind == "speed":
        load = total / max(total.max(), 1e-9)
        values = np.clip(
            config.free_flow_speed * (1.0 - 0.75 * load)
            + rng.normal(0.0, 0.8, size=total.shape),
            0.0,
            config.speed_limit,
        )
    else:
        load = total / max(total.max(), 1e-9)
        values = np.clip(
            np.round(config.flow_scale * load + rng.normal(0.0, 3.0, size=total.shape)),
            0.0,
            None,
        )

    # --- sensor drift -------------------------------------------------------
    # Miscalibration, not darkness: a random subset of sensors slowly gains
    # an additive bias (random sign per sensor, linear ramp from a random
    # onset).  The readings stay plausible — which is exactly what makes
    # drift harder to catch than zero-coded outages.  The applied bias is
    # kept on the returned series so tests and the drift scenario can read
    # the ground truth back.
    drift_bias = None
    if config.drift_rate > 0 and config.drift_fraction > 0:
        num_drifting = max(1, int(round(config.drift_fraction * num_nodes)))
        drifting = rng.choice(num_nodes, size=num_drifting, replace=False)
        earliest = int(config.drift_onset * num_steps)
        onsets = rng.integers(earliest, max(earliest + 1, num_steps), size=num_drifting)
        signs = np.where(rng.random(num_drifting) < 0.5, -1.0, 1.0)
        drift_bias = np.zeros((num_steps, num_nodes))
        steps = np.arange(num_steps)[:, None]
        ramp = np.clip(steps - onsets[None, :], 0, None) * config.drift_rate
        drift_bias[:, drifting] = signs[None, :] * ramp
        upper = config.speed_limit if kind == "speed" else None
        values = np.clip(values + drift_bias, 0.0, upper)

    # --- sensor outages -----------------------------------------------------
    failure_mask = np.zeros((num_steps, num_nodes), dtype=bool)
    if config.failure_rate > 0:
        starts = rng.random((num_steps, num_nodes)) < config.failure_rate
        low, high = config.failure_duration
        for t, i in zip(*np.nonzero(starts)):
            duration = int(rng.integers(low, high + 1))
            failure_mask[t : t + duration, i] = True
        values = np.where(failure_mask, 0.0, values)

    return TrafficSeries(
        values=values.astype(np.float32),
        inherent=inherent.astype(np.float32),
        diffusion=diffusion.astype(np.float32),
        time_of_day=tod,
        day_of_week=dow,
        failure_mask=failure_mask,
        kind=kind,
        config=config,
        drift_bias=None if drift_bias is None else drift_bias.astype(np.float32),
    )
