"""Composable mid-stream traffic events: the scenario engine's vocabulary.

The simulator (:mod:`repro.data.simulator`) generates a *static* world —
one :class:`~repro.data.SimulationConfig` governs the whole run.  This
module adds the dynamic layer the D²STGNN premise actually calls for: a
**scenario** is a seeded, composable list of timed events applied to a base
:class:`~repro.data.TrafficSeries` stream, each declaring the ground-truth
footprint it perturbed so evaluation can report *conditional* accuracy
(affected vs. unaffected nodes, during vs. outside the event).

Event types
-----------

* :class:`Incident` — a capacity cut at one node for a window, with
  congestion spillover to its upstream neighbours (the nodes whose traffic
  feeds the incident site).
* :class:`RoadClosure` — sensors on the closed road go dark (null-coded)
  and every edge touching the closed nodes is removed from the adjacency;
  the closure *emits a rewritten adjacency mid-stream* through the applied
  scenario's :attr:`~AppliedScenario.graph_timeline`, which the serving
  harness threads through the engines as a graph-version bump.
* :class:`DemandSurge` — a rush-hour-style demand multiplier over a node
  set.
* :class:`SpecialEvent` — a localized hotspot (stadium, parade) whose
  severity decays radially over :func:`~repro.graph.hop_neighborhood`
  rings around a center node.
* :class:`SensorBias` — drift/miscalibration: an additive bias ramp on a
  sensor set (random sign per sensor from the event's seed), generalizing
  the ``sensor-drift`` simulator preset to a timed, composable event.
* :class:`RegimeShift` — a permanent daily-profile change from one step
  onward: the stream follows a DST-style time-shifted (and optionally
  re-levelled) version of itself.

Composition contract
--------------------

:func:`apply_events` is **commutative** in the event list: events are
internally sorted into a canonical order and combined through stages that
are themselves order-free (time-rebase offsets add; multiplicative fields
multiply; additive biases add; closure nulls union), so two scenarios with
the same events in different order produce bit-identical applied series.
With an empty event list the base series is returned untouched — byte
identical, zero RNG draws — extending the simulator's zero-rng-draw
contract to the whole event layer.

Every event constructor takes an explicit ``seed`` (lint rule R011): no
event may draw randomness from ambient state.  Deterministic events simply
never consume theirs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..graph.adjacency import mask_adjacency
from ..graph.partition import hop_neighborhood
from .simulator import TrafficSeries

__all__ = [
    "AppliedScenario",
    "DemandSurge",
    "EVENT_SCENARIOS",
    "Event",
    "GraphUpdate",
    "Incident",
    "RegimeShift",
    "RoadClosure",
    "Scenario",
    "SensorBias",
    "SpecialEvent",
    "apply_events",
    "event_scenario",
    "seeded_events",
]

# How strongly a unit of event severity congests a speed reading: matches
# the simulator's load->speed mapping (speed = free_flow * (1 - 0.75 load)).
_SPEED_CONGESTION_GAIN = 0.75
_MIN_SPEED_FACTOR = 0.05


class Event:
    """Base class for timed stream events.

    Concrete events are frozen dataclasses declaring ``start`` (step index
    into the stream), usually ``duration`` (steps; ``None`` = to the end of
    the stream), and always an explicit ``seed`` (R011).  Subclasses
    override the stage hooks they participate in; everything defaults to
    "no contribution", so each event perturbs exactly one stage and the
    combination stays commutative.
    """

    start: int
    duration: int | None
    seed: int

    # -- geometry ------------------------------------------------------
    def window(self, num_steps: int) -> tuple[int, int]:
        """The half-open ``[t0, t1)`` step range the event is active in."""
        t0 = max(0, int(self.start))
        duration = getattr(self, "duration", None)
        t1 = num_steps if duration is None else min(num_steps, t0 + int(duration))
        return t0, max(t0, t1)

    def affected_nodes(self, adjacency: np.ndarray) -> np.ndarray:
        """Sorted node ids whose ground truth this event perturbs."""
        raise NotImplementedError

    def effect_mask(self, num_steps: int, adjacency: np.ndarray) -> np.ndarray:
        """Ground-truth ``(T, N)`` boolean footprint of the event."""
        t0, t1 = self.window(num_steps)
        mask = np.zeros((num_steps, adjacency.shape[0]), dtype=bool)
        if t1 > t0:
            mask[t0:t1, self.affected_nodes(adjacency)] = True
        return mask

    def describe(self) -> dict:
        """JSON-safe summary of the event (type plus its fields)."""
        fields = dataclasses.asdict(self)  # type: ignore[call-overload]
        for key, value in fields.items():
            if isinstance(value, tuple):
                fields[key] = list(value)
        return {"type": type(self).__name__, **fields}

    # -- stage hooks ---------------------------------------------------
    def _shift_steps(self) -> int:
        """Time-rebase contribution (RegimeShift only)."""
        return 0

    def _factor_field(
        self, num_steps: int, adjacency: np.ndarray, kind: str
    ) -> np.ndarray | None:
        """Multiplicative ``(T, N)`` field, or None for no contribution."""
        return None

    def _bias_field(
        self, num_steps: int, adjacency: np.ndarray, kind: str
    ) -> np.ndarray | None:
        """Additive ``(T, N)`` field, or None for no contribution."""
        return None

    def _null_field(self, num_steps: int, adjacency: np.ndarray) -> np.ndarray | None:
        """``(T, N)`` mask of readings forced to the null code, or None."""
        return None

    def _closed_nodes(self) -> tuple[int, ...]:
        """Nodes whose edges are removed while the event is active."""
        return ()

    # -- shared helpers ------------------------------------------------
    def _validate_window(self) -> None:
        if int(self.start) < 0:
            raise ValueError(f"{type(self).__name__}.start must be >= 0")
        duration = getattr(self, "duration", None)
        if duration is not None and int(duration) < 1:
            raise ValueError(f"{type(self).__name__}.duration must be >= 1")

    def _severity_to_factor(self, severity: np.ndarray, kind: str) -> np.ndarray:
        """Map a severity field (0 = untouched) to a value multiplier.

        Speed datasets congest downward (bounded away from zero); flow
        datasets count the extra vehicles upward.
        """
        if kind == "speed":
            return np.maximum(
                1.0 - _SPEED_CONGESTION_GAIN * severity, _MIN_SPEED_FACTOR
            )
        return 1.0 + severity

    def _sin_envelope(self, num_steps: int) -> np.ndarray:
        """Smooth build-up/decay over the window, like simulator incidents."""
        t0, t1 = self.window(num_steps)
        envelope = np.zeros(num_steps)
        span = t1 - t0
        if span > 0:
            envelope[t0:t1] = np.sin(np.pi * (np.arange(span) + 0.5) / span)
        return envelope


def _node_tuple(nodes) -> tuple[int, ...]:
    return tuple(int(node) for node in nodes)


def _check_nodes(event: Event, nodes, num_nodes: int) -> np.ndarray:
    nodes = np.asarray(sorted(set(int(n) for n in nodes)), dtype=np.int64)
    if nodes.size and (nodes.min() < 0 or nodes.max() >= num_nodes):
        raise ValueError(
            f"{type(event).__name__} references nodes outside [0, {num_nodes})"
        )
    return nodes


@dataclass(frozen=True)
class Incident(Event):
    """A capacity cut at ``node`` with spillover to upstream neighbours.

    ``severity`` is the fractional capacity lost at the incident site;
    upstream neighbours (nodes with an edge *into* ``node`` — where the
    queue builds) receive ``severity * spillover``.  The temporal envelope
    builds up and decays smoothly over the window.
    """

    start: int
    node: int
    duration: int = 12
    severity: float = 0.5
    spillover: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        self._validate_window()
        if not 0.0 < self.severity <= 2.0:
            raise ValueError("Incident.severity must be in (0, 2]")
        if not 0.0 <= self.spillover <= 1.0:
            raise ValueError("Incident.spillover must be in [0, 1]")

    def _upstream(self, adjacency: np.ndarray) -> np.ndarray:
        incoming = np.asarray(adjacency)[:, self.node].copy()
        incoming[self.node] = 0.0
        return np.nonzero(incoming != 0)[0].astype(np.int64)

    def affected_nodes(self, adjacency: np.ndarray) -> np.ndarray:
        node = _check_nodes(self, [self.node], adjacency.shape[0])
        return np.union1d(node, self._upstream(adjacency))

    def _factor_field(self, num_steps, adjacency, kind):
        _check_nodes(self, [self.node], adjacency.shape[0])
        severity = np.zeros(adjacency.shape[0])
        severity[self.node] = self.severity
        severity[self._upstream(adjacency)] = self.severity * self.spillover
        field = self._sin_envelope(num_steps)[:, None] * severity[None, :]
        return self._severity_to_factor(field, kind)


@dataclass(frozen=True)
class RoadClosure(Event):
    """A closed road: its sensors go dark and its edges leave the graph.

    While active, readings at ``nodes`` are forced to the null code (the
    same zero-coding the outage pipeline handles) and
    :func:`apply_events` emits a rewritten adjacency with every edge
    touching the closed nodes removed — the mid-stream graph change the
    serving stack must absorb as a graph-version bump.
    """

    start: int
    nodes: tuple[int, ...]
    duration: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", _node_tuple(self.nodes))
        self._validate_window()
        if not self.nodes:
            raise ValueError("RoadClosure needs at least one node")

    def affected_nodes(self, adjacency: np.ndarray) -> np.ndarray:
        return _check_nodes(self, self.nodes, adjacency.shape[0])

    def _null_field(self, num_steps, adjacency):
        mask = np.zeros((num_steps, adjacency.shape[0]), dtype=bool)
        t0, t1 = self.window(num_steps)
        mask[t0:t1, self.affected_nodes(adjacency)] = True
        return mask

    def _closed_nodes(self) -> tuple[int, ...]:
        return self.nodes


@dataclass(frozen=True)
class DemandSurge(Event):
    """A flat demand multiplier over a node set (rush hour that will not end)."""

    start: int
    nodes: tuple[int, ...]
    duration: int = 36
    magnitude: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", _node_tuple(self.nodes))
        self._validate_window()
        if not self.nodes:
            raise ValueError("DemandSurge needs at least one node")
        if not 0.0 < self.magnitude <= 2.0:
            raise ValueError("DemandSurge.magnitude must be in (0, 2]")

    def affected_nodes(self, adjacency: np.ndarray) -> np.ndarray:
        return _check_nodes(self, self.nodes, adjacency.shape[0])

    def _factor_field(self, num_steps, adjacency, kind):
        severity = np.zeros((num_steps, adjacency.shape[0]))
        t0, t1 = self.window(num_steps)
        severity[t0:t1, self.affected_nodes(adjacency)] = self.magnitude
        return self._severity_to_factor(severity, kind)


@dataclass(frozen=True)
class SpecialEvent(Event):
    """A localized hotspot with radial decay over hop rings.

    ``center`` takes the full ``magnitude``; each successive
    :func:`~repro.graph.hop_neighborhood` ring out to ``hops`` receives
    ``magnitude * decay**ring``.  The temporal envelope builds and decays
    smoothly (crowds arrive, crowds leave).
    """

    start: int
    center: int
    duration: int = 36
    hops: int = 2
    magnitude: float = 0.6
    decay: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        self._validate_window()
        if self.hops < 0:
            raise ValueError("SpecialEvent.hops must be >= 0")
        if not 0.0 < self.magnitude <= 2.0:
            raise ValueError("SpecialEvent.magnitude must be in (0, 2]")
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("SpecialEvent.decay must be in [0, 1]")

    def _rings(self, adjacency: np.ndarray) -> list[np.ndarray]:
        _check_nodes(self, [self.center], adjacency.shape[0])
        rings = [np.asarray([self.center], dtype=np.int64)]
        covered = rings[0]
        for _ in range(self.hops):
            ring = hop_neighborhood(adjacency, covered, hops=1)
            if ring.size == 0:
                break
            rings.append(ring)
            covered = np.union1d(covered, ring)
        return rings

    def affected_nodes(self, adjacency: np.ndarray) -> np.ndarray:
        return np.sort(np.concatenate(self._rings(adjacency)))

    def _factor_field(self, num_steps, adjacency, kind):
        severity = np.zeros(adjacency.shape[0])
        for ring_index, ring in enumerate(self._rings(adjacency)):
            severity[ring] = self.magnitude * self.decay**ring_index
        field = self._sin_envelope(num_steps)[:, None] * severity[None, :]
        return self._severity_to_factor(field, kind)


@dataclass(frozen=True)
class SensorBias(Event):
    """Miscalibration drift: an additive bias ramp on a sensor set.

    Each sensor's drift sign is drawn from the event's own seeded RNG, so
    the same event is bit-reproducible; ``rate`` is the bias added per step
    from onset.  ``duration=None`` drifts to the end of the stream; a finite
    window models a recalibration that snaps the sensors back.
    """

    start: int
    nodes: tuple[int, ...]
    rate: float = 0.05
    duration: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", _node_tuple(self.nodes))
        self._validate_window()
        if not self.nodes:
            raise ValueError("SensorBias needs at least one node")
        if self.rate <= 0:
            raise ValueError("SensorBias.rate must be positive")

    def affected_nodes(self, adjacency: np.ndarray) -> np.ndarray:
        return _check_nodes(self, self.nodes, adjacency.shape[0])

    def _bias_field(self, num_steps, adjacency, kind):
        nodes = self.affected_nodes(adjacency)
        signs = np.where(
            np.random.default_rng(self.seed).random(nodes.size) < 0.5, -1.0, 1.0
        )
        t0, t1 = self.window(num_steps)
        bias = np.zeros((num_steps, adjacency.shape[0]))
        if t1 > t0:
            ramp = (np.arange(t0, t1) - t0 + 1)[:, None] * self.rate
            bias[t0:t1, nodes] = signs[None, :] * ramp
        return bias


@dataclass(frozen=True)
class RegimeShift(Event):
    """A permanent daily-profile change from ``start`` onward.

    DST-style: from the shift point the stream follows a version of itself
    displaced by ``shift_steps`` (the 7am peak happens at 8am), optionally
    re-levelled by ``level`` (a structural demand change).  Affects every
    node, forever — the event the conditional metrics should show *never*
    recovering, unlike the windowed events.
    """

    start: int
    shift_steps: int = 12
    level: float = 1.0
    seed: int = 0
    duration = None  # permanent, by definition

    def __post_init__(self) -> None:
        self._validate_window()
        if self.shift_steps == 0 and self.level == 1.0:
            raise ValueError("RegimeShift must shift time and/or change level")
        if self.level <= 0:
            raise ValueError("RegimeShift.level must be positive")

    def affected_nodes(self, adjacency: np.ndarray) -> np.ndarray:
        return np.arange(adjacency.shape[0], dtype=np.int64)

    def _shift_steps(self) -> int:
        return int(self.shift_steps)

    def _factor_field(self, num_steps, adjacency, kind):
        if self.level == 1.0:
            return None
        field = np.ones((num_steps, adjacency.shape[0]))
        t0, t1 = self.window(num_steps)
        field[t0:t1] = self.level
        return field


@dataclass(frozen=True)
class GraphUpdate:
    """One mid-stream adjacency rewrite: active closures changed at ``tick``.

    ``closed_nodes`` is the union of every closure active from this tick on
    (empty = the base graph is restored); ``adjacency`` is the full rewritten
    matrix serving should switch to.
    """

    tick: int
    closed_nodes: tuple[int, ...]
    adjacency: np.ndarray


@dataclass(frozen=True)
class Scenario:
    """A named, seeded list of events applied to one base stream."""

    name: str
    events: tuple[Event, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))


@dataclass
class AppliedScenario:
    """The result of applying a scenario's events to a base series.

    ``series`` is the perturbed stream (what serving observes); ``base`` the
    untouched original (with no events they are the same object —
    byte-identical by construction).  ``masks`` maps each event's label to
    its ground-truth ``(T, N)`` effect footprint; ``graph_timeline`` holds
    the adjacency rewrites closures emit, in tick order.
    """

    series: TrafficSeries
    base: TrafficSeries
    events: tuple[Event, ...]
    labels: tuple[str, ...]
    masks: dict[str, np.ndarray]
    graph_timeline: tuple[GraphUpdate, ...]
    base_adjacency: np.ndarray


def _canonical_order(events: tuple[Event, ...]) -> list[Event]:
    # repr of a frozen dataclass is a deterministic function of its fields,
    # so sorting by (type, repr) fixes one application order for any
    # permutation of the same event list — the commutativity guarantee is
    # bit-exact, not merely approximate.
    return sorted(events, key=lambda event: (type(event).__name__, repr(event)))


def _event_labels(ordered: list[Event]) -> dict[int, str]:
    """Stable, order-independent labels: ``type@start`` with dedup suffixes."""
    labels: dict[int, str] = {}
    seen: dict[str, int] = {}
    for event in ordered:
        base = f"{type(event).__name__.lower()}@{int(event.start)}"
        count = seen.get(base, 0)
        seen[base] = count + 1
        labels[id(event)] = base if count == 0 else f"{base}#{count + 1}"
    return labels


def _closure_timeline(
    ordered: list[Event], num_steps: int, adjacency: np.ndarray
) -> tuple[GraphUpdate, ...]:
    """Adjacency rewrites at every closure boundary (commutative by union)."""
    closures = [event for event in ordered if event._closed_nodes()]
    if not closures:
        return ()
    boundaries = sorted(
        {t for event in closures for t in event.window(num_steps) if t < num_steps}
    )
    timeline = []
    previous: tuple[int, ...] | None = None
    for tick in boundaries:
        closed: set[int] = set()
        for event in closures:
            t0, t1 = event.window(num_steps)
            if t0 <= tick < t1:
                closed.update(event._closed_nodes())
        closed_nodes = tuple(sorted(closed))
        if closed_nodes == previous:
            continue
        previous = closed_nodes
        rewritten = (
            mask_adjacency(adjacency, nodes=closed_nodes)
            if closed_nodes
            else np.array(adjacency, copy=True)
        )
        timeline.append(
            GraphUpdate(tick=tick, closed_nodes=closed_nodes, adjacency=rewritten)
        )
    return tuple(timeline)


def apply_events(
    series: TrafficSeries,
    events,
    adjacency: np.ndarray,
) -> AppliedScenario:
    """Apply ``events`` to ``series``, returning the perturbed stream.

    Order-free by construction: events are canonically sorted, then
    combined through commuting stages — time rebase (RegimeShift offsets
    add), multiplicative fields (factors multiply), additive biases (sum),
    and closure nulls (union) — followed by one clip to the physical range.
    An empty event list returns the base series object untouched: byte
    identical, zero RNG draws.
    """
    events = tuple(events)
    adjacency = np.asarray(adjacency)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if not events:
        return AppliedScenario(
            series=series, base=series, events=(), labels=(), masks={},
            graph_timeline=(), base_adjacency=adjacency,
        )
    num_steps, num_nodes = series.values.shape
    if adjacency.shape[0] != num_nodes:
        raise ValueError(
            f"adjacency covers {adjacency.shape[0]} nodes, series has {num_nodes}"
        )
    ordered = _canonical_order(events)
    labels_by_id = _event_labels(ordered)

    values = np.asarray(series.values, dtype=np.float64)

    # Stage 1 — time rebase: per-step shift offsets add across events.
    shift = np.zeros(num_steps, dtype=np.int64)
    for event in ordered:
        steps = event._shift_steps()
        if steps:
            t0, _ = event.window(num_steps)
            shift[t0:] += steps
    if shift.any():
        source = np.clip(np.arange(num_steps) - shift, 0, num_steps - 1)
        values = values[source]

    # Stage 2 — multiplicative fields (surges, incidents, hotspots, levels).
    for event in ordered:
        factor = event._factor_field(num_steps, adjacency, series.kind)
        if factor is not None:
            values = values * factor

    # Stage 3 — additive biases (drift/miscalibration).
    for event in ordered:
        bias = event._bias_field(num_steps, adjacency, series.kind)
        if bias is not None:
            values = values + bias

    # One physical clip after all value stages (order-free because it is
    # applied once, not per event).
    upper = series.config.speed_limit if series.kind == "speed" else None
    values = np.clip(values, 0.0, upper)

    # Stage 4 — closure nulls: union of dark sensors, zero-coded like outages.
    nulls = np.zeros((num_steps, num_nodes), dtype=bool)
    for event in ordered:
        field = event._null_field(num_steps, adjacency)
        if field is not None:
            nulls |= field
    if nulls.any():
        values = np.where(nulls, 0.0, values)

    masks = {
        labels_by_id[id(event)]: event.effect_mask(num_steps, adjacency)
        for event in ordered
    }
    applied = dataclasses.replace(
        series,
        values=values.astype(np.float32),
        failure_mask=series.failure_mask | nulls,
    )
    return AppliedScenario(
        series=applied,
        base=series,
        events=events,
        labels=tuple(labels_by_id[id(event)] for event in events),
        masks=masks,
        graph_timeline=_closure_timeline(ordered, num_steps, adjacency),
        base_adjacency=adjacency,
    )


# ----------------------------------------------------------------------
# Seeded schedules and named scenario presets
# ----------------------------------------------------------------------

def seeded_events(
    adjacency: np.ndarray,
    num_steps: int,
    *,
    incidents: int = 0,
    closures: int = 0,
    surges: int = 0,
    specials: int = 0,
    biases: int = 0,
    shifts: int = 0,
    seed: int = 0,
) -> tuple[Event, ...]:
    """Draw a deterministic event schedule from one seeded stream.

    The scenario-engine counterpart of
    :meth:`repro.faults.ServeFaultSchedule.seeded`: all draws come from a
    single ``default_rng(seed)`` in a fixed order, so the same seed yields a
    bit-identical schedule.  Events are placed so their windows fit inside
    ``[0, num_steps)``.
    """
    if num_steps < 8:
        raise ValueError("num_steps must be >= 8 to place events")
    adjacency = np.asarray(adjacency)
    num_nodes = adjacency.shape[0]
    rng = np.random.default_rng(seed)

    def _start(duration: int) -> int:
        return int(rng.integers(0, max(1, num_steps - duration)))

    def _nodes(count: int) -> tuple[int, ...]:
        count = min(count, num_nodes)
        return tuple(sorted(int(n) for n in rng.choice(num_nodes, count, replace=False)))

    events: list[Event] = []
    for _ in range(incidents):
        duration = int(rng.integers(6, max(7, num_steps // 2)))
        events.append(Incident(
            start=_start(duration), node=int(rng.integers(num_nodes)),
            duration=duration, severity=float(rng.uniform(0.3, 0.8)),
            spillover=float(rng.uniform(0.3, 0.7)), seed=int(rng.integers(2**31)),
        ))
    for _ in range(closures):
        duration = int(rng.integers(6, max(7, num_steps // 2)))
        events.append(RoadClosure(
            start=_start(duration), nodes=_nodes(max(1, num_nodes // 8)),
            duration=duration, seed=int(rng.integers(2**31)),
        ))
    for _ in range(surges):
        duration = int(rng.integers(8, max(9, (2 * num_steps) // 3)))
        events.append(DemandSurge(
            start=_start(duration), nodes=_nodes(max(1, num_nodes // 3)),
            duration=duration, magnitude=float(rng.uniform(0.4, 0.9)),
            seed=int(rng.integers(2**31)),
        ))
    for _ in range(specials):
        duration = int(rng.integers(8, max(9, num_steps // 2)))
        events.append(SpecialEvent(
            start=_start(duration), center=int(rng.integers(num_nodes)),
            duration=duration, hops=2, magnitude=float(rng.uniform(0.4, 0.9)),
            seed=int(rng.integers(2**31)),
        ))
    for _ in range(biases):
        events.append(SensorBias(
            start=_start(num_steps // 2), nodes=_nodes(max(1, num_nodes // 4)),
            rate=float(rng.uniform(0.02, 0.08)), seed=int(rng.integers(2**31)),
        ))
    for _ in range(shifts):
        events.append(RegimeShift(
            start=_start(num_steps // 2), shift_steps=int(rng.integers(3, 13)),
            level=float(rng.uniform(0.8, 1.2)), seed=int(rng.integers(2**31)),
        ))
    return tuple(events)


EVENT_SCENARIOS: dict[str, str] = {
    "quiet-day": "no events: the bit-identity control scenario",
    "closure-rush": (
        "a demand surge, an upstream incident, and a road closure that "
        "rewrites the adjacency mid-stream"
    ),
    "stadium-day": (
        "a special-event hotspot with radial decay, plus a demand surge "
        "and an incident"
    ),
    "sensor-rot": "sensor bias drift plus a permanent regime shift",
}


def event_scenario(
    name: str, adjacency: np.ndarray, num_steps: int, *, seed: int = 0
) -> Scenario:
    """Build a named event scenario for one graph and stream length.

    Scenarios are parameterized by the graph (node picks) and the replay
    length (event timing scales with ``num_steps``); the same
    ``(name, adjacency, num_steps, seed)`` always yields a bit-identical
    scenario.  Unknown names raise a ``KeyError`` listing what is
    available, mirroring :func:`repro.data.scenario_config`.
    """
    if name not in EVENT_SCENARIOS:
        raise KeyError(
            f"unknown event scenario {name!r}; available: {sorted(EVENT_SCENARIOS)}"
        )
    if num_steps < 16:
        raise ValueError("num_steps must be >= 16 to place scenario events")
    adjacency = np.asarray(adjacency)
    num_nodes = adjacency.shape[0]
    rng = np.random.default_rng(seed)
    events: tuple[Event, ...] = ()
    if name == "closure-rush":
        surge_nodes = tuple(sorted(
            int(n) for n in rng.choice(num_nodes, max(2, num_nodes // 2), replace=False)
        ))
        closed = tuple(sorted(
            int(n) for n in rng.choice(num_nodes, max(1, num_nodes // 8), replace=False)
        ))
        incident_node = int(rng.integers(num_nodes))
        events = (
            DemandSurge(
                start=num_steps // 8, nodes=surge_nodes,
                duration=(3 * num_steps) // 4, magnitude=0.8,
                seed=int(rng.integers(2**31)),
            ),
            Incident(
                start=num_steps // 6, node=incident_node,
                duration=max(6, num_steps // 4), severity=0.7,
                seed=int(rng.integers(2**31)),
            ),
            RoadClosure(
                start=num_steps // 3, nodes=closed,
                duration=max(6, num_steps // 4), seed=int(rng.integers(2**31)),
            ),
        )
    elif name == "stadium-day":
        center = int(rng.integers(num_nodes))
        surge_nodes = tuple(sorted(
            int(n) for n in rng.choice(num_nodes, max(2, num_nodes // 3), replace=False)
        ))
        events = (
            SpecialEvent(
                start=num_steps // 5, center=center,
                duration=max(8, num_steps // 2), hops=2, magnitude=0.9,
                seed=int(rng.integers(2**31)),
            ),
            DemandSurge(
                start=num_steps // 4, nodes=surge_nodes,
                duration=max(8, num_steps // 3), magnitude=0.5,
                seed=int(rng.integers(2**31)),
            ),
            Incident(
                start=num_steps // 2, node=center,
                duration=max(6, num_steps // 5), severity=0.6,
                seed=int(rng.integers(2**31)),
            ),
        )
    elif name == "sensor-rot":
        drifting = tuple(sorted(
            int(n) for n in rng.choice(num_nodes, max(1, num_nodes // 4), replace=False)
        ))
        events = (
            SensorBias(
                start=num_steps // 6, nodes=drifting, rate=0.05,
                seed=int(rng.integers(2**31)),
            ),
            RegimeShift(
                start=num_steps // 2, shift_steps=max(3, num_steps // 10),
                level=1.1, seed=int(rng.integers(2**31)),
            ),
        )
    return Scenario(name=name, events=events, seed=seed)
