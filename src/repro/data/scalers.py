"""Feature scaling.

Traffic models are trained on z-scored inputs and evaluated in original
units; the scaler must therefore round-trip exactly and must ignore the
zero-encoded missing observations when estimating statistics (otherwise a
long METR-LA outage biases the mean).
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Z-score normalisation fit on (optionally masked) training data.

    ``mask_nulls=True`` additionally maps entries equal to ``null_value`` to
    0.0 in *scaled* space (the training mean — a neutral input).  Without it,
    a zero-encoded sensor outage is z-scored like a real observation and
    reaches the model as the extreme value ``(0 - mean) / std``, even though
    every loss and metric masks it out of the target side.
    """

    def __init__(self, null_value: float | None = 0.0, mask_nulls: bool = False) -> None:
        self.null_value = null_value
        self.mask_nulls = mask_nulls
        self.mean: float | None = None
        self.std: float | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        if self.null_value is not None:
            mask = ~np.isclose(values, self.null_value)
            if not mask.any():
                raise ValueError("all values equal the null value; cannot fit scaler")
            values = values[mask]
        self.mean = float(values.mean())
        self.std = float(values.std())
        if self.std == 0.0:
            self.std = 1.0
        return self

    def _require_fit(self) -> None:
        if self.mean is None or self.std is None:
            raise RuntimeError("scaler used before fit()")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fit()
        values = np.asarray(values)
        scaled = ((values - self.mean) / self.std).astype(np.float32)
        if self.mask_nulls and self.null_value is not None:
            scaled[np.isclose(values, self.null_value)] = 0.0
        return scaled

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fit()
        return (np.asarray(values) * self.std + self.mean).astype(np.float32)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
