"""Named traffic-scenario presets for the simulator.

Each scenario is a :class:`~repro.data.SimulationConfig` tuned to stress a
different aspect of a forecaster.  They back the robustness example
(``examples/scenario_shift.py``) and give users reproducible workloads
beyond the four dataset presets.
"""

from __future__ import annotations

from dataclasses import replace

from .simulator import SimulationConfig

__all__ = ["SCENARIOS", "scenario_config"]

# The baseline generator configuration every scenario derives from.
_BASE = SimulationConfig()

SCENARIOS: dict[str, SimulationConfig] = {
    # The default mixture (what the dataset presets use).
    "normal": _BASE,
    # Heavy, unpredictable congestion: frequent incidents of large
    # magnitude.  Stresses a model's reliance on the seasonal pattern.
    "incident-heavy": replace(
        _BASE, event_rate=0.008, event_magnitude=1.6, noise_scale=0.14
    ),
    # A tightly coupled network where most signal diffuses from neighbours:
    # spatial modeling dominates.  (Coupling stays < 1 for stability.)
    "diffusion-dominant": replace(
        _BASE, coupling=0.85, dynamic_coupling_amplitude=0.3, event_rate=0.001
    ),
    # Nearly uncoupled sensors: a graph model gains little; the inherent
    # model carries the forecast.
    "isolated": replace(_BASE, coupling=0.1, dynamic_coupling_amplitude=0.2),
    # Unreliable sensing: long and frequent outages.  Stresses the masked
    # loss and the robustness behaviour of Fig. 8.
    "flaky-sensors": replace(
        _BASE, failure_rate=0.004, failure_duration=(12, 72)
    ),
    # Calm, highly periodic traffic (suburban weekend): the regime where
    # Historical Average is hardest to beat.
    "quiet": replace(
        _BASE, noise_scale=0.04, day_variation=0.08, event_rate=0.0003,
        dynamic_coupling_amplitude=0.3,
    ),
    # Miscalibrated sensing: a third of the sensors slowly gain an additive
    # bias ramp (random sign, random onset past a quarter of the run) while
    # staying online — drift, not darkness.  Outages are turned off so the
    # stress is pure bias: readings remain plausible, which defeats the
    # zero-coded outage handling and stresses a serving stack's accuracy
    # degradation instead (ROADMAP item 4).
    "sensor-drift": replace(
        _BASE, drift_rate=0.03, drift_fraction=0.3, drift_onset=0.25,
        failure_rate=0.0,
    ),
}


def scenario_config(name: str) -> SimulationConfig:
    """Return the :class:`SimulationConfig` for a named scenario."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    return SCENARIOS[name]
