"""Traffic data substrate: simulator, presets, windowing, scaling, splits."""

from .datasets import (
    PRESETS,
    DatasetSpec,
    ForecastingData,
    TrafficDataset,
    build_forecasting_data,
    load_dataset,
    scale_profile,
)
from . import io
from .events import (
    EVENT_SCENARIOS,
    AppliedScenario,
    DemandSurge,
    Event,
    GraphUpdate,
    Incident,
    RegimeShift,
    RoadClosure,
    Scenario,
    SensorBias,
    SpecialEvent,
    apply_events,
    event_scenario,
    seeded_events,
)
from .scalers import StandardScaler
from .scenarios import SCENARIOS, scenario_config
from .simulator import SimulationConfig, TrafficSeries, simulate_traffic, time_indices
from .splits import FLOW_SPLIT, SPEED_SPLIT, SplitRatios, chronological_split
from .windows import Batch, BatchIterator, WindowDataset

__all__ = [
    "AppliedScenario",
    "Batch",
    "BatchIterator",
    "DatasetSpec",
    "DemandSurge",
    "EVENT_SCENARIOS",
    "Event",
    "FLOW_SPLIT",
    "ForecastingData",
    "GraphUpdate",
    "Incident",
    "PRESETS",
    "RegimeShift",
    "RoadClosure",
    "SCENARIOS",
    "SPEED_SPLIT",
    "Scenario",
    "SensorBias",
    "SimulationConfig",
    "SpecialEvent",
    "SplitRatios",
    "StandardScaler",
    "TrafficDataset",
    "TrafficSeries",
    "WindowDataset",
    "apply_events",
    "build_forecasting_data",
    "chronological_split",
    "event_scenario",
    "io",
    "load_dataset",
    "scale_profile",
    "scenario_config",
    "seeded_events",
    "simulate_traffic",
    "time_indices",
]
