"""Traffic data substrate: simulator, presets, windowing, scaling, splits."""

from .datasets import (
    PRESETS,
    DatasetSpec,
    ForecastingData,
    TrafficDataset,
    build_forecasting_data,
    load_dataset,
    scale_profile,
)
from . import io
from .scalers import StandardScaler
from .scenarios import SCENARIOS, scenario_config
from .simulator import SimulationConfig, TrafficSeries, simulate_traffic, time_indices
from .splits import FLOW_SPLIT, SPEED_SPLIT, SplitRatios, chronological_split
from .windows import Batch, BatchIterator, WindowDataset

__all__ = [
    "Batch",
    "BatchIterator",
    "DatasetSpec",
    "FLOW_SPLIT",
    "ForecastingData",
    "PRESETS",
    "SCENARIOS",
    "SPEED_SPLIT",
    "SimulationConfig",
    "SplitRatios",
    "StandardScaler",
    "TrafficDataset",
    "TrafficSeries",
    "WindowDataset",
    "build_forecasting_data",
    "chronological_split",
    "io",
    "load_dataset",
    "scale_profile",
    "scenario_config",
    "simulate_traffic",
    "time_indices",
]
