"""Dataset presets and the end-to-end data pipeline.

Four presets mirror the character of the paper's datasets (Table 2) at a
scale pure-numpy training can handle; ``reference_*`` fields record the real
datasets' statistics so benchmark output can print paper-vs-simulated side by
side (used by ``benchmarks/bench_table2_datasets.py`` and EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from ..graph.adjacency import (
    binary_adjacency,
    gaussian_kernel_adjacency,
    shortest_path_distances,
)
from ..graph.road_network import RoadNetwork, generate_road_network
from .scalers import StandardScaler
from .simulator import SimulationConfig, TrafficSeries, simulate_traffic
from .splits import FLOW_SPLIT, SPEED_SPLIT, SplitRatios, chronological_split
from .windows import BatchIterator, WindowDataset, WindowSubset

__all__ = [
    "DatasetSpec",
    "TrafficDataset",
    "ForecastingData",
    "PRESETS",
    "load_dataset",
    "build_forecasting_data",
    "scale_profile",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one simulated dataset preset."""

    name: str
    kind: str  # "speed" | "flow"
    num_nodes: int
    num_steps: int
    split: SplitRatios
    seed: int
    reference_nodes: int  # the real dataset's size, for reporting
    reference_edges: int
    reference_steps: int

    def scaled(self, num_nodes: int | None = None, num_steps: int | None = None) -> "DatasetSpec":
        """Return a copy with overridden size (used by the scale profiles)."""
        changes = {}
        if num_nodes is not None:
            changes["num_nodes"] = num_nodes
        if num_steps is not None:
            changes["num_steps"] = num_steps
        return replace(self, **changes) if changes else self


# Paper Table 2 reference statistics; simulated sizes are the `bench` profile.
PRESETS: dict[str, DatasetSpec] = {
    "metr-la-sim": DatasetSpec(
        name="metr-la-sim", kind="speed", num_nodes=20, num_steps=2304,
        split=SPEED_SPLIT, seed=101,
        reference_nodes=207, reference_edges=1722, reference_steps=34272,
    ),
    "pems-bay-sim": DatasetSpec(
        name="pems-bay-sim", kind="speed", num_nodes=24, num_steps=2880,
        split=SPEED_SPLIT, seed=102,
        reference_nodes=325, reference_edges=2694, reference_steps=52116,
    ),
    "pems04-sim": DatasetSpec(
        name="pems04-sim", kind="flow", num_nodes=20, num_steps=2016,
        split=FLOW_SPLIT, seed=103,
        reference_nodes=307, reference_edges=680, reference_steps=16992,
    ),
    "pems08-sim": DatasetSpec(
        name="pems08-sim", kind="flow", num_nodes=16, num_steps=2016,
        split=FLOW_SPLIT, seed=104,
        reference_nodes=170, reference_edges=548, reference_steps=17856,
    ),
}


def scale_profile() -> str:
    """Profile selected via ``REPRO_BENCH_PROFILE`` (tiny | bench | full)."""
    profile = os.environ.get("REPRO_BENCH_PROFILE", "bench").lower()
    if profile not in ("tiny", "bench", "full"):
        raise ValueError(f"unknown REPRO_BENCH_PROFILE {profile!r}")
    return profile


_PROFILE_SIZES = {
    "tiny": (10, 1200),
    "bench": (None, None),  # preset defaults
    "full": (56, 8064),
}


@dataclass
class TrafficDataset:
    """A generated dataset: series + graph + spec."""

    spec: DatasetSpec
    series: TrafficSeries
    network: RoadNetwork
    adjacency: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_steps(self) -> int:
        return self.series.values.shape[0]

    @property
    def num_edges(self) -> int:
        off_diag = self.adjacency * (1.0 - np.eye(self.num_nodes, dtype=np.float32))
        return int((off_diag > 0).sum())

    @property
    def steps_per_day(self) -> int:
        return self.series.config.steps_per_day


def load_dataset(
    name: str,
    num_nodes: int | None = None,
    num_steps: int | None = None,
    steps_per_day: int | None = None,
    seed: int | None = None,
) -> TrafficDataset:
    """Generate a dataset preset (optionally resized).

    Generation is deterministic given the spec's seed, so every benchmark and
    test sees the same "recording".
    """
    if name not in PRESETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(PRESETS)}")
    profile_nodes, profile_steps = _PROFILE_SIZES[scale_profile()]
    spec = PRESETS[name].scaled(
        num_nodes=num_nodes if num_nodes is not None else profile_nodes,
        num_steps=num_steps if num_steps is not None else profile_steps,
    )
    rng = np.random.default_rng(seed if seed is not None else spec.seed)
    network = generate_road_network(spec.num_nodes, rng)
    config = SimulationConfig()
    if steps_per_day is not None:
        config = replace(config, steps_per_day=steps_per_day)
    series = simulate_traffic(network, spec.num_steps, kind=spec.kind, config=config, rng=rng)
    # Graph construction follows the paper (Sec. 6.1): speed datasets use the
    # DCRNN thresholded Gaussian kernel over road distances (dense); flow
    # datasets use ASTGCN's sparse binary connectivity of direct edges —
    # which is why PEMS04/08 have far fewer edges in Table 2.
    if spec.kind == "speed":
        adjacency = gaussian_kernel_adjacency(
            shortest_path_distances(network.distances), threshold=0.1
        )
    else:
        adjacency = binary_adjacency(network.distances)
        adjacency += np.eye(spec.num_nodes, dtype=np.float32)
    return TrafficDataset(spec=spec, series=series, network=network, adjacency=adjacency)


@dataclass
class ForecastingData:
    """Everything a trainer needs: windows, splits, scaler and the graph."""

    dataset: TrafficDataset
    windows: WindowDataset
    train: WindowSubset
    val: WindowSubset
    test: WindowSubset
    scaler: StandardScaler

    @property
    def adjacency(self) -> np.ndarray:
        return self.dataset.adjacency

    @property
    def steps_per_day(self) -> int:
        return self.dataset.steps_per_day

    def loader(
        self,
        split: str,
        batch_size: int = 32,
        shuffle: bool | None = None,
        rng: np.random.Generator | None = None,
    ) -> BatchIterator:
        subset = {"train": self.train, "val": self.val, "test": self.test}[split]
        if shuffle is None:
            shuffle = split == "train"
        return BatchIterator(subset, batch_size=batch_size, shuffle=shuffle, rng=rng)


def build_forecasting_data(
    dataset: TrafficDataset,
    history: int = 12,
    horizon: int = 12,
    time_channels: bool = False,
    mask_nulls: bool = True,
) -> ForecastingData:
    """Assemble windows, chronological splits and a train-fit scaler.

    The scaler is fit on the *training portion only* (no leakage), masking
    the zero-encoded outages, exactly as the DCRNN/D2STGNN pipelines do.
    With ``mask_nulls`` (the default) those outage entries are also mapped to
    0.0 in scaled space — the training mean — so an outage reaches the model
    as a neutral input rather than the extreme ``(0 - mean) / std``.

    ``time_channels`` appends two extra input channels — time-of-day in
    [0, 1) and day-of-week in [0, 1) — the input augmentation the official
    D2STGNN/Graph WaveNet pipelines use.  Targets stay single-channel.
    """
    values = dataset.series.values  # (T, N)
    splits = chronological_split(values.shape[0], dataset.spec.split)
    (train_start, train_stop), _, _ = splits
    scaler = StandardScaler(null_value=0.0, mask_nulls=mask_nulls).fit(
        values[train_start:train_stop]
    )
    scaled = scaler.transform(values)[..., None]  # (T, N, 1)
    if time_channels:
        num_steps, num_nodes = values.shape
        steps_per_day = dataset.steps_per_day
        tod_channel = (dataset.series.time_of_day / steps_per_day).astype(np.float32)
        dow_channel = (dataset.series.day_of_week / 7.0).astype(np.float32)
        broadcast = np.ones((num_steps, num_nodes, 1), dtype=np.float32)
        scaled = np.concatenate(
            [scaled, tod_channel[:, None, None] * broadcast, dow_channel[:, None, None] * broadcast],
            axis=-1,
        )
    windows = WindowDataset(
        values_scaled=scaled,
        values_raw=values,
        time_of_day=dataset.series.time_of_day,
        day_of_week=dataset.series.day_of_week,
        history=history,
        horizon=horizon,
    )
    # Convert step boundaries to window-index boundaries: a window starting at
    # step s spans s .. s+history+horizon; we assign it to the split owning s.
    num_windows = len(windows)
    sample_splits = chronological_split(num_windows, dataset.spec.split)
    (a0, a1), (b0, b1), (c0, c1) = sample_splits
    return ForecastingData(
        dataset=dataset,
        windows=windows,
        train=windows.subset(a0, a1),
        val=windows.subset(b0, b1),
        test=windows.subset(c0, c1),
        scaler=scaler,
    )
