"""Sliding-window sample generation and batching.

The paper generates samples "through a sliding window with a width of 24
(2 hours), where the first 12 time steps are used as input, and the remaining
12 time steps are used as ground truth" (Sec. 6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..utils.seed import spawn_rng

__all__ = ["WindowDataset", "Batch", "BatchIterator"]


@dataclass
class Batch:
    """One mini-batch of forecasting samples.

    Attributes
    ----------
    x:
        (B, T_h, N, C) model input in *scaled* units.
    y:
        (B, T_f, N, C) forecasting target in *original* units (losses and
        metrics mask zeros, so targets stay un-scaled; models emit original
        units via their regression head).
    tod, dow:
        (B, T_h) integer time-of-day / day-of-week indices of the input steps.
    """

    x: np.ndarray
    y: np.ndarray
    tod: np.ndarray
    dow: np.ndarray

    @property
    def size(self) -> int:
        return self.x.shape[0]


class WindowDataset:
    """Index-based view of all (input, target) windows over a series.

    Materialising every window would copy the series ``T_h + T_f`` times;
    instead windows are sliced on access.
    """

    def __init__(
        self,
        values_scaled: np.ndarray,
        values_raw: np.ndarray,
        time_of_day: np.ndarray,
        day_of_week: np.ndarray,
        history: int = 12,
        horizon: int = 12,
    ) -> None:
        if values_scaled.ndim == 2:  # (T, N) -> (T, N, 1)
            values_scaled = values_scaled[..., None]
        if values_raw.ndim == 2:
            values_raw = values_raw[..., None]
        if values_scaled.shape[:2] != values_raw.shape[:2]:
            raise ValueError(
                "scaled inputs and raw targets must cover the same (time, node) "
                f"grid: {values_scaled.shape} vs {values_raw.shape}"
            )
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        total = values_scaled.shape[0]
        if total < history + horizon:
            raise ValueError(
                f"series of length {total} too short for history={history}, horizon={horizon}"
            )
        self.values_scaled = values_scaled
        self.values_raw = values_raw
        self.time_of_day = np.asarray(time_of_day)
        self.day_of_week = np.asarray(day_of_week)
        self.history = history
        self.horizon = horizon
        self.num_samples = total - history - horizon + 1
        self._views = self._build_views()

    def __len__(self) -> int:
        return self.num_samples

    def sample(self, index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if not 0 <= index < self.num_samples:
            raise IndexError(f"sample index {index} out of range [0, {self.num_samples})")
        start = index
        mid = index + self.history
        end = mid + self.horizon
        return (
            self.values_scaled[start:mid],
            self.values_raw[mid:end],
            self.time_of_day[start:mid],
            self.day_of_week[start:mid],
        )

    def _build_views(self):
        """Precompute sliding-window views over every field.

        Each view is a zero-copy strided window (``sliding_window_view``), so
        :meth:`gather` can assemble a whole batch with one fancy-index per
        field instead of a per-sample Python loop.  Returns ``None`` when a
        field cannot be windowed (e.g. time indices shorter than the series),
        in which case :meth:`gather` falls back to :meth:`gather_loop`.
        """
        try:
            x = np.moveaxis(sliding_window_view(self.values_scaled, self.history, axis=0), -1, 1)
            y = np.moveaxis(sliding_window_view(self.values_raw, self.horizon, axis=0), -1, 1)
            tod = sliding_window_view(self.time_of_day, self.history, axis=0)
            dow = sliding_window_view(self.day_of_week, self.history, axis=0)
        except ValueError:
            return None
        # A sample at index i reads x/tod/dow windows at i and the y window at
        # i + history; every view must cover the corresponding index range.
        if (
            x.shape[0] < self.num_samples
            or y.shape[0] < self.num_samples + self.history
            or tod.shape[0] < self.num_samples
            or dow.shape[0] < self.num_samples
        ):
            return None
        return x, y, tod, dow

    def gather(self, indices: np.ndarray) -> Batch:
        """Assemble the batch for ``indices`` — one vectorized gather per field.

        Fancy indexing into the precomputed sliding-window views copies each
        sample exactly once, bit-identically to stacking per-sample slices
        (:meth:`gather_loop`, the reference path).
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size:
            low, high = int(indices.min()), int(indices.max())
            if low < 0 or high >= self.num_samples:
                bad = low if low < 0 else high
                raise IndexError(
                    f"sample index {bad} out of range [0, {self.num_samples})"
                )
        if self._views is None:
            return self.gather_loop(indices)
        x_view, y_view, tod_view, dow_view = self._views
        return Batch(
            x=x_view[indices],
            y=y_view[indices + self.history],
            tod=tod_view[indices],
            dow=dow_view[indices],
        )

    def gather_loop(self, indices: np.ndarray) -> Batch:
        """Reference per-sample batch assembly (slow path).

        Kept for inputs that cannot be windowed and as the oracle for the
        vectorized-gather equivalence tests.
        """
        xs, ys, tods, dows = zip(*(self.sample(int(i)) for i in indices))  # lint: disable=R007
        return Batch(
            x=np.stack(xs), y=np.stack(ys), tod=np.stack(tods), dow=np.stack(dows)
        )

    def subset(self, start: int, stop: int) -> "WindowSubset":
        return WindowSubset(self, start, stop)


class WindowSubset:
    """A contiguous range of window indices (train/val/test portions)."""

    def __init__(self, dataset: WindowDataset, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= len(dataset):
            raise ValueError(f"invalid subset range [{start}, {stop}) of {len(dataset)}")
        self.dataset = dataset
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def gather(self, indices: np.ndarray) -> Batch:
        return self.dataset.gather(np.asarray(indices) + self.start)

    def all_indices(self) -> np.ndarray:
        return np.arange(len(self))


class BatchIterator:
    """Iterate over a :class:`WindowSubset` in (optionally shuffled) batches."""

    def __init__(
        self,
        subset: WindowSubset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.subset = subset
        self.batch_size = batch_size
        self.shuffle = shuffle
        # Default to an independent stream split off the seeded library RNG:
        # a shared default_rng(0) here would make every loader built without
        # an explicit rng replay the same permutation (and a resumed run
        # reshuffle from scratch).  The Trainer passes its own checkpointed
        # generator, which keeps iteration order part of the resume contract.
        self.rng = rng if rng is not None else spawn_rng()

    def __len__(self) -> int:
        return (len(self.subset) + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        order = self.subset.all_indices()
        if self.shuffle:
            order = self.rng.permutation(order)
        for begin in range(0, len(order), self.batch_size):
            yield self.subset.gather(order[begin : begin + self.batch_size])
