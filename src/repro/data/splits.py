"""Chronological train/validation/test splitting.

The paper uses 70/10/20 for the speed datasets and 60/20/20 for the flow
datasets (Sec. 6.2.1), always in time order — shuffling before splitting
would leak future information.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SplitRatios", "chronological_split", "SPEED_SPLIT", "FLOW_SPLIT"]


@dataclass(frozen=True)
class SplitRatios:
    train: float
    val: float
    test: float

    def __post_init__(self) -> None:
        total = self.train + self.val + self.test
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"split ratios must sum to 1, got {total}")
        if min(self.train, self.val, self.test) <= 0:
            raise ValueError("all split ratios must be positive")


SPEED_SPLIT = SplitRatios(train=0.7, val=0.1, test=0.2)
FLOW_SPLIT = SplitRatios(train=0.6, val=0.2, test=0.2)


def chronological_split(
    num_samples: int, ratios: SplitRatios
) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
    """Return ((train_start, train_stop), (val_start, val_stop), (test_start, test_stop)).

    Boundaries follow the paper's convention: train first, then validation,
    then test (the Fig. 8 visualisation windows are "located in the test
    dataset", i.e. at the chronological end).
    """
    if num_samples < 3:
        raise ValueError("need at least 3 samples to make a 3-way split")
    train_stop = int(num_samples * ratios.train)
    val_stop = train_stop + int(num_samples * ratios.val)
    train_stop = max(train_stop, 1)
    val_stop = max(val_stop, train_stop + 1)
    val_stop = min(val_stop, num_samples - 1)
    return (0, train_stop), (train_stop, val_stop), (val_stop, num_samples)
