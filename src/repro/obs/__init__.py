"""Observability: op-level profiling and structured training telemetry.

The measurement layer every performance claim in this repository is judged
against (see ``docs/observability.md``):

* :class:`Profiler` — a context manager that instruments the tensor engine
  while active, recording per-op count / inclusive wall time / bytes for
  forward and backward passes plus a named-scope module breakdown.  Zero
  overhead when not active.
* :class:`MemoryWatermark` — a context manager that measures allocated /
  live / peak bytes of op and gradient buffers via weak references, with
  accounting that matches the static tape-IR model in
  :mod:`repro.check.tape` (its T001 consistency baseline).
* :class:`MetricsSink` and friends — pluggable JSON-lines destinations for
  the trainer's per-epoch telemetry (throughput, gradient norms, memory
  high-water mark, scheduled-sampling state).
* :mod:`repro.obs.telemetry` — the telemetry record schema, in one place.

Entry points: ``with Profiler() as prof: ...`` in code, ``repro profile``
on the command line, ``benchmarks/bench_profile_ops.py`` for the tracked
``BENCH_profile.json`` baseline.
"""

from .memory import MemoryWatermark
from .profiler import OpStat, Profiler, ScopeStat, annotate_model_scopes
from .sinks import FileSink, MemorySink, MetricsSink, StdoutSink, read_jsonl
from .stepbench import (
    FAST_CONFIG,
    REFERENCE_CONFIG,
    compare_fast_reference,
    time_train_steps,
)
from .telemetry import (
    TELEMETRY_SCHEMA,
    epoch_record,
    memory_high_water_mark_bytes,
    recovery_record,
    resume_record,
    sanitizer_record,
    serving_record,
    train_end_record,
)

__all__ = [
    "FAST_CONFIG",
    "FileSink",
    "MemorySink",
    "MemoryWatermark",
    "MetricsSink",
    "OpStat",
    "Profiler",
    "REFERENCE_CONFIG",
    "ScopeStat",
    "StdoutSink",
    "TELEMETRY_SCHEMA",
    "annotate_model_scopes",
    "compare_fast_reference",
    "epoch_record",
    "recovery_record",
    "resume_record",
    "memory_high_water_mark_bytes",
    "read_jsonl",
    "sanitizer_record",
    "serving_record",
    "time_train_steps",
    "train_end_record",
]
