"""Op-level profiler for the tensor engine.

:class:`Profiler` answers "where does a training step spend its time?" on
the numpy substrate, the way ``torch.profiler`` would on the original
implementation.  While active it records, for every primitive tensor op and
every composite in :data:`repro.tensor.functional.PROFILED_COMPOSITES`:

* **count** — how many times the op executed,
* **time** — inclusive wall-clock seconds (shared clock, `repro.utils.now`),
* **bytes** — output allocation for forward ops, incoming-gradient size for
  backward ops,

split by **phase** (``forward`` / ``backward``), plus a named-scope
breakdown of :class:`~repro.nn.Module` forward calls (inclusive and self
time per scope).

Zero overhead when disabled
---------------------------
Forward ops are instrumented by *swapping* the methods on ``Tensor`` (and
the composite functions on ``repro.tensor.functional``) for timed wrappers
on ``__enter__`` and restoring the originals on ``__exit__`` — outside a
profiling block the original, unmodified code runs.  The backward pass and
module scoping use the pre-wired hook points in ``repro.tensor.tensor`` and
``repro.nn.module``, which cost a single global read and a predicted branch
when no profiler is active.

Usage::

    from repro.obs import Profiler

    with Profiler() as prof:
        loss = model(batch.x, batch.tod, batch.dow).sum()
        loss.backward()
    print(prof.format_table(top=10))
    payload = prof.to_dict()          # JSON-ready

Only one profiler may be active at a time (nesting raises).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from ..nn import module as _module_mod
from ..nn.module import Module
from ..tensor import functional as _functional
from ..tensor import tensor as _tensor_mod
from ..tensor.ops_registry import TENSOR_OPS as _TENSOR_OPS
from ..tensor.tensor import Tensor
from ..utils.timer import now

__all__ = ["OpStat", "ScopeStat", "Profiler", "annotate_model_scopes"]

SCHEMA = "repro.obs.profile/v1"


def _result_nbytes(value) -> int:
    """Bytes allocated by an op's result (tensor, or a list of tensors)."""
    if isinstance(value, Tensor):
        return int(value.data.nbytes)
    if isinstance(value, (list, tuple)):
        return sum(_result_nbytes(item) for item in value)
    return 0


@dataclass
class OpStat:
    """Aggregate record for one (op, phase) pair."""

    op: str
    phase: str
    count: int = 0
    time: float = 0.0
    bytes: int = 0

    def to_dict(self) -> dict:
        """JSON-ready mapping with ``op/phase/count/time/bytes`` keys."""
        return {
            "op": self.op,
            "phase": self.phase,
            "count": self.count,
            "time": self.time,
            "bytes": self.bytes,
        }


@dataclass
class ScopeStat:
    """Aggregate record for one module scope (see ``Module.scope_name``)."""

    scope: str
    count: int = 0
    time: float = 0.0        # inclusive of child module calls
    self_time: float = 0.0   # exclusive: time minus child module calls

    def to_dict(self) -> dict:
        """JSON-ready mapping with ``scope/count/time/self_time`` keys."""
        return {
            "scope": self.scope,
            "count": self.count,
            "time": self.time,
            "self_time": self.self_time,
        }


@dataclass
class _ScopeFrame:
    name: str
    start: float
    child_time: float = 0.0


class Profiler:
    """Context manager that instruments the tensor engine while active.

    See the module docstring for the measurement model.  Attributes after
    (or during) a run:

    ``ops``
        ``{(op, phase): OpStat}`` aggregates.
    ``scopes``
        ``{scope_name: ScopeStat}`` module-forward aggregates.
    ``elapsed``
        wall-clock seconds the profiling block spanned.
    """

    _active: "Profiler | None" = None  # class-level: at most one at a time

    def __init__(self) -> None:
        self.ops: dict[tuple[str, str], OpStat] = {}
        self.scopes: dict[str, ScopeStat] = {}
        self.elapsed: float = 0.0
        self._saved: list[tuple[object, str, object]] = []
        self._scope_stack: list[_ScopeFrame] = []
        self._started: float = 0.0
        self._previous_hook = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, op: str, phase: str, seconds: float, nbytes: int) -> None:
        key = (op, phase)
        stat = self.ops.get(key)
        if stat is None:
            stat = self.ops[key] = OpStat(op=op, phase=phase)
        stat.count += 1
        stat.time += seconds
        stat.bytes += nbytes

    def _backward_hook(self, node: Tensor) -> None:
        grad = node.grad
        start = now()
        # Chain to any hook that was installed before this profiler (e.g. a
        # repro.check sanitizer) — it is responsible for running the closure.
        if self._previous_hook is None:
            node._backward(grad)
        else:
            self._previous_hook(node)
        self._record(node._op or "leaf", "backward", now() - start,
                     int(grad.nbytes) if grad is not None else 0)

    @contextlib.contextmanager
    def _scope_hook(self, module: Module):
        frame = _ScopeFrame(module.scope_name, now())
        self._scope_stack.append(frame)
        try:
            yield
        finally:
            self._scope_stack.pop()
            total = now() - frame.start
            stat = self.scopes.get(frame.name)
            if stat is None:
                stat = self.scopes[frame.name] = ScopeStat(scope=frame.name)
            stat.count += 1
            stat.time += total
            stat.self_time += total - frame.child_time
            if self._scope_stack:
                self._scope_stack[-1].child_time += total

    def _wrap_forward(self, fn, op_name: str):
        def profiled(*args, **kwargs):
            start = now()
            out = fn(*args, **kwargs)
            self._record(op_name, "forward", now() - start, _result_nbytes(out))
            return out

        profiled.__name__ = getattr(fn, "__name__", op_name)
        profiled.__doc__ = fn.__doc__
        return profiled

    # ------------------------------------------------------------------
    # Instrumentation lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        if Profiler._active is not None:
            raise RuntimeError("a Profiler is already active; profilers do not nest")
        Profiler._active = self
        self._started = now()
        for attr, op_name, is_static in _TENSOR_OPS:
            original = Tensor.__dict__[attr]
            self._saved.append((Tensor, attr, original))
            fn = original.__func__ if is_static else original
            wrapped = self._wrap_forward(fn, op_name)
            setattr(Tensor, attr, staticmethod(wrapped) if is_static else wrapped)
        for name in _functional.PROFILED_COMPOSITES:
            original = getattr(_functional, name)
            self._saved.append((_functional, name, original))
            setattr(_functional, name, self._wrap_forward(original, name))
        self._previous_hook = _tensor_mod._BACKWARD_OP_HOOK
        _tensor_mod._set_backward_op_hook(self._backward_hook)
        _module_mod._set_forward_scope_hook(self._scope_hook)
        return self

    def __exit__(self, *exc_info) -> None:
        _tensor_mod._set_backward_op_hook(self._previous_hook)
        _module_mod._set_forward_scope_hook(None)
        for target, attr, original in reversed(self._saved):
            setattr(target, attr, original)
        self._saved.clear()
        self.elapsed += now() - self._started
        Profiler._active = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top_ops(self, k: int = 10) -> list[OpStat]:
        """The ``k`` hottest (op, phase) aggregates by inclusive time."""
        return sorted(self.ops.values(), key=lambda s: s.time, reverse=True)[:k]

    def distinct_ops(self) -> int:
        """Number of distinct op names seen (phases collapsed)."""
        return len({op for op, _ in self.ops})

    def to_dict(self) -> dict:
        """JSON-ready summary: schema tag, totals, per-op and per-scope rows."""
        ops = sorted(self.ops.values(), key=lambda s: s.time, reverse=True)
        scopes = sorted(self.scopes.values(), key=lambda s: s.time, reverse=True)
        return {
            "schema": SCHEMA,
            "elapsed_seconds": self.elapsed if self.elapsed else now() - self._started,
            "distinct_ops": self.distinct_ops(),
            "ops": [stat.to_dict() for stat in ops],
            "scopes": [stat.to_dict() for stat in scopes],
        }

    def format_table(self, top: int = 10) -> str:
        """Human-readable top-``top`` op table plus the scope breakdown."""
        lines = [f"{'op':<16} {'phase':<9} {'count':>8} {'time s':>9} {'MB':>9}"]
        for stat in self.top_ops(top):
            lines.append(
                f"{stat.op:<16} {stat.phase:<9} {stat.count:>8} "
                f"{stat.time:>9.4f} {stat.bytes / 1e6:>9.2f}"
            )
        if self.scopes:
            lines.append("")
            lines.append(f"{'scope':<26} {'calls':>8} {'incl s':>9} {'self s':>9}")
            ranked = sorted(self.scopes.values(), key=lambda s: s.self_time, reverse=True)
            for stat in ranked[:top]:
                lines.append(
                    f"{stat.scope:<26} {stat.count:>8} {stat.time:>9.4f} {stat.self_time:>9.4f}"
                )
        return "\n".join(lines)


def annotate_model_scopes(model: Module) -> Module:
    """Annotate every submodule with its dotted path from ``named_modules``.

    Turns the profiler's scope table from class names (``Linear``) into
    positions in the model tree (``layers.0.diffusion.fc``).  Returns the
    model for chaining.
    """
    for path, module in model.named_modules():
        if path:
            module.annotate_scope(path)
    return model
