"""Training-telemetry record construction (the trainer's JSON-lines schema).

The :class:`~repro.training.Trainer` emits one record per epoch plus one
end-of-run summary through a :class:`~repro.obs.sinks.MetricsSink`.  This
module owns the record layout so the schema lives in exactly one place; it
is documented for consumers in ``docs/observability.md``.

Every record carries ``schema`` (:data:`TELEMETRY_SCHEMA`) and ``event``
(``"epoch"``, ``"train_end"``, ``"sanitizer"``, ``"recovery"``,
``"resume"`` or ``"serving"``) keys.
"""

from __future__ import annotations

import resource
import sys

__all__ = [
    "TELEMETRY_SCHEMA",
    "epoch_record",
    "recovery_record",
    "resume_record",
    "sanitizer_record",
    "serving_record",
    "train_end_record",
    "memory_high_water_mark_bytes",
]

TELEMETRY_SCHEMA = "repro.obs.telemetry/v1"


def memory_high_water_mark_bytes() -> int:
    """Peak resident-set size of this process, in bytes.

    Reads ``ru_maxrss`` (kilobytes on Linux, bytes on macOS) — a cheap
    syscall, safe to call once per epoch.  This is a *process-wide* high
    water mark: it never decreases, so per-epoch deltas show only growth.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def epoch_record(
    *,
    epoch: int,
    train_loss: float,
    val_mae: float,
    epoch_seconds: float,
    windows: int,
    grad_norm_mean: float,
    grad_norm_max: float,
    learning_rate: float,
    active_horizon: int,
    teacher_forcing_ratio: float | None,
) -> dict:
    """Build the per-epoch telemetry record.

    ``windows`` is the number of training windows processed this epoch;
    throughput is derived as ``windows / epoch_seconds``.
    ``teacher_forcing_ratio`` is ``None`` when scheduled sampling is off.
    """
    return {
        "schema": TELEMETRY_SCHEMA,
        "event": "epoch",
        "epoch": epoch,
        "train_loss": train_loss,
        "val_mae": val_mae,
        "epoch_seconds": epoch_seconds,
        "windows": windows,
        "windows_per_second": windows / epoch_seconds if epoch_seconds > 0 else 0.0,
        "grad_norm_mean": grad_norm_mean,
        "grad_norm_max": grad_norm_max,
        "learning_rate": learning_rate,
        "active_horizon": active_horizon,
        "teacher_forcing_ratio": teacher_forcing_ratio,
        "memory_peak_bytes": memory_high_water_mark_bytes(),
    }


def sanitizer_record(*, kind: str, op: str, phase: str, message: str) -> dict:
    """Build the record a runtime sanitizer emits when it trips.

    ``kind`` is ``"anomaly"`` (NaN/Inf detected) or ``"inplace_mutation"``
    (version-counter trip); ``op`` names the originating forward op and
    ``phase`` is ``"forward"`` or ``"backward"``.  Emitted by
    :mod:`repro.check.sanitizers` immediately before the matching exception
    is raised, so a training run's JSON-lines stream records *why* it died.
    """
    return {
        "schema": TELEMETRY_SCHEMA,
        "event": "sanitizer",
        "kind": kind,
        "op": op,
        "phase": phase,
        "message": message,
    }


def recovery_record(
    *,
    epoch: int,
    step: int,
    reason: str,
    lr_before: float,
    lr_after: float,
    consecutive_failures: int,
    total_recoveries: int,
) -> dict:
    """Build the record emitted when the trainer rolls back a bad batch.

    Emitted by the NaN-rollback recovery path
    (``TrainerConfig(recovery=...)``): the offending batch was skipped, the
    last good model/optimizer snapshot restored, and the learning rate
    possibly backed off (``lr_before`` → ``lr_after``).  ``step`` is the
    global batch index (counted across epochs and resumes).
    """
    return {
        "schema": TELEMETRY_SCHEMA,
        "event": "recovery",
        "epoch": epoch,
        "step": step,
        "reason": reason,
        "lr_before": lr_before,
        "lr_after": lr_after,
        "consecutive_failures": consecutive_failures,
        "total_recoveries": total_recoveries,
    }


def resume_record(*, epoch: int, global_step: int, path: str) -> dict:
    """Build the record emitted when a run resumes from a training checkpoint.

    ``epoch`` is the (1-based) epoch the resumed run will execute next;
    ``path`` is the training-state file it was restored from.
    """
    return {
        "schema": TELEMETRY_SCHEMA,
        "event": "resume",
        "epoch": epoch,
        "global_step": global_step,
        "path": path,
    }


def serving_record(
    *,
    requests: int,
    batches: int,
    mean_batch_size: float,
    latency_ms_p50: float,
    latency_ms_p95: float,
    latency_ms_p99: float,
    queue_depth_max: int,
    cache_hits: int,
    cache_misses: int,
    cache_hit_rate: float,
    fallbacks: int,
    fallback_reasons: dict,
    served_by_model: int,
    served_by_cache: int,
    active_version: str | None,
) -> dict:
    """Build the serving-telemetry summary record.

    Emitted by :meth:`repro.serve.ServingEngine.emit_telemetry`: one record
    summarising everything since engine start — request/batch counts, the
    micro-batcher's coalescing quality (``mean_batch_size``,
    ``queue_depth_max``), end-to-end latency percentiles in milliseconds,
    prediction-cache effectiveness, and how often (and why) the engine fell
    back to the historical-average degradation path.
    """
    return {
        "schema": TELEMETRY_SCHEMA,
        "event": "serving",
        "requests": requests,
        "batches": batches,
        "mean_batch_size": mean_batch_size,
        "latency_ms_p50": latency_ms_p50,
        "latency_ms_p95": latency_ms_p95,
        "latency_ms_p99": latency_ms_p99,
        "queue_depth_max": queue_depth_max,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "cache_hit_rate": cache_hit_rate,
        "fallbacks": fallbacks,
        "fallback_reasons": dict(fallback_reasons),
        "served_by_model": served_by_model,
        "served_by_cache": served_by_cache,
        "active_version": active_version,
        "memory_peak_bytes": memory_high_water_mark_bytes(),
    }


def train_end_record(
    *,
    epochs_run: int,
    best_val_mae: float,
    total_seconds: float,
    early_stopped: bool,
) -> dict:
    """Build the end-of-run summary record."""
    return {
        "schema": TELEMETRY_SCHEMA,
        "event": "train_end",
        "epochs_run": epochs_run,
        "best_val_mae": best_val_mae,
        "total_seconds": total_seconds,
        "early_stopped": early_stopped,
        "memory_peak_bytes": memory_high_water_mark_bytes(),
    }
