"""Pluggable sinks for structured telemetry records (JSON lines).

A :class:`MetricsSink` receives flat ``dict`` records — one per event, e.g.
one per training epoch — and serialises them somewhere.  The concrete sinks:

* :class:`StdoutSink` — one JSON object per line to a stream (default
  ``sys.stdout``); pipe-friendly.
* :class:`FileSink` — appends JSON lines to a file; the standard choice for
  keeping a run's telemetry next to its checkpoint.
* :class:`MemorySink` — keeps records in a list; for tests and notebooks.

Records must be JSON-serialisable.  The schema of the trainer's records is
documented in ``docs/observability.md`` and produced by
:mod:`repro.obs.telemetry`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["MetricsSink", "StdoutSink", "FileSink", "MemorySink", "read_jsonl"]


class MetricsSink:
    """Interface: receives structured records; subclasses serialise them."""

    def emit(self, record: dict) -> None:
        """Consume one telemetry record (a JSON-serialisable dict)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release any underlying resource (no-op by default)."""

    def __enter__(self) -> "MetricsSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StdoutSink(MetricsSink):
    """Write each record as one JSON line to a stream (default stdout)."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def emit(self, record: dict) -> None:
        """Serialise ``record`` as a single JSON line and flush."""
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.stream.flush()


class FileSink(MetricsSink):
    """Append each record as one JSON line to ``path``.

    By default every :meth:`emit` rewrites the file atomically (temp file in
    the target directory + ``os.replace``, via
    :func:`repro.utils.atomic.atomic_write`): a process killed mid-write can
    never leave a torn half-record behind, and records already in the file
    when the sink is created are preserved.  Pass ``atomic=False`` for plain
    append-mode streaming when telemetry volume outweighs crash-safety (the
    file is then opened lazily on the first record and closed by
    :meth:`close` or the context-manager exit).
    """

    def __init__(self, path, atomic: bool = True) -> None:
        self.path = Path(path)
        self.atomic = atomic
        self._handle = None
        self._lines: list[str] | None = None

    def _emit_atomic(self, line: str) -> None:
        from ..utils.atomic import atomic_write

        if self._lines is None:
            self._lines = []
            if self.path.exists():
                self._lines = self.path.read_text().splitlines(keepends=True)
        self._lines.append(line)
        with atomic_write(self.path) as handle:
            handle.writelines(self._lines)

    def emit(self, record: dict) -> None:
        """Serialise ``record`` as one JSON line appended to the file."""
        line = json.dumps(record, sort_keys=True) + "\n"
        if self.atomic:
            self._emit_atomic(line)
            return
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(line)
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle if it was opened."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._lines = None


class MemorySink(MetricsSink):
    """Collect records in ``self.records`` (shallow copies); for tests."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        """Append a copy of ``record`` to :attr:`records`."""
        self.records.append(dict(record))


def read_jsonl(path) -> list[dict]:
    """Parse a JSON-lines file (as written by :class:`FileSink`) into dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
