"""Train-step throughput measurement: samples/sec and backward time.

The harness behind ``benchmarks/bench_train_step.py`` and
``repro profile --train-step``.  It times *full* optimisation steps —
batch gather, forward, loss, backward, gradient clipping, optimizer
update — because that is the quantity the ROADMAP's "as fast as the
hardware allows" north star is judged on; the backward slice is timed
separately since the cached-tape fast paths concentrate there.

``compare_fast_reference`` times the same model under the engine's fast
backward paths and under the reference configuration, giving every run a
self-contained before/after (see docs/performance.md for how the two
relate to the pre-fast-path baseline).
"""

from __future__ import annotations

import numpy as np

from ..optim import Adam, clip_grad_norm
from ..tensor import Tensor, configure_fast_backward, fast_backward_config
from ..tensor import functional as F
from ..utils.timer import now

__all__ = ["FAST_CONFIG", "REFERENCE_CONFIG", "compare_fast_reference", "time_train_steps"]

# The engine's fast backward paths, and the reference ("slow") configuration
# they are measured against.  ``fused_matmul`` stays on in both legs: it is
# an allclose-only rewrite, so flipping it would change numerics rather than
# merely the code path, breaking the bit-identity oracle the equivalence
# tests rely on.
FAST_CONFIG = {"tape": True, "scatter": True, "fused_matmul": True, "inplace": True}
REFERENCE_CONFIG = {"tape": False, "scatter": False, "fused_matmul": True, "inplace": False}


def time_train_steps(
    model,
    data,
    *,
    batch_size: int = 32,
    steps: int = 8,
    warmup: int = 2,
    split: str = "train",
    lr: float = 1e-3,
    grad_clip: float = 5.0,
) -> dict:
    """Time ``steps`` full optimisation steps; return throughput statistics.

    Each step gathers its own batch (round-robin over ``split``), so the
    vectorized batching path is part of what is measured.  Minima are the
    headline numbers — on a noisy machine the minimum is the least-biased
    estimate of the achievable step time — with medians recorded alongside.
    """
    if steps < 1 or warmup < 0:
        raise ValueError("steps must be >= 1 and warmup >= 0")
    optimizer = Adam(model.parameters(), lr=lr)
    scaler = data.scaler
    subset = {"train": data.train, "val": data.val, "test": data.test}[split]
    batch_size = min(batch_size, len(subset))
    span = max(1, len(subset) - batch_size)
    order = np.arange(len(subset))

    def step(i: int) -> float:
        batch = subset.gather(order[(i * batch_size) % span :][:batch_size])
        optimizer.zero_grad()
        prediction = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
        loss = F.masked_mae_loss(prediction, Tensor(batch.y))
        begin = now()
        loss.backward()
        backward = now() - begin
        clip_grad_norm(model.parameters(), grad_clip)
        optimizer.step()
        return backward

    for i in range(warmup):
        step(i)
    totals, backwards = [], []
    for i in range(steps):
        begin = now()
        backward = step(warmup + i)
        totals.append(now() - begin)
        backwards.append(backward)
    totals.sort()
    backwards.sort()
    mid = len(totals) // 2
    return {
        "batch_size": batch_size,
        "steps": steps,
        "step_ms_min": totals[0] * 1e3,
        "step_ms_median": totals[mid] * 1e3,
        "backward_us_min": backwards[0] * 1e6,
        "backward_us_median": backwards[mid] * 1e6,
        "samples_per_sec": batch_size / totals[0],
    }


def compare_fast_reference(model, data, **kwargs) -> dict:
    """Time the model under the reference and fast backward configurations.

    Returns ``{"reference": ..., "fast": ...}`` (each a
    :func:`time_train_steps` dict) plus end-to-end and backward speedups.
    The engine configuration active on entry is restored afterwards.
    """
    previous = fast_backward_config()
    try:
        configure_fast_backward(**REFERENCE_CONFIG)
        reference = time_train_steps(model, data, **kwargs)
        configure_fast_backward(**FAST_CONFIG)
        fast = time_train_steps(model, data, **kwargs)
    finally:
        configure_fast_backward(**previous)
    return {
        "reference": reference,
        "fast": fast,
        "speedup_end_to_end": reference["step_ms_min"] / fast["step_ms_min"],
        "speedup_backward": reference["backward_us_min"] / fast["backward_us_min"],
    }
