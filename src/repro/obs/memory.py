"""Live-buffer memory watermark for the autodiff engine.

:class:`MemoryWatermark` measures what the engine actually allocates during
a traced region: every buffer *owned* by a tracked op node (forward
activations) or by a gradient, deduplicated by root buffer so views cost
nothing.  It records three numbers:

* ``total_bytes`` — bytes allocated over the region (each owned buffer
  counted once);
* ``peak_bytes`` — the high-water mark of simultaneously *live* owned
  bytes, observed via weak references that fire the moment numpy frees a
  buffer;
* ``live_bytes`` — owned bytes still reachable right now.

The accounting deliberately mirrors the static tape-IR model in
:mod:`repro.check.tape`: leaf payloads (parameters, inputs) are excluded,
leaf gradients are included, and aliases are attributed to their root
buffer.  That makes ``total_bytes`` directly comparable to the IR's owned
byte count (the T001 consistency check) and ``peak_bytes`` the honest
"what the engine holds today" baseline that the arena plan's projected
peak is judged against.

Like :class:`repro.obs.Profiler` it is a method-swap instrument — active
only inside the ``with`` block, chaining the backward hook so it composes
with other instruments.
"""

from __future__ import annotations

import weakref

import numpy as np

from ..tensor import tensor as _tensor_mod
from ..tensor.tensor import Tensor

__all__ = ["MemoryWatermark"]


class MemoryWatermark:
    """Track allocated / live / peak bytes of op and gradient buffers.

    Usage::

        with MemoryWatermark() as mem:
            loss = model(x, tod, dow).sum()
            loss.backward()
        print(mem.total_bytes, mem.peak_bytes)

    Only one watermark may be active at a time.  Buffers are registered
    when the engine defines them (op outputs via ``Tensor._make``,
    gradients via the backward hook) and released when numpy frees the
    underlying root buffer — CPython's refcounting makes that immediate,
    so the peak is deterministic.
    """

    _active = False

    def __init__(self) -> None:
        self.total_bytes = 0
        self.live_bytes = 0
        self.peak_bytes = 0
        self.buffers = 0
        self._refs: dict[int, weakref.ref] = {}
        self._closed = False
        self._original_make = None
        self._previous_hook = None

    # -- registration ---------------------------------------------------

    def _register(self, array: object) -> None:
        """Count ``array`` if it owns its buffer and was not seen before.

        Views (``array.base`` chains) are skipped: either their root is an
        already-registered op/grad buffer (whose weakref covers liveness)
        or it belongs to a leaf/external array the watermark deliberately
        excludes.
        """
        if self._closed or not isinstance(array, np.ndarray) or array.base is not None:
            return
        key = id(array)
        if key in self._refs:
            return
        nbytes = int(array.nbytes)

        def _released(_ref, *, _self=self, _key=key, _nbytes=nbytes):
            if not _self._closed:
                _self.live_bytes -= _nbytes
            _self._refs.pop(_key, None)

        self._refs[key] = weakref.ref(array, _released)
        self.buffers += 1
        self.total_bytes += nbytes
        self.live_bytes += nbytes
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes

    # -- instrumentation ------------------------------------------------

    def __enter__(self) -> "MemoryWatermark":
        if MemoryWatermark._active:
            raise RuntimeError("a MemoryWatermark is already active")
        MemoryWatermark._active = True
        register = self._register

        self._original_make = Tensor.__dict__["_make"]
        original_make_fn = self._original_make.__func__

        def watching_make(data, parents, backward, op):
            out = original_make_fn(data, parents, backward, op)
            if out._backward is not None:
                register(out.data)
            return out

        Tensor._make = staticmethod(watching_make)

        previous = _tensor_mod._BACKWARD_OP_HOOK
        self._previous_hook = previous

        def hook(node):
            register(node.grad)  # covers the root's seed gradient
            if previous is None:
                node._backward(node.grad)
            else:
                previous(node)
            for parent in node._parents:
                if parent.grad is not None:
                    register(parent.grad)

        _tensor_mod._set_backward_op_hook(hook)
        return self

    def __exit__(self, *exc_info) -> None:
        _tensor_mod._set_backward_op_hook(self._previous_hook)
        Tensor._make = self._original_make
        MemoryWatermark._active = False
        self._closed = True  # freeze the numbers; late weakref callbacks no-op

    # -- reporting ------------------------------------------------------

    def to_dict(self) -> dict:
        """Summary dict (schema ``repro.obs.memory/v1``)."""
        return {
            "schema": "repro.obs.memory/v1",
            "total_bytes": self.total_bytes,
            "peak_bytes": self.peak_bytes,
            "live_bytes": self.live_bytes,
            "buffers": self.buffers,
        }
