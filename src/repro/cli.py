"""Command-line interface.

    python -m repro list                      # available models and datasets
    python -m repro simulate --dataset metr-la-sim --out data.npz
    python -m repro train --dataset metr-la-sim --model D2STGNN --epochs 4 \
                          --checkpoint model.npz
    python -m repro evaluate --checkpoint model.npz --dataset metr-la-sim
    python -m repro profile --dataset metr-la-sim --model d2stgnn

Everything the CLI does is a thin layer over the public API; see
examples/ for the same flows in code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baselines import (
    ASTGCN,
    DCRNN,
    DGCRN,
    FCLSTM,
    GMAN,
    MTGNN,
    STGCN,
    STSGCN,
    SVR,
    VAR,
    GraphWaveNet,
    HistoricalAverage,
)
from .core import D2STGNN, D2STGNNConfig
from .data import PRESETS, build_forecasting_data, load_dataset
from .data.io import load_dataset_file, save_dataset
from .training import Trainer, TrainerConfig, format_horizon_report
from .utils.checkpoint import load_checkpoint, save_checkpoint
from .utils.seed import set_seed

MODEL_NAMES = (
    "HA", "VAR", "SVR", "FC-LSTM", "DCRNN", "STGCN", "GraphWaveNet",
    "ASTGCN", "STSGCN", "GMAN", "MTGNN", "DGCRN", "D2STGNN",
)
STATISTICAL = ("HA", "VAR", "SVR")


def _canonical_model(name: str) -> str:
    """Resolve a case-insensitive model name to its Table 3 spelling."""
    lookup = {candidate.lower(): candidate for candidate in MODEL_NAMES}
    try:
        return lookup[name.lower()]
    except KeyError:
        raise SystemExit(f"unknown model {name!r}; choose from {MODEL_NAMES}") from None


def _get_data(args):
    if args.dataset.endswith(".npz"):
        dataset = load_dataset_file(args.dataset)
    else:
        dataset = load_dataset(
            args.dataset,
            num_nodes=getattr(args, "nodes", None),
            num_steps=getattr(args, "steps", None),
        )
    return build_forecasting_data(dataset)


def _build_model(name: str, data, hidden: int, layers: int):
    dataset = data.dataset
    adjacency = data.adjacency
    config_extra = {"hidden_dim": hidden, "num_layers": layers}
    if name == "D2STGNN":
        config = D2STGNNConfig(
            num_nodes=dataset.num_nodes, steps_per_day=dataset.steps_per_day,
            hidden_dim=hidden, embed_dim=max(4, hidden // 2),
            num_layers=layers, num_heads=2,
        )
        return D2STGNN(config, adjacency), config
    builders = {
        "HA": lambda: HistoricalAverage(dataset.steps_per_day),
        "VAR": lambda: VAR(lags=3),
        "SVR": lambda: SVR(epochs=30),
        "FC-LSTM": lambda: FCLSTM(hidden_dim=hidden),
        "DCRNN": lambda: DCRNN(adjacency, hidden_dim=hidden),
        "STGCN": lambda: STGCN(adjacency, hidden_dim=hidden),
        "GraphWaveNet": lambda: GraphWaveNet(adjacency, hidden_dim=hidden),
        "ASTGCN": lambda: ASTGCN(adjacency, hidden_dim=hidden),
        "STSGCN": lambda: STSGCN(adjacency, hidden_dim=hidden),
        "GMAN": lambda: GMAN(dataset.num_nodes, dataset.steps_per_day, hidden_dim=hidden, num_heads=2),
        "MTGNN": lambda: MTGNN(dataset.num_nodes, hidden_dim=hidden),
        "DGCRN": lambda: DGCRN(adjacency, hidden_dim=hidden),
    }
    if name not in builders:
        raise SystemExit(f"unknown model {name!r}; choose from {MODEL_NAMES}")
    return builders[name](), config_extra


def cmd_experiments(args) -> int:
    """``repro experiments``: print the paper's experiment index."""
    from .experiments import EXPERIMENTS

    for spec in EXPERIMENTS.values():
        print(f"{spec.experiment_id:<16} {spec.paper_artifact:<22} {spec.description}")
        print(f"{'':<16} bench: {spec.bench}")
        print(f"{'':<16} shape: {spec.asserted_shape}")
    return 0


def cmd_list(args) -> int:
    """``repro list``: print models and dataset presets."""
    print("models:")
    for name in MODEL_NAMES:
        kind = "statistical" if name in STATISTICAL else "neural"
        print(f"  {name:<14} ({kind})")
    print("dataset presets:")
    for name, spec in PRESETS.items():
        print(
            f"  {name:<14} {spec.kind:<6} default {spec.num_nodes} nodes x "
            f"{spec.num_steps} steps (paper: {spec.reference_nodes} nodes)"
        )
    return 0


def cmd_simulate(args) -> int:
    """``repro simulate``: generate a dataset preset and write it to .npz."""
    dataset = load_dataset(args.dataset, num_nodes=args.nodes, num_steps=args.steps)
    path = save_dataset(args.out, dataset)
    print(
        f"wrote {dataset.spec.name}: {dataset.num_nodes} nodes, "
        f"{dataset.num_steps} steps, {dataset.num_edges} edges -> {path}"
    )
    return 0


def cmd_train(args) -> int:
    """``repro train``: fit a forecaster, report metrics, save a checkpoint."""
    set_seed(args.seed)
    data = _get_data(args)
    model, config = _build_model(args.model, data, args.hidden, args.layers)
    if args.model in STATISTICAL:
        model.fit(data)
        print(f"fit {args.model} (no gradient training needed)")
    else:
        from .obs import FileSink

        print(f"training {args.model} ({model.num_parameters():,} parameters)")
        sink = FileSink(args.telemetry) if args.telemetry else None
        trainer = Trainer(
            model, data,
            TrainerConfig(epochs=args.epochs, batch_size=args.batch_size, verbose=True, seed=args.seed),
            sink=sink,
        )
        trainer.train()
        if sink is not None:
            sink.close()
            print(f"telemetry -> {args.telemetry}")
    trainer = Trainer(model, data) if args.model not in STATISTICAL else None
    from .training import evaluate_horizons, predict_split

    prediction, target = predict_split(model, data, split="test")
    print()
    print(format_horizon_report(args.model, evaluate_horizons(prediction, target)))
    if args.checkpoint and args.model not in STATISTICAL:
        path = save_checkpoint(
            args.checkpoint, model, config,
            extra={"model": args.model, "dataset": args.dataset},
        )
        print(f"\ncheckpoint -> {path}")
    elif args.checkpoint:
        print("\n(statistical models carry no parameters; checkpoint skipped)")
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: op-level hotspot profile of real training steps.

    Runs a few warm-up steps uninstrumented, then profiles forward +
    backward + optimizer steps under :class:`repro.obs.Profiler`, prints the
    top-k op and module-scope tables, and writes the machine-readable
    baseline (schema ``repro.obs.profile/v1``) to ``--out``.
    """
    from .obs import Profiler, annotate_model_scopes
    from .optim import Adam, clip_grad_norm
    from .tensor import Tensor, functional as F

    name = _canonical_model(args.model)
    if name in STATISTICAL:
        raise SystemExit(f"{name} is a statistical model: no tensor ops to profile")
    if args.batches < 1:
        raise SystemExit("--batches must be >= 1")
    if args.warmup < 0:
        raise SystemExit("--warmup must be >= 0")
    set_seed(args.seed)
    data = _get_data(args)
    model, _ = _build_model(name, data, args.hidden, args.layers)
    annotate_model_scopes(model)
    optimizer = Adam(model.parameters(), lr=0.001)
    scaler = data.scaler
    loader = data.loader("train", batch_size=args.batch_size, shuffle=False)
    batches = []
    for batch in loader:
        batches.append(batch)
        if len(batches) >= args.warmup + args.batches:
            break

    def step(batch) -> None:
        optimizer.zero_grad()
        prediction = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
        loss = F.masked_mae_loss(prediction, Tensor(batch.y))
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()

    for batch in batches[: args.warmup]:
        step(batch)
    profiled = batches[args.warmup :]
    with Profiler() as prof:
        for batch in profiled:
            step(batch)

    print(f"profiled {len(profiled)} training steps of {name} on {args.dataset} "
          f"(batch size {args.batch_size}, {model.num_parameters():,} parameters)\n")
    print(prof.format_table(top=args.top))
    payload = {
        "generated_by": "repro profile",
        "model": name,
        "dataset": args.dataset,
        "batches": len(profiled),
        "batch_size": args.batch_size,
        "num_parameters": model.num_parameters(),
        **prof.to_dict(),
    }
    out = Path(args.out)
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n{prof.distinct_ops()} distinct ops -> {out}")
    return 0


def cmd_evaluate(args) -> int:
    """``repro evaluate``: evaluate a saved checkpoint on a dataset split."""
    data = _get_data(args)
    info = load_checkpoint(args.checkpoint)
    name = info["meta"]["extra"].get("model", info["meta"]["model_class"])
    config = info["meta"]["config"] or {}
    hidden = config.get("hidden_dim", 32)
    layers = config.get("num_layers", 2)
    model, _ = _build_model("D2STGNN" if name == "D2STGNN" else name, data, hidden, layers)
    load_checkpoint(args.checkpoint, model)
    from .training import evaluate_horizons, predict_split

    prediction, target = predict_split(model, data, split=args.split)
    print(format_horizon_report(f"{name} ({args.split})", evaluate_horizons(prediction, target)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models and dataset presets").set_defaults(fn=cmd_list)
    sub.add_parser(
        "experiments", help="list the paper's experiments and their benches"
    ).set_defaults(fn=cmd_experiments)

    p = sub.add_parser("simulate", help="generate a dataset and save it to .npz")
    p.add_argument("--dataset", default="metr-la-sim", choices=sorted(PRESETS))
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("train", help="train a forecaster")
    p.add_argument("--dataset", default="metr-la-sim",
                   help="preset name or a .npz written by `repro simulate`")
    p.add_argument("--model", default="D2STGNN", choices=MODEL_NAMES)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None, help="where to save the trained model")
    p.add_argument("--telemetry", default=None,
                   help="write per-epoch JSON-lines telemetry to this file")
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--dataset", default="metr-la-sim")
    p.add_argument("--split", default="test", choices=("train", "val", "test"))
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("profile", help="profile op-level hotspots of training steps")
    p.add_argument("--dataset", default="metr-la-sim",
                   help="preset name or a .npz written by `repro simulate`")
    p.add_argument("--model", default="D2STGNN",
                   help="model name (case-insensitive); statistical models are rejected")
    p.add_argument("--batches", type=int, default=2, help="training steps to profile")
    p.add_argument("--warmup", type=int, default=1, help="uninstrumented steps first")
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=10, help="rows in the printed tables")
    p.add_argument("--out", default="BENCH_profile.json",
                   help="where to write the machine-readable profile")
    p.set_defaults(fn=cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
