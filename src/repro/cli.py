"""Command-line interface.

    python -m repro list                      # available models and datasets
    python -m repro simulate --dataset metr-la-sim --out data.npz
    python -m repro train --dataset metr-la-sim --model D2STGNN --epochs 4 \
                          --checkpoint model.npz --resume state.npz
    python -m repro evaluate --checkpoint model.npz --dataset metr-la-sim
    python -m repro serve --dataset metr-la-sim --model STGCN --replay-steps 32
    python -m repro scenario list             # named event scenarios
    python -m repro scenario run --name closure-rush --workers 2
    python -m repro profile --dataset metr-la-sim --model d2stgnn
    python -m repro lint                      # repo-specific AST lint (R001-R011)
    python -m repro check --dataset metr-la-sim   # model zoo static analysis

Everything the CLI does is a thin layer over the public API; see
examples/ for the same flows in code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .check.linter import DEFAULT_LINT_PATHS
from .data import PRESETS, build_forecasting_data, load_dataset
from .data.io import load_dataset_file, save_dataset
from .models import MODEL_NAMES, STATISTICAL, build_model, canonical_model
from .training import Trainer, TrainerConfig, format_horizon_report
from .utils.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .utils.seed import set_seed


def _canonical_model(name: str) -> str:
    """Resolve a case-insensitive model name, exiting on unknown names."""
    try:
        return canonical_model(name)
    except KeyError as error:
        raise SystemExit(error.args[0]) from None


def _get_data(args):
    if args.dataset.endswith(".npz"):
        dataset = load_dataset_file(args.dataset)
    else:
        dataset = load_dataset(
            args.dataset,
            num_nodes=getattr(args, "nodes", None),
            num_steps=getattr(args, "steps", None),
        )
    return build_forecasting_data(dataset)


def _build_model(name: str, data, hidden: int, layers: int):
    try:
        return build_model(name, data, hidden=hidden, layers=layers)
    except KeyError as error:
        raise SystemExit(error.args[0]) from None


def cmd_experiments(args) -> int:
    """``repro experiments``: print the paper's experiment index."""
    from .experiments import EXPERIMENTS

    for spec in EXPERIMENTS.values():
        print(f"{spec.experiment_id:<16} {spec.paper_artifact:<22} {spec.description}")
        print(f"{'':<16} bench: {spec.bench}")
        print(f"{'':<16} shape: {spec.asserted_shape}")
    return 0


def cmd_list(args) -> int:
    """``repro list``: print models and dataset presets."""
    print("models:")
    for name in MODEL_NAMES:
        kind = "statistical" if name in STATISTICAL else "neural"
        print(f"  {name:<14} ({kind})")
    print("dataset presets:")
    for name, spec in PRESETS.items():
        print(
            f"  {name:<14} {spec.kind:<6} default {spec.num_nodes} nodes x "
            f"{spec.num_steps} steps (paper: {spec.reference_nodes} nodes)"
        )
    return 0


def cmd_simulate(args) -> int:
    """``repro simulate``: generate a dataset preset and write it to .npz."""
    dataset = load_dataset(args.dataset, num_nodes=args.nodes, num_steps=args.steps)
    path = save_dataset(args.out, dataset)
    print(
        f"wrote {dataset.spec.name}: {dataset.num_nodes} nodes, "
        f"{dataset.num_steps} steps, {dataset.num_edges} edges -> {path}"
    )
    return 0


def cmd_train(args) -> int:
    """``repro train``: fit a forecaster, report metrics, save a checkpoint."""
    set_seed(args.seed)
    data = _get_data(args)
    model, config = _build_model(args.model, data, args.hidden, args.layers)
    if args.model in STATISTICAL:
        model.fit(data)
        print(f"fit {args.model} (no gradient training needed)")
    else:
        from .obs import FileSink

        print(f"training {args.model} ({model.num_parameters():,} parameters)")
        sink = FileSink(args.telemetry) if args.telemetry else None
        trainer = Trainer(
            model, data,
            TrainerConfig(
                epochs=args.epochs, batch_size=args.batch_size, verbose=True,
                seed=args.seed, detect_anomaly=args.detect_anomaly,
            ),
            sink=sink,
        )
        if args.resume:
            resume_path = Path(args.resume)
            if resume_path.exists():
                print(f"resuming from {resume_path}")
                trainer.fit(resume_from=resume_path, state_path=resume_path)
            else:
                print(f"no state at {resume_path} yet; starting fresh")
                trainer.fit(state_path=resume_path)
        else:
            trainer.fit()
        if sink is not None:
            sink.close()
            print(f"telemetry -> {args.telemetry}")
    trainer = Trainer(model, data) if args.model not in STATISTICAL else None
    from .training import evaluate_split

    print()
    print(format_horizon_report(args.model, evaluate_split(model, data, split="test")))
    if args.checkpoint and args.model not in STATISTICAL:
        path = save_checkpoint(
            args.checkpoint, model, config,
            extra={"model": args.model, "dataset": args.dataset},
        )
        print(f"\ncheckpoint -> {path}")
    elif args.checkpoint:
        print("\n(statistical models carry no parameters; checkpoint skipped)")
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: op-level hotspot profile of real training steps.

    Runs a few warm-up steps uninstrumented, then profiles forward +
    backward + optimizer steps under :class:`repro.obs.Profiler`, prints the
    top-k op and module-scope tables, and writes the machine-readable
    baseline (schema ``repro.obs.profile/v1``) to ``--out``.

    With ``--train-step`` it instead times full optimisation steps under the
    engine's fast and reference backward configurations
    (:func:`repro.obs.compare_fast_reference`) and writes
    ``BENCH_train_step.json`` (schema ``repro.obs.train_step/v1``).
    """
    from .obs import Profiler, annotate_model_scopes, compare_fast_reference
    from .optim import Adam, clip_grad_norm
    from .tensor import Tensor, functional as F

    name = _canonical_model(args.model)
    if name in STATISTICAL:
        raise SystemExit(f"{name} is a statistical model: no tensor ops to profile")
    if args.batches < 1:
        raise SystemExit("--batches must be >= 1")
    if args.warmup < 0:
        raise SystemExit("--warmup must be >= 0")
    set_seed(args.seed)
    data = _get_data(args)
    model, _ = _build_model(name, data, args.hidden, args.layers)
    if args.train_step:
        timing = compare_fast_reference(
            model, data,
            batch_size=args.batch_size, steps=args.batches, warmup=args.warmup,
        )
        fast, reference = timing["fast"], timing["reference"]
        print(f"timed {args.batches} training steps of {name} on {args.dataset} "
              f"(batch size {fast['batch_size']}, {model.num_parameters():,} parameters)")
        print(f"  fast:      {fast['step_ms_min']:8.2f} ms/step min "
              f"({fast['samples_per_sec']:7.1f} samples/s, "
              f"backward {fast['backward_us_min']:9.0f} us)")
        print(f"  reference: {reference['step_ms_min']:8.2f} ms/step min "
              f"({reference['samples_per_sec']:7.1f} samples/s, "
              f"backward {reference['backward_us_min']:9.0f} us)")
        print(f"  speedup:   x{timing['speedup_end_to_end']:.2f} end-to-end, "
              f"x{timing['speedup_backward']:.2f} backward")
        payload = {
            "generated_by": "repro profile --train-step",
            "schema": "repro.obs.train_step/v1",
            "model": name,
            "dataset": args.dataset,
            "num_parameters": model.num_parameters(),
            **timing,
        }
        out = Path(args.out if args.out else "BENCH_train_step.json")
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"-> {out}")
        return 0
    annotate_model_scopes(model)
    optimizer = Adam(model.parameters(), lr=0.001)
    scaler = data.scaler
    loader = data.loader("train", batch_size=args.batch_size, shuffle=False)
    batches = []
    for batch in loader:
        batches.append(batch)
        if len(batches) >= args.warmup + args.batches:
            break

    def step(batch) -> None:
        optimizer.zero_grad()
        prediction = model(batch.x, batch.tod, batch.dow) * scaler.std + scaler.mean
        loss = F.masked_mae_loss(prediction, Tensor(batch.y))
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()

    for batch in batches[: args.warmup]:
        step(batch)
    profiled = batches[args.warmup :]
    with Profiler() as prof:
        for batch in profiled:
            step(batch)

    print(f"profiled {len(profiled)} training steps of {name} on {args.dataset} "
          f"(batch size {args.batch_size}, {model.num_parameters():,} parameters)\n")
    print(prof.format_table(top=args.top))
    payload = {
        "generated_by": "repro profile",
        "model": name,
        "dataset": args.dataset,
        "batches": len(profiled),
        "batch_size": args.batch_size,
        "num_parameters": model.num_parameters(),
        **prof.to_dict(),
    }
    out = Path(args.out if args.out else "BENCH_profile.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n{prof.distinct_ops()} distinct ops -> {out}")
    return 0


def cmd_lint(args) -> int:
    """``repro lint``: run the repo-specific AST linter.

    Lints every python file under the given paths with the R001-R010 rules
    (see ``docs/static-analysis.md``); exits 1 only when a finding survives
    suppression comments, so CI can gate on it.  A run where everything is
    ``# lint: disable``-suppressed exits 0 and reports the suppression
    count instead of claiming to be clean.
    """
    from .check import format_findings, lint_paths_report

    run = lint_paths_report(tuple(args.paths), root=args.root)
    if args.json:
        print(json.dumps(
            {
                "findings": [vars(f) for f in run.findings],
                "total": len(run.findings),
                "suppressed": len(run.suppressed),
            },
            indent=2,
        ))
    else:
        print(format_findings(list(run.findings), suppressed=len(run.suppressed)))
    return 0 if run.ok else 1


def cmd_check(args) -> int:
    """``repro check [models|tape]``: static analysis over the model zoo.

    ``models`` (the default) runs every neural model (or ``--model``)
    against dataset presets on a probe batch and reports shape-contract
    breaks, dead parameters and float64 drift.  ``tape`` records one
    forward+backward per (model, preset) and runs the tape-IR audit —
    lifetime/arena consistency (T001), mutation hazards (T002), dead
    values (T003) and fusion candidates (T004, informational).  Both exit
    1 on error findings; ``--json`` prints the machine-readable report
    (``repro.check.models/v1`` / ``repro.check.tape/v1``) and ``--out``
    additionally writes it to a file.
    """
    models = [args.model] if args.model else None
    datasets = [args.dataset] if args.dataset else None
    try:
        if args.target == "tape":
            from .check import audit_models, format_tape_report, tape_report_dict

            audits = audit_models(models=models, datasets=datasets)
            report = tape_report_dict(audits)
            text = format_tape_report(audits)
        else:
            from .check import analyze_models, format_model_report, model_report_dict

            checks = analyze_models(models=models, datasets=datasets)
            report = model_report_dict(checks)
            text = format_model_report(checks)
    except (KeyError, ValueError) as error:
        raise SystemExit(error.args[0]) from None
    print(json.dumps(report, indent=2) if args.json else text)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"-> {args.out}")
    return 1 if report["findings_total"] else 0


def cmd_evaluate(args) -> int:
    """``repro evaluate``: evaluate a saved checkpoint on a dataset split."""
    data = _get_data(args)
    info = load_checkpoint(args.checkpoint)
    name = info["meta"]["extra"].get("model", info["meta"]["model_class"])
    config = info["meta"]["config"] or {}
    hidden = config.get("hidden_dim", 32)
    layers = config.get("num_layers", 2)
    model, _ = _build_model("D2STGNN" if name == "D2STGNN" else name, data, hidden, layers)
    load_checkpoint(args.checkpoint, model)
    from .training import evaluate_split

    print(format_horizon_report(f"{name} ({args.split})", evaluate_split(model, data, split=args.split)))
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: replay a recorded stream through the serving stack.

    Packages the model into a servable bundle (or loads one from
    ``--servable``), publishes it to an in-process registry, then drives a
    :class:`~repro.serve.ServingEngine` over the tail of the dataset:
    streaming ingestion, micro-batched forwards, prediction caching and
    historical-average degradation, with the telemetry summary printed (and
    optionally written as JSON lines via ``--telemetry``).

    ``--workers K`` (K > 1) serves through the sharded stack instead
    (:class:`~repro.serve.ShardedServingEngine`): the graph is partitioned
    into K spatial shards, each behind its own worker over ``--transport``.
    ``--rps`` switches the drive from the closed-loop replay to the
    open-loop Poisson load generator, where ``--max-inflight`` admission
    control and load shedding become observable (see docs/scaling.md).
    ``--supervise`` adds self-healing: dead or hung workers are restarted
    with bounded backoff and re-hydrated from the router's replay journal.
    """
    from .obs import FileSink
    from .serve import (
        DegradationPolicy,
        ModelRegistry,
        ServableBundle,
        ServeConfig,
        ServingEngine,
        ShardedServingEngine,
        SlidingWindowStore,
        SupervisionPolicy,
        make_servable,
        replay_split,
        run_load,
    )

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    set_seed(args.seed)
    data = _get_data(args)
    if args.servable:
        try:
            bundle = ServableBundle.load(args.servable)
        except CheckpointError as error:
            raise SystemExit(str(error)) from None
        name = bundle.spec.model
    else:
        name = _canonical_model(args.model)
        if name in STATISTICAL:
            raise SystemExit(
                f"{name} is a statistical baseline; only neural models are servable"
            )
        model, _ = _build_model(name, data, args.hidden, args.layers)
        if args.checkpoint:
            load_checkpoint(args.checkpoint, model)
        bundle = make_servable(
            name, model, data, hidden=args.hidden, layers=args.layers,
            extra={"dataset": args.dataset},
        )
    if args.save_servable:
        path = bundle.save(args.save_servable)
        print(f"servable bundle -> {path}")
    sink = FileSink(args.telemetry) if args.telemetry else None
    if args.supervise and args.workers <= 1:
        raise SystemExit("--supervise requires --workers > 1 (the sharded stack)")
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        policy=DegradationPolicy(
            outage_threshold=args.outage_threshold,
            max_inflight=args.max_inflight,
            shed_on_overload=not args.no_shed,
        ),
        supervision=SupervisionPolicy() if args.supervise else None,
    )
    if args.workers > 1:
        engine = ShardedServingEngine(
            bundle, num_shards=args.workers, config=config,
            transport=args.transport, halo_hops=args.halo_hops, sink=sink,
        )
        version = engine.active_version
    else:
        registry = ModelRegistry()
        version = registry.publish(bundle)
        store = SlidingWindowStore.for_bundle(bundle)
        engine = ServingEngine(registry, store, config, sink=sink)
    with engine:
        if args.rps:
            result = run_load(
                engine, data,
                rps=args.rps, duration_s=args.duration,
                steps=args.replay_steps, concurrency=args.concurrency,
                seed=args.seed,
            )
            telemetry = engine.emit_telemetry()
            print(f"served {name} {version} open-loop: {result.requests} requests "
                  f"({result.offered_rps:.0f} rps offered, "
                  f"{result.achieved_rps:.0f} achieved), {result.shed} shed")
            print(f"  sources:   {result.sources} {result.fallback_reasons}")
            print(f"  latency:   p50 {result.latency_ms_p50:.2f} ms, "
                  f"p95 {result.latency_ms_p95:.2f} ms, "
                  f"p99 {result.latency_ms_p99:.2f} ms")
        else:
            summary = replay_split(
                engine, data,
                steps=args.replay_steps,
                requests_per_step=args.requests_per_step,
                concurrency=args.concurrency,
            )
            engine.emit_telemetry()
            telemetry = summary["telemetry"]
            print(f"served {name} {version}: {summary['requests']} requests over "
                  f"{summary['steps']} observation ticks")
            print(f"  sources:   model {summary['sources']['model']}, "
                  f"cache {summary['sources']['cache']}, "
                  f"fallback {summary['sources']['fallback']} {summary['fallback_reasons']}")
            print(f"  batching:  {telemetry['batches']} batches, "
                  f"mean size {telemetry['mean_batch_size']:.2f}, "
                  f"max queue depth {telemetry['queue_depth_max']}")
            print(f"  latency:   p50 {telemetry['latency_ms_p50']:.2f} ms, "
                  f"p95 {telemetry['latency_ms_p95']:.2f} ms, "
                  f"p99 {telemetry['latency_ms_p99']:.2f} ms")
            print(f"  cache:     {telemetry['cache_hits']} hits / "
                  f"{telemetry['cache_misses']} misses "
                  f"(hit rate {telemetry['cache_hit_rate']:.2f})")
    if args.workers > 1:
        supervised = " (supervised)" if args.supervise else ""
        print(f"  sharding:  {args.workers} workers over {args.transport} "
              f"transport{supervised}")
    if sink is not None:
        sink.close()
        print(f"  telemetry -> {args.telemetry}")
    return 0


def cmd_scenario(args) -> int:
    """``repro scenario``: named event scenarios against the serving stack.

    ``repro scenario list`` prints the named event scenarios (composable
    timed events — incidents, road closures, demand surges, special
    events, sensor bias, regime shifts; see :mod:`repro.data.events`) and
    the static dataset scenario presets.

    ``repro scenario run`` drives one scenario through a serving engine:
    the events perturb the tail of the dataset's stream, every road
    closure rewrites the adjacency mid-stream (published to the engine as
    a new bundle version plus a graph-version tag that invalidates stale
    cached predictions), and the run is scored *conditionally* — MAE on
    affected vs. unaffected nodes, during vs. outside each event — on top
    of the usual serving telemetry.  ``--out`` writes the full
    ``repro.serve.scenario/v1`` report as JSON.
    """
    import numpy as np

    from .data import EVENT_SCENARIOS, SCENARIOS, event_scenario
    from .serve import (
        ModelRegistry,
        ServeConfig,
        ServingEngine,
        ShardedServingEngine,
        SlidingWindowStore,
        make_servable,
        run_scenario,
        save_scenario_report,
    )

    if args.action == "list":
        print("event scenarios (repro scenario run --name NAME):")
        for name, description in sorted(EVENT_SCENARIOS.items()):
            print(f"  {name:<14} {description}")
        print("dataset scenario presets (repro.data.scenario_config):")
        for name in sorted(SCENARIOS):
            print(f"  {name}")
        return 0

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    set_seed(args.seed)
    data = _get_data(args)
    name = _canonical_model(args.model)
    if name in STATISTICAL:
        raise SystemExit(
            f"{name} is a statistical baseline; only neural models are servable"
        )
    model, _ = _build_model(name, data, args.hidden, args.layers)
    if args.checkpoint:
        load_checkpoint(args.checkpoint, model)
    bundle = make_servable(
        name, model, data, hidden=args.hidden, layers=args.layers,
        extra={"dataset": args.dataset},
    )
    adjacency = np.asarray(data.adjacency)
    try:
        scenario = event_scenario(
            args.name, adjacency, args.replay_steps, seed=args.seed
        )
    except KeyError as error:
        raise SystemExit(error.args[0]) from None
    config = ServeConfig(max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1000.0)
    if args.workers > 1:
        engine = ShardedServingEngine(
            bundle, num_shards=args.workers, config=config, transport=args.transport,
        )
    else:
        registry = ModelRegistry()
        registry.publish(bundle)
        engine = ServingEngine(registry, SlidingWindowStore.for_bundle(bundle), config)
    with engine:
        result = run_scenario(
            engine, data, scenario,
            steps=args.replay_steps,
            requests_per_step=args.requests_per_step,
            concurrency=args.concurrency,
        )
    report = result.report
    print(f"scenario {scenario.name} (seed {scenario.seed}): "
          f"{len(report['events'])} events over {report['steps']} ticks, "
          f"{report['serving']['requests']} requests")
    for update in report["graph_updates"]:
        closed = update["closed_nodes"]
        what = f"closed nodes {closed}" if closed else "graph restored"
        print(f"  graph:     tick {update['tick']}: {what} "
              f"-> version {update['version']}")
    overall = report["overall"]
    mae = "n/a" if overall["mae"] is None else f"{overall['mae']:.3f}"
    print(f"  overall:   mae {mae} over {overall['scored_ticks']} scored ticks")
    for label, cond in report["conditional"].items():
        during = cond["affected_during"]["mae"]
        outside = cond["affected_outside"]["mae"]
        during = "n/a" if during is None else f"{during:.3f}"
        outside = "n/a" if outside is None else f"{outside:.3f}"
        print(f"  {label}: affected-node mae {during} during, {outside} outside "
              f"({cond['affected_nodes']} nodes)")
    serving = report["serving"]
    latency = serving["latency_ms"]
    print(f"  serving:   sources {serving['sources']} "
          f"{serving['fallback_reasons']}, fallback rate "
          f"{serving['fallback_rate']:.2f}")
    print(f"  latency:   p50 {latency['p50']:.2f} ms, p95 {latency['p95']:.2f} ms, "
          f"p99 {latency['p99']:.2f} ms")
    if args.out:
        path = save_scenario_report(result, args.out)
        print(f"  report -> {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models and dataset presets").set_defaults(fn=cmd_list)
    sub.add_parser(
        "experiments", help="list the paper's experiments and their benches"
    ).set_defaults(fn=cmd_experiments)

    p = sub.add_parser("simulate", help="generate a dataset and save it to .npz")
    p.add_argument("--dataset", default="metr-la-sim", choices=sorted(PRESETS))
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("train", help="train a forecaster")
    p.add_argument("--dataset", default="metr-la-sim",
                   help="preset name or a .npz written by `repro simulate`")
    p.add_argument("--model", default="D2STGNN", choices=MODEL_NAMES)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None, help="where to save the trained model")
    p.add_argument("--resume", default=None, metavar="STATE",
                   help="training-state file: resume from it if present, and "
                        "keep it updated after every epoch (crash-safe)")
    p.add_argument("--telemetry", default=None,
                   help="write per-epoch JSON-lines telemetry to this file")
    p.add_argument("--detect-anomaly", action="store_true",
                   help="raise on the first NaN/Inf, naming the originating op")
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--dataset", default="metr-la-sim")
    p.add_argument("--split", default="test", choices=("train", "val", "test"))
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("serve", help="replay a stream through the online-inference stack")
    p.add_argument("--dataset", default="metr-la-sim",
                   help="preset name or a .npz written by `repro simulate`")
    p.add_argument("--model", default="D2STGNN",
                   help="model name (case-insensitive); statistical baselines are rejected")
    p.add_argument("--checkpoint", default=None,
                   help="trained checkpoint to serve (default: untrained weights)")
    p.add_argument("--servable", default=None,
                   help="serve an existing bundle instead of packaging one")
    p.add_argument("--save-servable", default=None,
                   help="also write the packaged bundle to this .npz path")
    p.add_argument("--replay-steps", type=int, default=32,
                   help="observation ticks to replay from the series tail")
    p.add_argument("--requests-per-step", type=int, default=4)
    p.add_argument("--concurrency", type=int, default=4)
    p.add_argument("--workers", type=int, default=1,
                   help="spatial shards; >1 serves through the sharded router")
    p.add_argument("--transport", default="process",
                   choices=("process", "loopback"),
                   help="how shard workers are hosted when --workers > 1")
    p.add_argument("--halo-hops", type=int, default=1,
                   help="halo ring width around each shard (see docs/scaling.md)")
    p.add_argument("--supervise", action="store_true",
                   help="self-heal shard workers: health checks, bounded-backoff "
                        "restarts, replay-journal re-hydration (--workers > 1)")
    p.add_argument("--rps", type=float, default=None,
                   help="open-loop Poisson arrival rate; omit for closed-loop replay")
    p.add_argument("--duration", type=float, default=2.0,
                   help="open-loop run length in seconds (with --rps)")
    p.add_argument("--max-inflight", type=int, default=None,
                   help="router admission-control limit; overload arrivals are shed")
    p.add_argument("--no-shed", action="store_true",
                   help="keep the --max-inflight limit visible but let requests queue")
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="micro-batcher coalescing window in milliseconds")
    p.add_argument("--outage-threshold", type=float, default=0.5,
                   help="window outage fraction above which requests degrade")
    p.add_argument("--telemetry", default=None,
                   help="write the serving summary record to this JSON-lines file")
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "scenario",
        help="run named event scenarios (closures, surges, incidents) "
             "through the serving stack with conditional accuracy",
    )
    p.add_argument("action", choices=("run", "list"),
                   help="'run' drives a scenario through serving; "
                        "'list' prints the available scenario names")
    p.add_argument("--name", default="closure-rush",
                   help="event scenario name (see `repro scenario list`)")
    p.add_argument("--dataset", default="metr-la-sim",
                   help="preset name or a .npz written by `repro simulate`")
    p.add_argument("--model", default="STGCN",
                   help="model name (case-insensitive); statistical baselines are rejected")
    p.add_argument("--checkpoint", default=None,
                   help="trained checkpoint to serve (default: untrained weights)")
    p.add_argument("--replay-steps", type=int, default=48,
                   help="observation ticks; event times are placed within them")
    p.add_argument("--requests-per-step", type=int, default=4)
    p.add_argument("--concurrency", type=int, default=4)
    p.add_argument("--workers", type=int, default=1,
                   help="spatial shards; >1 serves through the sharded router")
    p.add_argument("--transport", default="process",
                   choices=("process", "loopback"),
                   help="how shard workers are hosted when --workers > 1")
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="micro-batcher coalescing window in milliseconds")
    p.add_argument("--out", default=None,
                   help="write the repro.serve.scenario/v1 report to this JSON path")
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_scenario)

    p = sub.add_parser("profile", help="profile op-level hotspots of training steps")
    p.add_argument("--dataset", default="metr-la-sim",
                   help="preset name or a .npz written by `repro simulate`")
    p.add_argument("--model", default="D2STGNN",
                   help="model name (case-insensitive); statistical models are rejected")
    p.add_argument("--batches", type=int, default=2, help="training steps to profile")
    p.add_argument("--warmup", type=int, default=1, help="uninstrumented steps first")
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=10, help="rows in the printed tables")
    p.add_argument("--train-step", action="store_true",
                   help="time full train steps (fast vs reference backward paths) "
                        "instead of op-level profiling")
    p.add_argument("--out", default=None,
                   help="where to write the machine-readable result "
                        "(default BENCH_profile.json, or BENCH_train_step.json "
                        "with --train-step)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("lint", help="run the repo-specific AST linter (rules R001-R011)")
    p.add_argument("paths", nargs="*", default=list(DEFAULT_LINT_PATHS),
                   help="files or directories to lint (default: src examples benchmarks)")
    p.add_argument("--root", default=".", help="repository root the paths are relative to")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("check", help="static analysis: model zoo checks or the tape-IR audit")
    p.add_argument("target", nargs="?", default="models", choices=("models", "tape"),
                   help="'models' = shapes/dtypes/dead parameters (default); "
                        "'tape' = record a step per pair and audit the tape IR "
                        "(rules T001-T004)")
    p.add_argument("--model", default=None,
                   help="analyze one model (case-insensitive; default: all neural models)")
    p.add_argument("--dataset", default=None, choices=sorted(PRESETS),
                   help="analyze against one preset (default: all presets)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (schema repro.check.models/v1 "
                        "or repro.check.tape/v1)")
    p.add_argument("--out", default=None,
                   help="also write the machine-readable report to this path")
    p.set_defaults(fn=cmd_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
