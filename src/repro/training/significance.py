"""Statistical significance testing between two forecasters.

The paper marks improvements with * when a t-test over the experimental
results gives p < 0.05 (Sec. 6.1).  We implement the per-sample paired
version: absolute errors of the two models on identical test samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["SignificanceResult", "paired_t_test"]


@dataclass(frozen=True)
class SignificanceResult:
    statistic: float
    p_value: float
    mean_difference: float  # errors(candidate) - errors(baseline); negative = better

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the candidate's improvement is statistically significant."""
        return self.p_value < alpha and self.mean_difference < 0


def paired_t_test(
    candidate_prediction: np.ndarray,
    baseline_prediction: np.ndarray,
    target: np.ndarray,
    null_value: float | None = 0.0,
) -> SignificanceResult:
    """Paired t-test on per-sample masked absolute errors.

    Samples are paired along the batch axis; errors are averaged within each
    sample so that the pairs are independent draws of test windows.
    """
    if candidate_prediction.shape != baseline_prediction.shape != target.shape:
        raise ValueError("prediction and target shapes must match")
    mask = np.ones_like(target, dtype=bool)
    if null_value is not None:
        mask = ~np.isclose(target, null_value)
    axes = tuple(range(1, target.ndim))
    weights = mask.astype(np.float64)
    denom = np.maximum(weights.sum(axis=axes), 1.0)
    err_candidate = (np.abs(candidate_prediction - target) * weights).sum(axis=axes) / denom
    err_baseline = (np.abs(baseline_prediction - target) * weights).sum(axis=axes) / denom
    statistic, p_value = stats.ttest_rel(err_candidate, err_baseline)
    return SignificanceResult(
        statistic=float(statistic),
        p_value=float(p_value),
        mean_difference=float((err_candidate - err_baseline).mean()),
    )
