"""Horizon-wise evaluation of a trained forecaster.

Mirrors the paper's reporting: MAE / RMSE / MAPE at horizons 3 (15 min),
6 (30 min) and 12 (1 hour), plus the all-horizon average.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import ForecastingData
from ..tensor import inference_mode
from .metrics import HORIZONS, compute_all

__all__ = [
    "HorizonAccumulator",
    "predict_split",
    "evaluate_split",
    "evaluate_horizons",
    "evaluate_per_node",
    "horizon_curve",
    "format_horizon_report",
]


class HorizonAccumulator:
    """Streaming masked MAE / RMSE / MAPE over a stream of batches.

    Accumulates the masked error sums and counts batch by batch, so a whole
    split can be evaluated in O(batch) memory instead of materialising every
    prediction first.  Matches :func:`repro.training.metrics.compute_all`
    semantics: entries whose target equals ``null_value`` are ignored, and
    MAPE additionally skips near-zero targets.
    """

    __slots__ = ("null_value", "_abs_sum", "_sq_sum", "_count", "_ape_sum", "_ape_count")

    def __init__(self, null_value: float | None = 0.0) -> None:
        self.null_value = null_value
        self._abs_sum = 0.0
        self._sq_sum = 0.0
        self._count = 0
        self._ape_sum = 0.0
        self._ape_count = 0

    def update(self, prediction: np.ndarray, target: np.ndarray) -> None:
        if prediction.shape != target.shape:
            raise ValueError("prediction and target shapes must match")
        if self.null_value is None:
            mask = np.ones(target.shape, dtype=bool)
        else:
            mask = ~np.isclose(target, self.null_value)
        diff = np.abs(prediction[mask] - target[mask]).astype(np.float64)
        self._abs_sum += float(diff.sum())
        self._sq_sum += float(np.square(diff).sum())
        self._count += int(mask.sum())
        ape_mask = mask & (np.abs(target) > 1e-4)
        ape = np.abs(prediction[ape_mask] - target[ape_mask]) / np.abs(target[ape_mask])
        self._ape_sum += float(ape.astype(np.float64).sum())
        self._ape_count += int(ape_mask.sum())

    def compute(self) -> dict[str, float]:
        """Return {"mae", "rmse", "mape"} for everything seen so far."""
        nan = float("nan")
        return {
            "mae": self._abs_sum / self._count if self._count else nan,
            "rmse": float(np.sqrt(self._sq_sum / self._count)) if self._count else nan,
            "mape": self._ape_sum / self._ape_count * 100.0 if self._ape_count else nan,
        }


def predict_split(
    model, data: ForecastingData, split: str = "test", batch_size: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Run the model over a split; returns (predictions, targets) in original units.

    ``model`` follows the library's forecaster contract:
    ``model(x, tod, dow) -> Tensor (B, T_f, N, C)`` in *scaled* units.
    The model is switched to eval mode (disables dropout) for the pass.

    This materialises the full split — O(split) memory — which the Fig. 8
    style visualisations need.  When only metrics are wanted, prefer
    :func:`evaluate_split`, which streams batches through
    :class:`HorizonAccumulator` in O(batch) memory.
    """
    if hasattr(model, "eval"):
        model.eval()
    predictions, targets = [], []
    with inference_mode():
        for batch in data.loader(split, batch_size=batch_size, shuffle=False):
            out = model(batch.x, batch.tod, batch.dow)
            predictions.append(data.scaler.inverse_transform(out.numpy()))
            targets.append(batch.y)
    return np.concatenate(predictions, axis=0), np.concatenate(targets, axis=0)


def evaluate_split(
    model,
    data: ForecastingData,
    split: str = "test",
    batch_size: int = 64,
    horizons: tuple[int, ...] = HORIZONS,
    null_value: float | None = 0.0,
    return_arrays: bool = False,
):
    """Horizon-wise metrics for a split, streamed in O(batch) memory.

    Equivalent to ``evaluate_horizons(*predict_split(model, data, split))``
    but never materialises the split: each batch's predictions flow through
    one :class:`HorizonAccumulator` per reported horizon plus the all-step
    average.  With ``return_arrays=True`` the full (prediction, target)
    arrays are additionally collected and returned as
    ``(report, prediction, target)`` — the flag the Fig. 8 visualisation
    path uses when it wants both the report and the raw series.
    """
    if hasattr(model, "eval"):
        model.eval()
    accumulators = {str(h): HorizonAccumulator(null_value) for h in horizons}
    accumulators["avg"] = HorizonAccumulator(null_value)
    predictions, targets = [], []
    with inference_mode():
        for batch in data.loader(split, batch_size=batch_size, shuffle=False):
            out = model(batch.x, batch.tod, batch.dow)
            prediction = data.scaler.inverse_transform(out.numpy())
            for h in horizons:
                if h > prediction.shape[1]:
                    raise ValueError(
                        f"horizon {h} exceeds forecast length {prediction.shape[1]}"
                    )
                accumulators[str(h)].update(prediction[:, h - 1], batch.y[:, h - 1])
            accumulators["avg"].update(prediction, batch.y)
            if return_arrays:
                predictions.append(prediction)
                targets.append(batch.y)
    report = {key: acc.compute() for key, acc in accumulators.items()}
    if return_arrays:
        return report, np.concatenate(predictions, axis=0), np.concatenate(targets, axis=0)
    return report


def evaluate_horizons(
    prediction: np.ndarray,
    target: np.ndarray,
    horizons: tuple[int, ...] = HORIZONS,
    null_value: float | None = 0.0,
) -> dict[str, dict[str, float]]:
    """Metrics per horizon plus the average over all forecast steps.

    ``prediction``/``target``: (B, T_f, N, C) arrays in original units.
    Keys are ``"3"``, ``"6"``, ``"12"`` (horizon step counts) and ``"avg"``.
    """
    report: dict[str, dict[str, float]] = {}
    for h in horizons:
        if h > prediction.shape[1]:
            raise ValueError(f"horizon {h} exceeds forecast length {prediction.shape[1]}")
        report[str(h)] = compute_all(prediction[:, h - 1], target[:, h - 1], null_value)
    report["avg"] = compute_all(prediction, target, null_value)
    return report


def evaluate_per_node(
    prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0
) -> np.ndarray:
    """Masked MAE per sensor: (B, T, N, C) arrays -> (N,) vector.

    Useful for spotting sensors the model systematically misses (the
    per-node analysis behind the paper's Fig. 8 discussion).
    """
    if prediction.shape != target.shape:
        raise ValueError("prediction and target shapes must match")
    num_nodes = target.shape[2]
    # One vectorized pass instead of a per-node loop: mask null targets, then
    # reduce |error| sums and valid counts over every axis except the node axis.
    if null_value is None:
        mask = np.ones(target.shape, dtype=bool)
    else:
        mask = ~np.isclose(target, null_value)
    axes = tuple(a for a in range(target.ndim) if a != 2)
    sums = np.where(mask, np.abs(prediction - target), 0.0).sum(axis=axes, dtype=np.float64)
    counts = mask.sum(axis=axes)
    return np.divide(
        sums, counts, out=np.full(num_nodes, np.nan), where=counts > 0
    )


def horizon_curve(
    prediction: np.ndarray,
    target: np.ndarray,
    metric: str = "mae",
    null_value: float | None = 0.0,
) -> np.ndarray:
    """One metric value per forecast step: -> (T_f,) array.

    The full curve behind the paper's three reported horizons; handy for
    plotting error growth.
    """
    if metric not in ("mae", "rmse", "mape"):
        raise ValueError(f"unknown metric {metric!r}")
    steps = prediction.shape[1]
    return np.array(
        [
            compute_all(prediction[:, t], target[:, t], null_value)[metric]
            for t in range(steps)
        ]
    )


def format_horizon_report(name: str, report: dict[str, dict[str, float]]) -> str:
    """One table row per horizon, in the paper's column order."""
    lines = [f"{name}:"]
    for key in sorted(report, key=lambda k: (k == "avg", k.zfill(3))):
        metrics = report[key]
        label = f"horizon {key}" if key != "avg" else "average  "
        lines.append(
            f"  {label}: MAE {metrics['mae']:7.3f}  RMSE {metrics['rmse']:7.3f}  "
            f"MAPE {metrics['mape']:6.2f}%"
        )
    return "\n".join(lines)
