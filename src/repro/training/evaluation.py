"""Horizon-wise evaluation of a trained forecaster.

Mirrors the paper's reporting: MAE / RMSE / MAPE at horizons 3 (15 min),
6 (30 min) and 12 (1 hour), plus the all-horizon average.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import ForecastingData
from ..tensor import no_grad
from .metrics import HORIZONS, compute_all

__all__ = [
    "predict_split",
    "evaluate_horizons",
    "evaluate_per_node",
    "horizon_curve",
    "format_horizon_report",
]


def predict_split(
    model, data: ForecastingData, split: str = "test", batch_size: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Run the model over a split; returns (predictions, targets) in original units.

    ``model`` follows the library's forecaster contract:
    ``model(x, tod, dow) -> Tensor (B, T_f, N, C)`` in *scaled* units.
    The model is switched to eval mode (disables dropout) for the pass.
    """
    if hasattr(model, "eval"):
        model.eval()
    predictions, targets = [], []
    with no_grad():
        for batch in data.loader(split, batch_size=batch_size, shuffle=False):
            out = model(batch.x, batch.tod, batch.dow)
            predictions.append(data.scaler.inverse_transform(out.numpy()))
            targets.append(batch.y)
    return np.concatenate(predictions, axis=0), np.concatenate(targets, axis=0)


def evaluate_horizons(
    prediction: np.ndarray,
    target: np.ndarray,
    horizons: tuple[int, ...] = HORIZONS,
    null_value: float | None = 0.0,
) -> dict[str, dict[str, float]]:
    """Metrics per horizon plus the average over all forecast steps.

    ``prediction``/``target``: (B, T_f, N, C) arrays in original units.
    Keys are ``"3"``, ``"6"``, ``"12"`` (horizon step counts) and ``"avg"``.
    """
    report: dict[str, dict[str, float]] = {}
    for h in horizons:
        if h > prediction.shape[1]:
            raise ValueError(f"horizon {h} exceeds forecast length {prediction.shape[1]}")
        report[str(h)] = compute_all(prediction[:, h - 1], target[:, h - 1], null_value)
    report["avg"] = compute_all(prediction, target, null_value)
    return report


def evaluate_per_node(
    prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0
) -> np.ndarray:
    """Masked MAE per sensor: (B, T, N, C) arrays -> (N,) vector.

    Useful for spotting sensors the model systematically misses (the
    per-node analysis behind the paper's Fig. 8 discussion).
    """
    if prediction.shape != target.shape:
        raise ValueError("prediction and target shapes must match")
    num_nodes = target.shape[2]
    errors = np.empty(num_nodes)
    for node in range(num_nodes):
        errors[node] = compute_all(
            prediction[:, :, node], target[:, :, node], null_value
        )["mae"]
    return errors


def horizon_curve(
    prediction: np.ndarray,
    target: np.ndarray,
    metric: str = "mae",
    null_value: float | None = 0.0,
) -> np.ndarray:
    """One metric value per forecast step: -> (T_f,) array.

    The full curve behind the paper's three reported horizons; handy for
    plotting error growth.
    """
    if metric not in ("mae", "rmse", "mape"):
        raise ValueError(f"unknown metric {metric!r}")
    steps = prediction.shape[1]
    return np.array(
        [
            compute_all(prediction[:, t], target[:, t], null_value)[metric]
            for t in range(steps)
        ]
    )


def format_horizon_report(name: str, report: dict[str, dict[str, float]]) -> str:
    """One table row per horizon, in the paper's column order."""
    lines = [f"{name}:"]
    for key in sorted(report, key=lambda k: (k == "avg", k.zfill(3))):
        metrics = report[key]
        label = f"horizon {key}" if key != "avg" else "average  "
        lines.append(
            f"  {label}: MAE {metrics['mae']:7.3f}  RMSE {metrics['rmse']:7.3f}  "
            f"MAPE {metrics['mape']:6.2f}%"
        )
    return "\n".join(lines)
