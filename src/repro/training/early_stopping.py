"""Early stopping on validation loss (Sec. 6.1: "we employ early stopping")."""

from __future__ import annotations

import numpy as np

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Stop when validation loss has not improved for ``patience`` epochs.

    Also keeps a copy of the best parameter snapshot so training can restore
    the best model rather than the last one.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float("inf")
        self.best_state: dict[str, np.ndarray] | None = None
        self.bad_epochs = 0

    def update(self, loss: float, state: dict[str, np.ndarray]) -> bool:
        """Record an epoch result; returns True when training should stop.

        The snapshot is deep-copied: the caller usually passes a live
        ``state_dict`` whose arrays subsequent training steps keep writing
        to, and the "best" weights must not drift with them.
        """
        if not np.isfinite(loss):
            self.bad_epochs += 1
            return self.bad_epochs >= self.patience
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.best_state = {name: np.array(value, copy=True) for name, value in state.items()}
            self.bad_epochs = 0
            return False
        self.bad_epochs += 1
        return self.bad_epochs >= self.patience

    def state_dict(self) -> dict:
        """Serialisable snapshot: counters plus a copy of the best weights."""
        return {
            "best_loss": float(self.best_loss),
            "bad_epochs": int(self.bad_epochs),
            "patience": int(self.patience),
            "min_delta": float(self.min_delta),
            "best_state": (
                None
                if self.best_state is None
                else {name: value.copy() for name, value in self.best_state.items()}
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.best_loss = float(state["best_loss"])
        self.bad_epochs = int(state["bad_epochs"])
        self.patience = int(state["patience"])
        self.min_delta = float(state["min_delta"])
        best = state["best_state"]
        self.best_state = (
            None if best is None else {name: np.array(value, copy=True) for name, value in best.items()}
        )
