"""Early stopping on validation loss (Sec. 6.1: "we employ early stopping")."""

from __future__ import annotations

import numpy as np

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Stop when validation loss has not improved for ``patience`` epochs.

    Also keeps a copy of the best parameter snapshot so training can restore
    the best model rather than the last one.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float("inf")
        self.best_state: dict[str, np.ndarray] | None = None
        self.bad_epochs = 0

    def update(self, loss: float, state: dict[str, np.ndarray]) -> bool:
        """Record an epoch result; returns True when training should stop."""
        if not np.isfinite(loss):
            self.bad_epochs += 1
            return self.bad_epochs >= self.patience
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.best_state = state
            self.bad_epochs = 0
            return False
        self.bad_epochs += 1
        return self.bad_epochs >= self.patience
