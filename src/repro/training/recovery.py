"""NaN-rollback recovery policy for the trainer.

Without a policy the trainer keeps its legacy behaviour: a NaN loss flows
through, the NaN validation MAE counts against early-stopping patience, and
``TrainerConfig(detect_anomaly=True)`` is the fail-fast option.  With
``TrainerConfig(recovery=RecoveryPolicy(...))`` the trainer instead treats a
bad batch as a fault: skip it, restore the last good model+optimizer
snapshot, optionally back the learning rate off, and keep going — up to a
bounded number of *consecutive* failures, after which
:class:`RecoveryExhausted` surfaces the underlying problem.  Every rollback
is emitted as a ``"recovery"`` telemetry record through the trainer's
:class:`~repro.obs.MetricsSink`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryPolicy", "RecoveryExhausted"]


class RecoveryExhausted(RuntimeError):
    """Raised when consecutive rollbacks exceed ``RecoveryPolicy.max_retries``."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the trainer's NaN-rollback recovery path.

    Parameters
    ----------
    max_retries:
        Consecutive failed batches tolerated before
        :class:`RecoveryExhausted` is raised; any successful step resets
        the counter.
    lr_backoff:
        Learning-rate multiplier applied per rollback (``1.0`` keeps the
        rate).  Backoff is cumulative across consecutive rollbacks and also
        rescales an attached scheduler's base rate so the reduction
        survives the next scheduler step.
    min_lr:
        Floor under the backed-off learning rate.
    snapshot_every:
        Successful optimizer steps between good-state snapshots; rollback
        restores the most recent one.  ``1`` (the default) rolls back to
        the state just before the failing batch.
    """

    max_retries: int = 3
    lr_backoff: float = 0.5
    min_lr: float = 1e-6
    snapshot_every: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError("lr_backoff must be in (0, 1]")
        if self.min_lr <= 0:
            raise ValueError("min_lr must be positive")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
