"""Training, evaluation, metrics and significance testing."""

from .curriculum import CurriculumSchedule
from .early_stopping import EarlyStopping
from .evaluation import (
    HorizonAccumulator,
    evaluate_horizons,
    evaluate_per_node,
    evaluate_split,
    format_horizon_report,
    horizon_curve,
    predict_split,
)
from .metrics import HORIZONS, compute_all, masked_mae, masked_mape, masked_rmse
from .recovery import RecoveryExhausted, RecoveryPolicy
from .significance import SignificanceResult, paired_t_test
from .trainer import Trainer, TrainerConfig, TrainingHistory
from .tuning import GridResult, grid_search

__all__ = [
    "CurriculumSchedule",
    "EarlyStopping",
    "HORIZONS",
    "HorizonAccumulator",
    "RecoveryExhausted",
    "RecoveryPolicy",
    "SignificanceResult",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "compute_all",
    "evaluate_horizons",
    "evaluate_per_node",
    "evaluate_split",
    "horizon_curve",
    "format_horizon_report",
    "GridResult",
    "grid_search",
    "masked_mae",
    "masked_mape",
    "masked_rmse",
    "paired_t_test",
    "predict_split",
]
