"""Evaluation metrics (paper Eq. 17): masked MAE, RMSE and MAPE.

All metrics ignore entries where the ground truth equals the null value
(zero) — the convention for traffic data, where zeros encode sensor
failures, used by DCRNN, Graph WaveNet and D2STGNN alike.
"""

from __future__ import annotations

import numpy as np

__all__ = ["masked_mae", "masked_rmse", "masked_mape", "compute_all", "HORIZONS"]

HORIZONS = (3, 6, 12)  # 15 min / 30 min / 1 hour at 5-minute sampling


def _mask(target: np.ndarray, null_value: float | None) -> np.ndarray:
    if null_value is None:
        return np.ones_like(target, dtype=bool)
    return ~np.isclose(target, null_value)


def masked_mae(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0) -> float:
    """Mean absolute error over non-null target entries."""
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    return float(np.abs(prediction[mask] - target[mask]).mean())


def masked_rmse(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0) -> float:
    """Root mean squared error over non-null target entries."""
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    return float(np.sqrt(np.square(prediction[mask] - target[mask]).mean()))


def masked_mape(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0) -> float:
    """Mean absolute percentage error, in percent."""
    mask = _mask(target, null_value) & (np.abs(target) > 1e-4)
    if not mask.any():
        return float("nan")
    return float((np.abs(prediction[mask] - target[mask]) / np.abs(target[mask])).mean() * 100.0)


def compute_all(
    prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0
) -> dict[str, float]:
    """Return {"mae", "rmse", "mape"} for one prediction/target pair."""
    return {
        "mae": masked_mae(prediction, target, null_value),
        "rmse": masked_rmse(prediction, target, null_value),
        "mape": masked_mape(prediction, target, null_value),
    }
