"""Hyper-parameter grid search.

A small, deterministic grid-search driver used for sensitivity studies
(Fig. 7-style sweeps) and model selection.  Each configuration is trained
from a fresh seed and scored by validation MAE; results come back sorted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from ..data.datasets import ForecastingData
from ..nn.module import Module
from .trainer import Trainer, TrainerConfig

__all__ = ["GridResult", "grid_search"]


@dataclass(frozen=True)
class GridResult:
    """Outcome of one grid point."""

    params: dict
    val_mae: float
    test_report: dict
    epochs_run: int

    def __repr__(self) -> str:
        return f"GridResult({self.params}, val_mae={self.val_mae:.4f})"


def grid_search(
    build_model: Callable[..., Module],
    data: ForecastingData,
    grid: dict[str, list],
    trainer_config: TrainerConfig | None = None,
    seed: int = 0,
) -> list[GridResult]:
    """Train one model per grid point and rank them by validation MAE.

    Parameters
    ----------
    build_model:
        Called with one keyword argument per grid axis; returns a fresh
        model following the forecaster contract.
    grid:
        ``{param_name: [candidate values, ...]}``.  The cartesian product is
        evaluated — keep it small, numpy training is not free.

    Returns
    -------
    list[GridResult]
        Sorted best-first.  ``test_report`` holds the horizon metrics of the
        corresponding model so the final model-selection step does not touch
        the test set twice.
    """
    if not grid:
        raise ValueError("grid must contain at least one axis")
    for name, values in grid.items():
        if not values:
            raise ValueError(f"grid axis {name!r} has no candidate values")
    base_config = trainer_config or TrainerConfig()

    results = []
    axes = sorted(grid)
    for combo in itertools.product(*(grid[a] for a in axes)):
        params = dict(zip(axes, combo))
        from ..utils.seed import set_seed

        set_seed(seed)
        model = build_model(**params)
        trainer = Trainer(model, data, base_config)
        history = trainer.train()
        results.append(
            GridResult(
                params=params,
                val_mae=trainer.validate(),
                test_report=trainer.evaluate(),
                epochs_run=history.epochs_run,
            )
        )
    return sorted(results, key=lambda r: r.val_mae)
