"""Training loop for the neural forecasters.

Implements the paper's recipe (Sec. 5.4, 6.1): Adam at lr 1e-3, masked MAE
loss in original units, curriculum learning over horizons, gradient
clipping, and early stopping on validation MAE.  The same trainer drives
D2STGNN, all its ablation variants and every neural baseline — they share
the ``model(x, tod, dow) -> (B, T_f, N, C)`` forward contract.

Seq2seq baselines whose forward accepts ``targets``/``teacher_forcing``
(DCRNN, DGCRN) can additionally be trained with scheduled sampling
(``TrainerConfig(scheduled_sampling=True)``): the decoder consumes the
ground truth of the previous step with a probability that decays linearly
to zero over ``sampling_decay_batches`` — the original DCRNN recipe.

Telemetry: pass a :class:`~repro.obs.MetricsSink` as ``Trainer(...,
sink=...)`` to receive one structured record per epoch (throughput in
windows/sec, gradient norms, memory high-water mark, scheduled-sampling
state) plus an end-of-run summary; the JSON-lines schema lives in
:mod:`repro.obs.telemetry` and is documented in ``docs/observability.md``.

Debugging: ``TrainerConfig(detect_anomaly=True)`` runs every training step
under :func:`repro.check.detect_anomaly`, so the first NaN/Inf raises
naming the originating op (and, when a sink is attached, lands in the
telemetry stream as a ``sanitizer`` record) instead of surfacing as a NaN
loss many batches later.
"""

from __future__ import annotations

import contextlib
import inspect
from dataclasses import dataclass, field

import numpy as np

from ..data.datasets import ForecastingData
from ..nn.module import Module
from ..obs.sinks import MetricsSink
from ..obs.telemetry import epoch_record, train_end_record
from ..optim import Adam, StepLR, clip_grad_norm
from ..tensor import Tensor, functional as F
from ..utils.timer import now
from .curriculum import CurriculumSchedule
from .early_stopping import EarlyStopping
from .evaluation import evaluate_horizons, predict_split
from .metrics import masked_mae

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 0.001
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    curriculum: bool = True
    curriculum_step: int = 8  # batches per horizon increment
    patience: int = 10
    lr_decay_epochs: int = 0  # 0 disables; else StepLR period (DCRNN-style)
    lr_decay_gamma: float = 0.5
    scheduled_sampling: bool = False  # DCRNN-style teacher forcing decay
    sampling_decay_batches: int = 200  # batches until teacher forcing reaches 0
    detect_anomaly: bool = False  # run each step under repro.check.detect_anomaly
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass
class TrainingHistory:
    """Per-epoch record of a run."""

    train_loss: list[float] = field(default_factory=list)
    val_mae: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    grad_norm_mean: list[float] = field(default_factory=list)
    windows_per_second: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def mean_epoch_seconds(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0


class Trainer:
    """Fit a forecaster on a :class:`~repro.data.ForecastingData` bundle."""

    def __init__(
        self,
        model: Module,
        data: ForecastingData,
        config: TrainerConfig | None = None,
        sink: MetricsSink | None = None,
    ) -> None:
        self.model = model
        self.data = data
        self.config = config or TrainerConfig()
        self.sink = sink
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.scheduler = (
            StepLR(self.optimizer, self.config.lr_decay_epochs, self.config.lr_decay_gamma)
            if self.config.lr_decay_epochs > 0
            else None
        )
        self.history = TrainingHistory()
        self._batches_seen = 0
        self._supports_sampling = self.config.scheduled_sampling and (
            "teacher_forcing" in inspect.signature(model.forward).parameters
        )

    # ------------------------------------------------------------------
    def _teacher_forcing_ratio(self) -> float:
        """Linear decay from 1 to 0 over ``sampling_decay_batches``."""
        decay = self.config.sampling_decay_batches
        return max(0.0, 1.0 - self._batches_seen / max(1, decay))

    def _loss(self, batch, active_horizon: int) -> Tensor:
        """Masked MAE in original units over the curriculum-active horizon."""
        scaler = self.data.scaler
        if self._supports_sampling:
            prediction = self.model(
                batch.x,
                batch.tod,
                batch.dow,
                targets=scaler.transform(batch.y),
                teacher_forcing=self._teacher_forcing_ratio(),
            )
        else:
            prediction = self.model(batch.x, batch.tod, batch.dow)
        self._batches_seen += 1
        prediction = prediction * scaler.std + scaler.mean
        target = Tensor(batch.y[:, :active_horizon])
        return F.masked_mae_loss(prediction[:, :active_horizon], target)

    def train(self) -> TrainingHistory:
        """Run the full loop; restores the best-validation parameters."""
        cfg = self.config
        if cfg.detect_anomaly:
            # Lazy import: the sanitizer pulls in repro.check, which most
            # training runs never need.
            from ..check.sanitizers import detect_anomaly

            def step_guard():
                return detect_anomaly(sink=self.sink)
        else:
            step_guard = contextlib.nullcontext
        rng = np.random.default_rng(cfg.seed)
        horizon = self.data.windows.horizon
        curriculum = CurriculumSchedule(
            horizon, step_every=cfg.curriculum_step, enabled=cfg.curriculum
        )
        stopper = EarlyStopping(patience=cfg.patience)
        run_start = now()
        early_stopped = False

        for epoch in range(cfg.epochs):
            start = now()
            self.model.train()
            losses = []
            grad_norms = []
            windows = 0
            loader = self.data.loader("train", batch_size=cfg.batch_size, shuffle=True, rng=rng)
            for batch in loader:
                self.optimizer.zero_grad()
                with step_guard():
                    loss = self._loss(batch, curriculum.active_horizon)
                    loss.backward()
                grad_norms.append(clip_grad_norm(self.model.parameters(), cfg.clip_norm))
                self.optimizer.step()
                losses.append(loss.item())
                windows += batch.x.shape[0]
                curriculum.step()
            elapsed = now() - start
            if self.scheduler is not None:
                self.scheduler.step()

            self.model.eval()
            val_mae = self.validate()
            self.history.train_loss.append(float(np.mean(losses)))
            self.history.val_mae.append(val_mae)
            self.history.epoch_seconds.append(elapsed)
            self.history.grad_norm_mean.append(float(np.mean(grad_norms)) if grad_norms else 0.0)
            self.history.windows_per_second.append(windows / elapsed if elapsed > 0 else 0.0)
            if cfg.verbose:
                print(
                    f"epoch {epoch + 1:3d}  loss {np.mean(losses):8.4f}  "
                    f"val MAE {val_mae:8.4f}  ({elapsed:.1f}s)"
                )
            if self.sink is not None:
                self.sink.emit(epoch_record(
                    epoch=epoch + 1,
                    train_loss=float(np.mean(losses)),
                    val_mae=float(val_mae),
                    epoch_seconds=elapsed,
                    windows=windows,
                    grad_norm_mean=float(np.mean(grad_norms)) if grad_norms else 0.0,
                    grad_norm_max=float(np.max(grad_norms)) if grad_norms else 0.0,
                    learning_rate=float(self.optimizer.lr),
                    active_horizon=curriculum.active_horizon,
                    teacher_forcing_ratio=(
                        self._teacher_forcing_ratio() if self._supports_sampling else None
                    ),
                ))
            if stopper.update(val_mae, self.model.state_dict()):
                early_stopped = True
                break

        if stopper.best_state is not None:
            self.model.load_state_dict(stopper.best_state)
        if self.sink is not None:
            self.sink.emit(train_end_record(
                epochs_run=self.history.epochs_run,
                best_val_mae=float(stopper.best_loss),
                total_seconds=now() - run_start,
                early_stopped=early_stopped,
            ))
        return self.history

    # ------------------------------------------------------------------
    def validate(self) -> float:
        """Masked MAE on the validation split (the early-stopping signal)."""
        prediction, target = predict_split(self.model, self.data, split="val")
        return masked_mae(prediction, target)

    def evaluate(self, split: str = "test") -> dict[str, dict[str, float]]:
        """Horizon-wise test metrics of the (best) trained model."""
        self.model.eval()
        prediction, target = predict_split(self.model, self.data, split=split)
        return evaluate_horizons(prediction, target)
