"""Training loop for the neural forecasters.

Implements the paper's recipe (Sec. 5.4, 6.1): Adam at lr 1e-3, masked MAE
loss in original units, curriculum learning over horizons, gradient
clipping, and early stopping on validation MAE.  The same trainer drives
D2STGNN, all its ablation variants and every neural baseline — they share
the ``model(x, tod, dow) -> (B, T_f, N, C)`` forward contract.

Seq2seq baselines whose forward accepts ``targets``/``teacher_forcing``
(DCRNN, DGCRN) can additionally be trained with scheduled sampling
(``TrainerConfig(scheduled_sampling=True)``): the decoder consumes the
ground truth of the previous step with a probability that decays linearly
to zero over ``sampling_decay_batches`` — the original DCRNN recipe.

Telemetry: pass a :class:`~repro.obs.MetricsSink` as ``Trainer(...,
sink=...)`` to receive one structured record per epoch (throughput in
windows/sec, gradient norms, memory high-water mark, scheduled-sampling
state) plus an end-of-run summary; the JSON-lines schema lives in
:mod:`repro.obs.telemetry` and is documented in ``docs/observability.md``.

Fault tolerance (see ``docs/robustness.md``):

* **Crash-safe resume** — ``fit(state_path=...)`` writes a full
  training-state checkpoint (optimizer moments, RNG states, curriculum and
  early-stopping counters) after every epoch via
  :func:`~repro.utils.checkpoint.save_training_checkpoint`;
  ``fit(resume_from=...)`` restores it so a killed run continues to the
  same result as an uninterrupted one.
* **NaN rollback recovery** — ``TrainerConfig(recovery=RecoveryPolicy())``
  turns a non-finite loss/gradient (or an
  :class:`~repro.check.AnomalyError`) into a recoverable event: the batch
  is skipped, the last good model+optimizer snapshot restored, the learning
  rate optionally backed off, and a ``"recovery"`` telemetry record
  emitted.
* **Fault injection** — ``Trainer(..., faults=FaultSchedule([...]))``
  exercises those paths with the injectors from :mod:`repro.faults`.

Debugging: ``TrainerConfig(detect_anomaly=True)`` runs every training step
under :func:`repro.check.detect_anomaly`, so the first NaN/Inf raises
naming the originating op (and, when a sink is attached, lands in the
telemetry stream as a ``sanitizer`` record) instead of surfacing as a NaN
loss many batches later.
"""

from __future__ import annotations

import contextlib
import dataclasses
import inspect
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..check.sanitizers import AnomalyError
from ..data.datasets import ForecastingData
from ..nn.module import Module
from ..obs.sinks import MetricsSink
from ..obs.telemetry import epoch_record, recovery_record, resume_record, train_end_record
from ..optim import Adam, StepLR, clip_grad_norm
from ..tensor import Tensor, functional as F
from ..utils.checkpoint import (
    CheckpointError,
    load_training_checkpoint,
    save_training_checkpoint,
)
from ..utils.seed import get_rng
from ..utils.timer import now
from .curriculum import CurriculumSchedule
from .early_stopping import EarlyStopping
from .evaluation import evaluate_split
from .recovery import RecoveryExhausted, RecoveryPolicy

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 0.001
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    curriculum: bool = True
    curriculum_step: int = 8  # batches per horizon increment
    patience: int = 10
    lr_decay_epochs: int = 0  # 0 disables; else StepLR period (DCRNN-style)
    lr_decay_gamma: float = 0.5
    scheduled_sampling: bool = False  # DCRNN-style teacher forcing decay
    sampling_decay_batches: int = 200  # batches until teacher forcing reaches 0
    detect_anomaly: bool = False  # run each step under repro.check.detect_anomaly
    recovery: RecoveryPolicy | None = None  # None = a bad batch kills the run
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass
class TrainingHistory:
    """Per-epoch record of a run."""

    train_loss: list[float] = field(default_factory=list)
    val_mae: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    grad_norm_mean: list[float] = field(default_factory=list)
    windows_per_second: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def mean_epoch_seconds(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0


# Config fields that may legitimately differ between the original run and a
# resumed one: extending `epochs` continues training, `verbose` is cosmetic.
_RESUME_IGNORED_FIELDS = ("epochs", "verbose")


class Trainer:
    """Fit a forecaster on a :class:`~repro.data.ForecastingData` bundle."""

    def __init__(
        self,
        model: Module,
        data: ForecastingData,
        config: TrainerConfig | None = None,
        sink: MetricsSink | None = None,
        faults=None,
    ) -> None:
        self.model = model
        self.data = data
        self.config = config or TrainerConfig()
        self.sink = sink
        self.faults = faults  # a repro.faults.FaultSchedule, or None
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.scheduler = (
            StepLR(self.optimizer, self.config.lr_decay_epochs, self.config.lr_decay_gamma)
            if self.config.lr_decay_epochs > 0
            else None
        )
        self.history = TrainingHistory()
        self.resumed_from: str | None = None
        self._batches_seen = 0
        self._global_step = 0
        self._recoveries = 0
        self._stopper: EarlyStopping | None = None
        self._supports_sampling = self.config.scheduled_sampling and (
            "teacher_forcing" in inspect.signature(model.forward).parameters
        )

    # ------------------------------------------------------------------
    def _teacher_forcing_ratio(self) -> float:
        """Linear decay from 1 to 0 over ``sampling_decay_batches``."""
        decay = self.config.sampling_decay_batches
        return max(0.0, 1.0 - self._batches_seen / max(1, decay))

    def _loss(self, batch, active_horizon: int) -> Tensor:
        """Masked MAE in original units over the curriculum-active horizon."""
        scaler = self.data.scaler
        if self._supports_sampling:
            prediction = self.model(
                batch.x,
                batch.tod,
                batch.dow,
                targets=scaler.transform(batch.y),
                teacher_forcing=self._teacher_forcing_ratio(),
            )
        else:
            prediction = self.model(batch.x, batch.tod, batch.dow)
        self._batches_seen += 1
        prediction = prediction * scaler.std + scaler.mean
        target = Tensor(batch.y[:, :active_horizon])
        return F.masked_mae_loss(prediction[:, :active_horizon], target)

    # ------------------------------------------------------------------
    # Recovery helpers
    # ------------------------------------------------------------------
    def _take_snapshot(self) -> dict:
        """Deep-copy the model parameters and optimizer state for rollback."""
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
        }

    def _rollback(
        self,
        snapshot: dict,
        policy: RecoveryPolicy,
        *,
        epoch: int,
        step: int,
        reason: str,
        consecutive: int,
    ) -> None:
        """Restore the last good snapshot and apply the LR backoff."""
        lr_before = float(self.optimizer.lr)
        self.model.load_state_dict(snapshot["model"])
        self.optimizer.load_state_dict(snapshot["optimizer"])
        lr_after = max(policy.min_lr, lr_before * policy.lr_backoff)
        self.optimizer.lr = lr_after
        if self.scheduler is not None and lr_before > 0:
            # Rescale the schedule's base rate too, otherwise the next
            # scheduler.step() would silently undo the backoff.
            self.scheduler.base_lr *= lr_after / lr_before
        if self.sink is not None:
            self.sink.emit(recovery_record(
                epoch=epoch + 1,
                step=step,
                reason=reason,
                lr_before=lr_before,
                lr_after=lr_after,
                consecutive_failures=consecutive,
                total_recoveries=self._recoveries,
            ))

    # ------------------------------------------------------------------
    # Crash-safe resume helpers
    # ------------------------------------------------------------------
    def _save_run_state(
        self,
        path: str | Path,
        *,
        epoch: int,
        rng: np.random.Generator,
        curriculum: CurriculumSchedule,
        stopper: EarlyStopping,
        early_stopped: bool,
    ) -> None:
        """Atomically persist everything a resumed run needs after ``epoch``."""
        trainer_state = {
            "next_epoch": epoch + 1,
            "early_stopped": bool(early_stopped),
            "global_step": int(self._global_step),
            "batches_seen": int(self._batches_seen),
            "total_recoveries": int(self._recoveries),
            "curriculum": curriculum.state_dict(),
            "rng_state": rng.bit_generator.state,
            "library_rng_state": get_rng().bit_generator.state,
            "history": {
                "train_loss": list(self.history.train_loss),
                "val_mae": list(self.history.val_mae),
                "epoch_seconds": list(self.history.epoch_seconds),
                "grad_norm_mean": list(self.history.grad_norm_mean),
                "windows_per_second": list(self.history.windows_per_second),
            },
            "config": dataclasses.asdict(self.config),
        }
        save_training_checkpoint(
            path,
            model=self.model,
            optimizer=self.optimizer,
            scheduler=self.scheduler,
            stopper=stopper,
            trainer_state=trainer_state,
        )

    def _restore_run(
        self,
        path: str | Path,
        rng: np.random.Generator,
        curriculum: CurriculumSchedule,
        stopper: EarlyStopping,
    ) -> tuple[int, bool]:
        """Restore a run from ``path``; returns (start_epoch, early_stopped)."""
        info = load_training_checkpoint(
            path,
            model=self.model,
            optimizer=self.optimizer,
            scheduler=self.scheduler,
            stopper=stopper,
        )
        state = info["trainer_state"]
        stored_config = dict(state.get("config", {}))
        current_config = dataclasses.asdict(self.config)
        for name in _RESUME_IGNORED_FIELDS:
            stored_config.pop(name, None)
            current_config.pop(name, None)
        if stored_config != current_config:
            differing = sorted(
                key
                for key in set(stored_config) | set(current_config)
                if stored_config.get(key) != current_config.get(key)
            )
            raise CheckpointError(
                f"cannot resume from {path}: config differs on {differing}"
            )
        self._global_step = int(state["global_step"])
        self._batches_seen = int(state["batches_seen"])
        self._recoveries = int(state["total_recoveries"])
        curriculum.load_state_dict(state["curriculum"])
        rng.bit_generator.state = state["rng_state"]
        get_rng().bit_generator.state = state["library_rng_state"]
        for name, values in state["history"].items():
            getattr(self.history, name)[:] = [float(v) for v in values]
        self.resumed_from = str(path)
        start_epoch = int(state["next_epoch"])
        if self.sink is not None:
            self.sink.emit(resume_record(
                epoch=start_epoch + 1, global_step=self._global_step, path=str(path)
            ))
        return start_epoch, bool(state["early_stopped"])

    # ------------------------------------------------------------------
    def train(self) -> TrainingHistory:
        """Run the full loop (no checkpointing); alias for :meth:`fit`."""
        return self.fit()

    def fit(
        self,
        resume_from: str | Path | None = None,
        state_path: str | Path | None = None,
    ) -> TrainingHistory:
        """Run the training loop; restores the best-validation parameters.

        ``state_path`` persists a full training-state checkpoint (atomic
        write) after every epoch; ``resume_from`` restores one, continuing a
        killed run to the same result as an uninterrupted one — same
        optimizer step count, RNG streams, curriculum position and
        early-stopping state.  The ``repro train --resume`` CLI flag passes
        the same file for both.
        """
        cfg = self.config
        policy = cfg.recovery
        if cfg.detect_anomaly:
            # Lazy import: the sanitizer's method swap is only needed when on.
            from ..check.sanitizers import detect_anomaly

            def step_guard():
                return detect_anomaly(sink=self.sink)
        else:
            step_guard = contextlib.nullcontext
        rng = np.random.default_rng(cfg.seed)
        horizon = self.data.windows.horizon
        curriculum = CurriculumSchedule(
            horizon, step_every=cfg.curriculum_step, enabled=cfg.curriculum
        )
        stopper = EarlyStopping(patience=cfg.patience)
        self._stopper = stopper
        start_epoch = 0
        early_stopped = False
        if resume_from is not None:
            start_epoch, early_stopped = self._restore_run(
                resume_from, rng, curriculum, stopper
            )
        run_start = now()

        for epoch in range(start_epoch, cfg.epochs):
            if early_stopped:
                break  # resumed a run that had already early-stopped
            start = now()
            self.model.train()
            losses: list[float] = []
            grad_norms: list[float] = []
            windows = 0
            snapshot = self._take_snapshot() if policy is not None else None
            consecutive_failures = 0
            steps_since_snapshot = 0
            loader = self.data.loader("train", batch_size=cfg.batch_size, shuffle=True, rng=rng)
            for batch in loader:
                step = self._global_step
                self._global_step += 1
                if self.faults is not None:
                    batch = self.faults.corrupt_batch(step, batch)
                fault_ctx = (
                    self.faults.activation_context(step)
                    if self.faults is not None
                    else contextlib.nullcontext()
                )
                self.optimizer.zero_grad()
                try:
                    with fault_ctx, step_guard():
                        loss = self._loss(batch, curriculum.active_horizon)
                        loss_value = loss.item()
                        # Explicit finiteness checks only under a recovery
                        # policy: without one the legacy contract holds (a
                        # NaN loss flows into the epoch mean and the NaN
                        # validation MAE counts against patience).
                        if policy is not None and not np.isfinite(loss_value):
                            raise AnomalyError(
                                f"non-finite training loss ({loss_value})"
                            )
                        loss.backward()
                    if self.faults is not None:
                        self.faults.corrupt_gradients(step, self.model.parameters())
                    norm = clip_grad_norm(self.model.parameters(), cfg.clip_norm)
                    if policy is not None and not np.isfinite(norm):
                        raise AnomalyError(f"non-finite gradient norm ({norm})")
                except AnomalyError as error:
                    curriculum.step()
                    if policy is None:
                        raise
                    consecutive_failures += 1
                    self._recoveries += 1
                    if consecutive_failures > policy.max_retries:
                        raise RecoveryExhausted(
                            f"{consecutive_failures} consecutive failed batches "
                            f"(max_retries={policy.max_retries}): {error}"
                        ) from error
                    self._rollback(
                        snapshot, policy,
                        epoch=epoch, step=step, reason=str(error),
                        consecutive=consecutive_failures,
                    )
                    continue
                self.optimizer.step()
                consecutive_failures = 0
                if policy is not None:
                    steps_since_snapshot += 1
                    if steps_since_snapshot >= policy.snapshot_every:
                        snapshot = self._take_snapshot()
                        steps_since_snapshot = 0
                losses.append(loss_value)
                grad_norms.append(norm)
                windows += batch.x.shape[0]
                curriculum.step()
            elapsed = now() - start
            if self.scheduler is not None:
                self.scheduler.step()

            self.model.eval()
            val_mae = self.validate()
            train_loss = float(np.mean(losses)) if losses else float("nan")
            self.history.train_loss.append(train_loss)
            self.history.val_mae.append(val_mae)
            self.history.epoch_seconds.append(elapsed)
            self.history.grad_norm_mean.append(float(np.mean(grad_norms)) if grad_norms else 0.0)
            self.history.windows_per_second.append(windows / elapsed if elapsed > 0 else 0.0)
            if cfg.verbose:
                print(
                    f"epoch {epoch + 1:3d}  loss {train_loss:8.4f}  "
                    f"val MAE {val_mae:8.4f}  ({elapsed:.1f}s)"
                )
            if self.sink is not None:
                self.sink.emit(epoch_record(
                    epoch=epoch + 1,
                    train_loss=train_loss,
                    val_mae=float(val_mae),
                    epoch_seconds=elapsed,
                    windows=windows,
                    grad_norm_mean=float(np.mean(grad_norms)) if grad_norms else 0.0,
                    grad_norm_max=float(np.max(grad_norms)) if grad_norms else 0.0,
                    learning_rate=float(self.optimizer.lr),
                    active_horizon=curriculum.active_horizon,
                    teacher_forcing_ratio=(
                        self._teacher_forcing_ratio() if self._supports_sampling else None
                    ),
                ))
            early_stopped = stopper.update(val_mae, self.model.state_dict())
            if state_path is not None:
                self._save_run_state(
                    state_path,
                    epoch=epoch,
                    rng=rng,
                    curriculum=curriculum,
                    stopper=stopper,
                    early_stopped=early_stopped,
                )
            if self.faults is not None:
                # After the checkpoint write: a simulated kill here leaves a
                # resumable state file, like a real between-epoch crash.
                self.faults.after_epoch(epoch)
            if early_stopped:
                break

        if stopper.best_state is not None:
            self.model.load_state_dict(stopper.best_state)
        if self.sink is not None:
            self.sink.emit(train_end_record(
                epochs_run=self.history.epochs_run,
                best_val_mae=float(stopper.best_loss),
                total_seconds=now() - run_start,
                early_stopped=early_stopped,
            ))
        return self.history

    # ------------------------------------------------------------------
    def validate(self) -> float:
        """Masked MAE on the validation split (the early-stopping signal).

        Streamed through :func:`evaluate_split`, so validation never
        materialises the whole split.
        """
        report = evaluate_split(self.model, self.data, split="val", horizons=())
        return report["avg"]["mae"]

    def evaluate(self, split: str = "test") -> dict[str, dict[str, float]]:
        """Horizon-wise test metrics of the (best) trained model (streamed)."""
        self.model.eval()
        return evaluate_split(self.model, self.data, split=split)
