"""Curriculum learning over forecast horizons (Sec. 5.4).

Following DGCRN and MTGNN, training starts by supervising only the first
forecast step and periodically widens the supervised horizon until the full
``T_f`` steps contribute to the loss.  This eases optimisation of the
auto-regressive forecast branches: early gradients are not dominated by the
(initially hopeless) long horizons.
"""

from __future__ import annotations

__all__ = ["CurriculumSchedule"]


class CurriculumSchedule:
    """Track the supervised horizon as training progresses.

    Parameters
    ----------
    horizon:
        Full forecast length ``T_f``.
    step_every:
        Number of *batches* between horizon increments.
    enabled:
        When False (the *w/o cl* ablation) the full horizon is supervised
        from the first batch.
    """

    def __init__(self, horizon: int, step_every: int = 16, enabled: bool = True) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if step_every < 1:
            raise ValueError("step_every must be >= 1")
        self.horizon = horizon
        self.step_every = step_every
        self.enabled = enabled
        self._batches = 0

    @property
    def active_horizon(self) -> int:
        """How many forecast steps the loss currently covers."""
        if not self.enabled:
            return self.horizon
        return min(self.horizon, 1 + self._batches // self.step_every)

    @property
    def saturated(self) -> bool:
        return self.active_horizon >= self.horizon

    def step(self) -> int:
        """Advance by one batch; returns the horizon for the *next* batch."""
        self._batches += 1
        return self.active_horizon

    def state_dict(self) -> dict:
        """Serialisable snapshot (the batch counter driving the horizon)."""
        return {"batches": int(self._batches)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._batches = int(state["batches"])
