"""ASTGCN baseline (Guo et al., AAAI 2019).

Attention-based spatial-temporal GCN: a learned *temporal attention*
reweights the history, a learned *spatial attention* modulates the Chebyshev
graph convolution, and a temporal convolution follows.  This is the "lite"
single-component variant (the recent-history component; the original's
daily/weekly periodicity components need weeks of context that the scaled
datasets intentionally do not provide).
"""

from __future__ import annotations

import math

import numpy as np

from .. import nn
from ..graph.transition import symmetric_normalized_laplacian
from ..tensor import Tensor, functional as F
from .common import DirectHead, GatedTemporalConv, cheb_polynomials

__all__ = ["ASTGCN"]


class _AttentionScores(nn.Module):
    """Bilinear attention over one axis of (B, T, N, d) features."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        self.w_q = nn.Linear(dim, dim, bias=False)
        self.w_k = nn.Linear(dim, dim, bias=False)
        self.dim = dim

    def forward(self, features: Tensor) -> Tensor:
        """``features``: (B, L, d) -> (B, L, L) row-stochastic scores."""
        q = self.w_q(features)
        k = self.w_k(features)
        return F.softmax((q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.dim)), axis=-1)


class _ASTBlock(nn.Module):
    def __init__(self, dim: int, polynomials: list[np.ndarray]) -> None:
        super().__init__()
        self.polynomials = polynomials
        self.temporal_attention = _AttentionScores(dim)
        self.spatial_attention = _AttentionScores(dim)
        self.graph_projection = nn.Linear(len(polynomials) * dim, dim)
        self.temporal_conv = GatedTemporalConv(dim, dim)
        self.norm = nn.LayerNorm(dim)

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, nodes, dim = x.shape
        # Temporal attention: mix time steps, per-batch (node-averaged keys).
        time_feat = x.mean(axis=2)  # (B, T, d)
        t_scores = self.temporal_attention(time_feat)  # (B, T, T)
        mixed = (
            t_scores.expand_dims(1)
            @ x.transpose(0, 2, 1, 3)  # (B, N, T, d)
        ).transpose(0, 2, 1, 3)
        # Spatial attention modulates the Chebyshev supports.
        node_feat = mixed.mean(axis=1)  # (B, N, d)
        s_scores = self.spatial_attention(node_feat)  # (B, N, N)
        pieces = []
        for polynomial in self.polynomials:
            support = Tensor(polynomial).expand_dims(0) * s_scores  # (B, N, N)
            pieces.append(support.expand_dims(1) @ mixed)
        hidden = self.graph_projection(Tensor.concatenate(pieces, axis=-1)).relu()
        hidden = self.temporal_conv(hidden)
        return self.norm(hidden + x)


class ASTGCN(nn.Module):
    """Attention-based Spatial-Temporal GCN (recent component)."""

    def __init__(
        self,
        adjacency: np.ndarray,
        hidden_dim: int = 32,
        horizon: int = 12,
        num_blocks: int = 2,
        cheb_order: int = 3,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        polynomials = cheb_polynomials(symmetric_normalized_laplacian(adjacency), cheb_order)
        self.input_projection = nn.Linear(in_channels, hidden_dim)
        self.blocks = nn.ModuleList(
            [_ASTBlock(hidden_dim, polynomials) for _ in range(num_blocks)]
        )
        self.head = DirectHead(hidden_dim, horizon, out_channels)

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.input_projection(x)
        for block in self.blocks:
            hidden = block(hidden)
        return self.head(hidden[:, hidden.shape[1] - 1])
