"""DCRNN baseline (Li et al., ICLR 2018).

Models traffic as a diffusion process: the matrix multiplications inside a
GRU are replaced by diffusion convolutions over the forward/backward
transition matrices (the DCGRU cell), wrapped in a sequence-to-sequence
encoder-decoder.  The decoder is run without teacher forcing (inference
mode), which the original paper anneals towards anyway.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph.transition import transition_pair
from ..tensor import Tensor
from ..utils.seed import get_rng
from .common import GraphConv

__all__ = ["DCGRUCell", "DCRNN"]


class DCGRUCell(nn.Module):
    """GRU cell whose gates are diffusion convolutions (DCRNN Sec. 2.2)."""

    def __init__(self, in_dim: int, hidden_dim: int, num_supports: int, order: int = 2) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gates = GraphConv(in_dim + hidden_dim, 2 * hidden_dim, num_supports, order)
        self.candidate = GraphConv(in_dim + hidden_dim, hidden_dim, num_supports, order)

    def forward(self, x: Tensor, h: Tensor, supports: list) -> Tensor:
        """``x``: (B, N, in_dim); ``h``: (B, N, hidden)."""
        combined = Tensor.concatenate([x, h], axis=-1)
        gates = self.gates(combined, supports).sigmoid()
        r = gates[..., : self.hidden_dim]
        u = gates[..., self.hidden_dim :]
        candidate = self.candidate(Tensor.concatenate([x, r * h], axis=-1), supports).tanh()
        return u * h + (1.0 - u) * candidate


class DCRNN(nn.Module):
    """Diffusion Convolutional Recurrent Neural Network (seq2seq)."""

    def __init__(
        self,
        adjacency: np.ndarray,
        hidden_dim: int = 32,
        horizon: int = 12,
        order: int = 2,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        self.horizon = horizon
        self.out_channels = out_channels
        p_f, p_b = transition_pair(adjacency)
        self.supports = [p_f, p_b]
        self.encoder = DCGRUCell(in_channels, hidden_dim, 2, order)
        self.decoder = DCGRUCell(out_channels, hidden_dim, 2, order)
        self.output = nn.Linear(hidden_dim, out_channels)

    def forward(
        self,
        x: np.ndarray | Tensor,
        tod: np.ndarray,
        dow: np.ndarray,
        targets: np.ndarray | None = None,
        teacher_forcing: float = 0.0,
    ) -> Tensor:
        """Forecast; optionally decode with scheduled sampling.

        During training the original DCRNN feeds the decoder the *ground
        truth* of the previous step with a probability that decays over
        training (scheduled sampling).  Pass ``targets`` (B, T_f, N, C) in
        scaled units and a ``teacher_forcing`` probability to enable it;
        inference leaves both unset.
        """
        if not isinstance(x, Tensor):
            x = Tensor(x)
        batch, steps, nodes, _ = x.shape
        h = Tensor.zeros((batch, nodes, self.encoder.hidden_dim))
        for t in range(steps):
            h = self.encoder(x[:, t], h, self.supports)
        outputs = []
        current = Tensor.zeros((batch, nodes, self.out_channels))  # GO symbol
        for step in range(self.horizon):
            h = self.decoder(current, h, self.supports)
            current = self.output(h)
            outputs.append(current)
            if (
                targets is not None
                and teacher_forcing > 0.0
                and step + 1 < self.horizon
                and get_rng().random() < teacher_forcing
            ):
                current = Tensor(np.asarray(targets)[:, step])
        return Tensor.stack(outputs, axis=1)
