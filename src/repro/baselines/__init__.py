"""All baseline forecasters of the paper's Table 3 (plus Table 4 variants).

Statistical baselines (``fit``/``__call__``): :class:`HistoricalAverage`,
:class:`VAR`, :class:`SVR`.  Neural baselines (trained via
:class:`~repro.training.Trainer`): :class:`FCLSTM`, :class:`DCRNN`,
:class:`STGCN`, :class:`GraphWaveNet`, :class:`ASTGCN`, :class:`STSGCN`,
:class:`GMAN`, :class:`MTGNN`, :class:`DGCRN`.
"""

from .astgcn import ASTGCN
from .common import CausalConv, DirectHead, GatedTemporalConv, GraphConv, cheb_polynomials
from .dcrnn import DCGRUCell, DCRNN
from .dgcrn import DGCRN
from .fc_lstm import FCLSTM
from .gman import GMAN
from .gwnet import GraphWaveNet
from .historical_average import HistoricalAverage
from .mtgnn import GraphLearningLayer, MixHopPropagation, MTGNN
from .stgcn import STGCN
from .stsgcn import STSGCN, build_localized_st_graph
from .svr import SVR
from .var import VAR

__all__ = [
    "ASTGCN",
    "CausalConv",
    "DCGRUCell",
    "DCRNN",
    "DGCRN",
    "DirectHead",
    "FCLSTM",
    "GMAN",
    "GatedTemporalConv",
    "GraphConv",
    "GraphLearningLayer",
    "GraphWaveNet",
    "HistoricalAverage",
    "MTGNN",
    "MixHopPropagation",
    "STGCN",
    "STSGCN",
    "SVR",
    "VAR",
    "build_localized_st_graph",
    "cheb_polynomials",
]
