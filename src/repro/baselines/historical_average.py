"""Historical Average (HA) baseline.

"Models traffic flows as a periodic process and uses weighted averages from
previous periods as predictions for future periods" (Sec. 6.1).  We estimate
a seasonal profile per (node, time-of-day slot, weekday/weekend) from the
training portion and read predictions off the profile.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import ForecastingData
from ..nn.module import Module
from ..tensor import Tensor

__all__ = ["HistoricalAverage"]


class HistoricalAverage(Module):
    """Seasonal-profile forecaster.  Call :meth:`fit` before predicting."""

    def __init__(self, steps_per_day: int) -> None:
        super().__init__()
        self.steps_per_day = steps_per_day
        self._profile: np.ndarray | None = None  # (2, steps_per_day, N)
        self._scaler = None

    def fit(self, data: ForecastingData) -> "HistoricalAverage":
        series = data.dataset.series
        (t0, t1) = data.train.start, data.train.stop + data.windows.history
        values = series.values[t0:t1]  # (T, N)
        tod = series.time_of_day[t0:t1]
        dow = series.day_of_week[t0:t1]
        num_nodes = values.shape[1]
        profile = np.zeros((2, self.steps_per_day, num_nodes), dtype=np.float64)
        counts = np.zeros((2, self.steps_per_day, num_nodes), dtype=np.float64)
        weekend = (dow >= 5).astype(int)
        observed = values != 0  # mask sensor outages out of the profile
        np.add.at(profile, (weekend, tod), np.where(observed, values, 0.0))
        np.add.at(counts, (weekend, tod), observed.astype(np.float64))
        overall = values[observed].mean() if observed.any() else 0.0
        with np.errstate(invalid="ignore"):
            profile = np.where(counts > 0, profile / np.maximum(counts, 1.0), overall)
        self._profile = profile.astype(np.float32)
        self._scaler = data.scaler
        return self

    def forward(self, x: np.ndarray, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        """Predict (B, T_f, N, 1) in scaled units; T_f = history length."""
        if self._profile is None:
            raise RuntimeError("HistoricalAverage used before fit()")
        horizon = x.shape[1]
        last_tod = tod[:, -1]
        last_dow = dow[:, -1]
        steps = np.arange(1, horizon + 1)
        future_tod = (last_tod[:, None] + steps[None, :]) % self.steps_per_day
        rollover = (last_tod[:, None] + steps[None, :]) // self.steps_per_day
        future_dow = (last_dow[:, None] + rollover) % 7
        weekend = (future_dow >= 5).astype(int)
        prediction = self._profile[weekend, future_tod]  # (B, T_f, N)
        scaled = self._scaler.transform(prediction)[..., None]
        return Tensor(scaled)
