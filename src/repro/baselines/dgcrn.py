"""DGCRN baseline (Li et al. 2021) and its static-graph variant DGCRN†.

Dynamic Graph Convolutional Recurrent Network: a DCRNN-style seq2seq model
whose recurrent cell, at *every step*, regenerates a dynamic adjacency from
the current input, the hidden state and static node embeddings (the
hyper-network idea), and diffuses over both the static transitions and that
dynamic graph.  Table 4's DGCRN† (``dynamic=False``) drops the dynamic
graph, leaving a plain diffusion-convolutional GRU.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph.transition import transition_pair
from ..tensor import Tensor, functional as F
from ..utils.seed import get_rng
from .common import GraphConv

__all__ = ["DGCRN"]


class _DynamicGraphGenerator(nn.Module):
    """Produce a per-sample adjacency from (input, hidden, node embeddings)."""

    def __init__(self, in_dim: int, hidden_dim: int, num_nodes: int, embed_dim: int) -> None:
        super().__init__()
        self.embed_source = nn.Parameter(nn.init.xavier_uniform(num_nodes, embed_dim))
        self.embed_target = nn.Parameter(nn.init.xavier_uniform(num_nodes, embed_dim))
        self.project_source = nn.Linear(in_dim + hidden_dim, embed_dim)
        self.project_target = nn.Linear(in_dim + hidden_dim, embed_dim)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        state = Tensor.concatenate([x, h], axis=-1)  # (B, N, in+hidden)
        r_source = (self.project_source(state) + self.embed_source).tanh()
        r_target = (self.project_target(state) + self.embed_target).tanh()
        scores = (r_source @ r_target.swapaxes(-1, -2)).relu()
        return F.softmax(scores, axis=-1)  # (B, N, N)


class _DGCRUCell(nn.Module):
    def __init__(
        self, in_dim: int, hidden_dim: int, num_supports: int, order: int = 2
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gates = GraphConv(in_dim + hidden_dim, 2 * hidden_dim, num_supports, order)
        self.candidate = GraphConv(in_dim + hidden_dim, hidden_dim, num_supports, order)

    def forward(self, x: Tensor, h: Tensor, supports: list) -> Tensor:
        combined = Tensor.concatenate([x, h], axis=-1)
        gates = self.gates(combined, supports).sigmoid()
        r = gates[..., : self.hidden_dim]
        u = gates[..., self.hidden_dim :]
        candidate = self.candidate(Tensor.concatenate([x, r * h], axis=-1), supports).tanh()
        return u * h + (1.0 - u) * candidate


class DGCRN(nn.Module):
    """Dynamic Graph Convolutional Recurrent Network (lite seq2seq)."""

    def __init__(
        self,
        adjacency: np.ndarray,
        hidden_dim: int = 32,
        horizon: int = 12,
        order: int = 2,
        embed_dim: int = 10,
        dynamic: bool = True,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        self.horizon = horizon
        self.dynamic = dynamic
        self.out_channels = out_channels
        p_f, p_b = transition_pair(adjacency)
        self.static_supports = [p_f, p_b]
        num_supports = 2 + (1 if dynamic else 0)
        num_nodes = adjacency.shape[0]
        if dynamic:
            self.generator = _DynamicGraphGenerator(
                in_channels, hidden_dim, num_nodes, embed_dim
            )
            self.decoder_generator = _DynamicGraphGenerator(
                out_channels, hidden_dim, num_nodes, embed_dim
            )
        self.encoder = _DGCRUCell(in_channels, hidden_dim, num_supports, order)
        self.decoder = _DGCRUCell(out_channels, hidden_dim, num_supports, order)
        self.output = nn.Linear(hidden_dim, out_channels)

    def _supports(self, x: Tensor, h: Tensor, generator) -> list:
        supports: list = list(self.static_supports)
        if self.dynamic:
            supports.append(generator(x, h))
        return supports

    def forward(
        self,
        x: np.ndarray | Tensor,
        tod: np.ndarray,
        dow: np.ndarray,
        targets: np.ndarray | None = None,
        teacher_forcing: float = 0.0,
    ) -> Tensor:
        """Forecast; supports DCRNN-style scheduled sampling (see DCRNN)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        batch, steps, nodes, _ = x.shape
        h = Tensor.zeros((batch, nodes, self.encoder.hidden_dim))
        for t in range(steps):
            step_input = x[:, t]
            supports = self._supports(
                step_input, h, self.generator if self.dynamic else None
            )
            h = self.encoder(step_input, h, supports)
        outputs = []
        current = Tensor.zeros((batch, nodes, self.out_channels))
        for step in range(self.horizon):
            supports = self._supports(
                current, h, self.decoder_generator if self.dynamic else None
            )
            h = self.decoder(current, h, supports)
            current = self.output(h)
            outputs.append(current)
            if (
                targets is not None
                and teacher_forcing > 0.0
                and step + 1 < self.horizon
                and get_rng().random() < teacher_forcing
            ):
                current = Tensor(np.asarray(targets)[:, step])
        return Tensor.stack(outputs, axis=1)
