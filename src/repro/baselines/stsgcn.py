"""STSGCN baseline (Song et al., AAAI 2020).

Spatial-Temporal *Synchronous* GCN: consecutive time steps are joined into a
localized spatial-temporal graph of ``window · N`` nodes (block-diagonal
copies of the spatial adjacency, plus identity links between a node and its
own copies at adjacent steps), and an ordinary GCN on that graph captures
spatial and temporal correlations *synchronously*.  Sliding the window over
the history and cropping the middle copy yields the next layer's sequence.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph.transition import forward_transition
from ..tensor import Tensor
from .common import DirectHead

__all__ = ["STSGCN", "build_localized_st_graph"]


def build_localized_st_graph(adjacency: np.ndarray, window: int = 3) -> np.ndarray:
    """The (window·N, window·N) localized ST adjacency of STSGCN Fig. 2."""
    if window < 1:
        raise ValueError("window must be >= 1")
    n = adjacency.shape[0]
    eye = np.eye(n, dtype=np.float32)
    blocks = np.zeros((window * n, window * n), dtype=np.float32)
    for i in range(window):
        blocks[i * n : (i + 1) * n, i * n : (i + 1) * n] = adjacency
        if i + 1 < window:  # temporal links between consecutive copies
            blocks[i * n : (i + 1) * n, (i + 1) * n : (i + 2) * n] = eye
            blocks[(i + 1) * n : (i + 2) * n, i * n : (i + 1) * n] = eye
    return blocks


class _SynchronousLayer(nn.Module):
    def __init__(self, dim: int, transition: np.ndarray, window: int, num_nodes: int) -> None:
        super().__init__()
        self.window = window
        self.num_nodes = num_nodes
        self.transition = transition  # (w*N, w*N) row-normalised
        self.gcn1 = nn.Linear(dim, dim)
        self.gcn2 = nn.Linear(dim, dim)

    def forward(self, x: Tensor) -> Tensor:
        """(B, T, N, d) -> (B, T - window + 1, N, d)."""
        batch, steps, nodes, dim = x.shape
        outputs = []
        p = Tensor(self.transition)
        for start in range(steps - self.window + 1):
            chunk = x[:, start : start + self.window]  # (B, w, N, d)
            flat = chunk.reshape(batch, self.window * nodes, dim)
            hidden = self.gcn1(p @ flat).relu()
            hidden = self.gcn2(p @ hidden).relu()
            middle = self.window // 2
            outputs.append(
                hidden[:, middle * nodes : (middle + 1) * nodes]  # crop centre copy
            )
        return Tensor.stack(outputs, axis=1)


class STSGCN(nn.Module):
    """Spatial-Temporal Synchronous Graph Convolutional Network (lite)."""

    def __init__(
        self,
        adjacency: np.ndarray,
        hidden_dim: int = 32,
        horizon: int = 12,
        num_layers: int = 2,
        window: int = 3,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        num_nodes = adjacency.shape[0]
        localized = build_localized_st_graph(adjacency, window)
        transition = forward_transition(localized + np.eye(window * num_nodes, dtype=np.float32))
        self.input_projection = nn.Linear(in_channels, hidden_dim)
        self.layers = nn.ModuleList(
            [
                _SynchronousLayer(hidden_dim, transition, window, num_nodes)
                for _ in range(num_layers)
            ]
        )
        self.head = DirectHead(hidden_dim, horizon, out_channels)

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.input_projection(x)
        for layer in self.layers:
            if hidden.shape[1] < layer.window:
                break  # history exhausted by the shrinking windows
            hidden = layer(hidden)
        return self.head(hidden[:, hidden.shape[1] - 1])
