"""GMAN baseline (Zheng et al., AAAI 2020).

Graph Multi-Attention Network: spatial attention (over nodes) and temporal
attention (over steps) fused by a learned gate in each ST-attention block,
conditioned on a spatial-temporal embedding (node embedding + time-slot
embedding).  A final *transform attention* maps the encoded history onto
future time-step queries, so all horizons decode in one shot — the property
that gives GMAN its long-horizon edge in Table 3.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = ["GMAN"]


class _STEmbedding(nn.Module):
    """Fuse node and time embeddings into (B, T, N, d)."""

    def __init__(self, num_nodes: int, steps_per_day: int, dim: int) -> None:
        super().__init__()
        self.node_embedding = nn.Parameter(nn.init.xavier_uniform(num_nodes, dim))
        self.tod_embedding = nn.Embedding(steps_per_day, dim)
        self.dow_embedding = nn.Embedding(7, dim)
        self.fuse = nn.MLP([2 * dim, dim, dim])
        self.steps_per_day = steps_per_day

    def forward(self, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        time_embedding = self.tod_embedding(tod % self.steps_per_day) + self.dow_embedding(
            dow % 7
        )  # (B, T, d)
        batch, steps, dim = time_embedding.shape
        nodes = self.node_embedding.shape[0]
        time_part = time_embedding.expand_dims(2).broadcast_to((batch, steps, nodes, dim))
        node_part = (
            self.node_embedding.expand_dims(0).expand_dims(0)
            .broadcast_to((batch, steps, nodes, dim))
        )
        return self.fuse(Tensor.concatenate([time_part, node_part], axis=-1))


class _STAttentionBlock(nn.Module):
    def __init__(self, dim: int, num_heads: int) -> None:
        super().__init__()
        self.spatial = nn.MultiHeadSelfAttention(dim, num_heads)
        self.temporal = nn.MultiHeadSelfAttention(dim, num_heads)
        self.gate = nn.Linear(2 * dim, dim)
        self.norm = nn.LayerNorm(dim)

    def forward(self, x: Tensor, ste: Tensor) -> Tensor:
        batch, steps, nodes, dim = x.shape
        conditioned = x + ste
        # Spatial attention: over nodes, independently per time step.
        spatial_in = conditioned.reshape(batch * steps, nodes, dim)
        h_spatial = self.spatial(spatial_in).reshape(batch, steps, nodes, dim)
        # Temporal attention: over steps, independently per node.
        temporal_in = conditioned.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, dim)
        h_temporal = (
            self.temporal(temporal_in)
            .reshape(batch, nodes, steps, dim)
            .transpose(0, 2, 1, 3)
        )
        z = self.gate(Tensor.concatenate([h_spatial, h_temporal], axis=-1)).sigmoid()
        return self.norm(x + z * h_spatial + (1.0 - z) * h_temporal)


class GMAN(nn.Module):
    """Graph Multi-Attention Network (lite: one encoder block each side)."""

    def __init__(
        self,
        num_nodes: int,
        steps_per_day: int,
        hidden_dim: int = 32,
        horizon: int = 12,
        num_heads: int = 4,
        num_blocks: int = 1,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        self.horizon = horizon
        self.steps_per_day = steps_per_day
        self.ste = _STEmbedding(num_nodes, steps_per_day, hidden_dim)
        self.input_projection = nn.Linear(in_channels, hidden_dim)
        self.encoder = nn.ModuleList(
            [_STAttentionBlock(hidden_dim, num_heads) for _ in range(num_blocks)]
        )
        self.decoder = nn.ModuleList(
            [_STAttentionBlock(hidden_dim, num_heads) for _ in range(num_blocks)]
        )
        self.transform_query = nn.Linear(hidden_dim, hidden_dim, bias=False)
        self.transform_key = nn.Linear(hidden_dim, hidden_dim, bias=False)
        self.transform_value = nn.Linear(hidden_dim, hidden_dim, bias=False)
        self.output = nn.MLP([hidden_dim, hidden_dim, out_channels])
        self.out_channels = out_channels

    def _future_indices(self, tod: np.ndarray, dow: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        steps = np.arange(1, self.horizon + 1)
        raw = tod[:, -1][:, None] + steps[None, :]
        future_tod = raw % self.steps_per_day
        future_dow = (dow[:, -1][:, None] + raw // self.steps_per_day) % 7
        return future_tod, future_dow

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        batch, steps, nodes, _ = x.shape
        hidden = self.input_projection(x)
        ste_history = self.ste(tod, dow)
        for block in self.encoder:
            hidden = block(hidden, ste_history)

        future_tod, future_dow = self._future_indices(tod, dow)
        ste_future = self.ste(future_tod, future_dow)  # (B, T_f, N, d)

        # Transform attention: future queries attend over encoded history,
        # per node (GMAN Eq. 8) — cross-attention along the time axis.
        import math

        from ..tensor import functional as F

        dim = hidden.shape[-1]
        q = self.transform_query(ste_future).transpose(0, 2, 1, 3)  # (B, N, T_f, d)
        k = self.transform_key(ste_history).transpose(0, 2, 1, 3)  # (B, N, T_h, d)
        v = self.transform_value(hidden).transpose(0, 2, 1, 3)
        scores = F.softmax((q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(dim)), axis=-1)
        decoded = (scores @ v).transpose(0, 2, 1, 3)  # (B, T_f, N, d)

        for block in self.decoder:
            decoded = block(decoded, ste_future)
        return self.output(decoded)
