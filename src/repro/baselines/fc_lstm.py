"""FC-LSTM baseline (Sutskever et al. 2014 applied to traffic, Sec. 6.1).

An encoder LSTM reads each node's (univariate) history — nodes folded into
the batch, as in the DCRNN paper's FC-LSTM setup — and an auto-regressive
decoder LSTM emits the forecast.  No graph structure at all, which is why it
trails the spatial models in Table 3.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = ["FCLSTM"]


class FCLSTM(nn.Module):
    """Sequence-to-sequence LSTM, graph-free."""

    def __init__(
        self, hidden_dim: int = 32, horizon: int = 12, in_channels: int = 1, out_channels: int = 1
    ) -> None:
        super().__init__()
        self.horizon = horizon
        self.out_channels = out_channels
        self.encoder = nn.LSTM(in_channels, hidden_dim)
        self.decoder_cell = nn.LSTMCell(out_channels, hidden_dim)
        self.output = nn.Linear(hidden_dim, out_channels)

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        batch, steps, nodes, channels = x.shape
        folded = x.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, channels)
        _, (h, c) = self.encoder(folded, return_sequence=False)
        outputs = []
        current = Tensor.zeros((batch * nodes, self.out_channels))  # GO symbol
        for _ in range(self.horizon):
            h, c = self.decoder_cell(current, (h, c))
            current = self.output(h)
            outputs.append(current)
        stacked = Tensor.stack(outputs, axis=1)  # (B*N, T_f, C)
        return stacked.reshape(batch, nodes, self.horizon, self.out_channels).transpose(
            0, 2, 1, 3
        )
