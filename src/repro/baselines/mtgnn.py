"""MTGNN baseline (Wu et al., KDD 2020).

Extends Graph WaveNet with (i) a *uni-directional graph learning layer*
``A = relu(tanh(α(M1 M2^T − M2 M1^T)))`` built from two node-embedding
projections, (ii) *mix-hop propagation* in the spatial module (hop features
are retained and concatenated instead of collapsed), and (iii) a *dilated
inception* temporal module (parallel causal convolutions with different
kernel dilations, concatenated).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..tensor import Tensor
from .common import CausalConv, DirectHead

__all__ = ["MTGNN", "GraphLearningLayer", "MixHopPropagation"]


class GraphLearningLayer(nn.Module):
    """Learn a sparse directed adjacency from node embeddings (MTGNN Eq. 2-5)."""

    def __init__(self, num_nodes: int, embed_dim: int, alpha: float = 3.0) -> None:
        super().__init__()
        self.alpha = alpha
        self.embed1 = nn.Parameter(nn.init.xavier_uniform(num_nodes, embed_dim))
        self.embed2 = nn.Parameter(nn.init.xavier_uniform(num_nodes, embed_dim))
        self.theta1 = nn.Linear(embed_dim, embed_dim, bias=False)
        self.theta2 = nn.Linear(embed_dim, embed_dim, bias=False)

    def forward(self) -> Tensor:
        m1 = (self.theta1(self.embed1) * self.alpha).tanh()
        m2 = (self.theta2(self.embed2) * self.alpha).tanh()
        scores = m1 @ m2.transpose() - m2 @ m1.transpose()
        adjacency = (scores * self.alpha).tanh().relu()
        # Row-normalise so propagation is a weighted average.
        rowsum = adjacency.sum(axis=-1, keepdims=True) + 1e-6
        return adjacency / rowsum


class MixHopPropagation(nn.Module):
    """``H_out = Σ_k H^(k) W_k`` with ``H^(k+1) = β H_in + (1−β) Ã H^(k)``."""

    def __init__(self, dim: int, depth: int = 2, beta: float = 0.05) -> None:
        super().__init__()
        self.depth = depth
        self.beta = beta
        self.projection = nn.Linear((depth + 1) * dim, dim)

    def forward(self, x: Tensor, adjacency: Tensor) -> Tensor:
        hops = [x]
        hidden = x
        for _ in range(self.depth):
            hidden = self.beta * x + (1.0 - self.beta) * (adjacency @ hidden)
            hops.append(hidden)
        return self.projection(Tensor.concatenate(hops, axis=-1))


class _DilatedInception(nn.Module):
    """Parallel gated causal convolutions with different dilations."""

    def __init__(self, dim: int, dilations: tuple[int, ...] = (1, 2)) -> None:
        super().__init__()
        if dim % len(dilations) != 0:
            raise ValueError("dim must divide evenly over the inception branches")
        branch_dim = dim // len(dilations)
        self.filters = nn.ModuleList([CausalConv(dim, branch_dim, d) for d in dilations])
        self.gates = nn.ModuleList([CausalConv(dim, branch_dim, d) for d in dilations])

    def forward(self, x: Tensor) -> Tensor:
        branches = [
            f(x).tanh() * g(x).sigmoid() for f, g in zip(self.filters, self.gates)
        ]
        return Tensor.concatenate(branches, axis=-1)


class MTGNN(nn.Module):
    """Multivariate Time-series GNN."""

    def __init__(
        self,
        num_nodes: int,
        hidden_dim: int = 32,
        horizon: int = 12,
        num_layers: int = 3,
        embed_dim: int = 10,
        mixhop_depth: int = 2,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        self.graph_learner = GraphLearningLayer(num_nodes, embed_dim)
        self.input_projection = nn.Linear(in_channels, hidden_dim)
        self.temporal = nn.ModuleList(
            [_DilatedInception(hidden_dim) for _ in range(num_layers)]
        )
        # Mix-hop propagation feeds the next layer's residual stream; the
        # final layer has no successor (the prediction reads the skip sum),
        # so it carries none.
        self.spatial_fwd = nn.ModuleList(
            [MixHopPropagation(hidden_dim, mixhop_depth) for _ in range(num_layers - 1)]
        )
        self.spatial_bwd = nn.ModuleList(
            [MixHopPropagation(hidden_dim, mixhop_depth) for _ in range(num_layers - 1)]
        )
        self.skip_projections = nn.ModuleList(
            [nn.Linear(hidden_dim, hidden_dim) for _ in range(num_layers)]
        )
        self.head = DirectHead(hidden_dim, horizon, out_channels)

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        adjacency = self.graph_learner()
        hidden = self.input_projection(x)
        skip = None
        for index, (temporal, skip_proj) in enumerate(
            zip(self.temporal, self.skip_projections)
        ):
            residual = hidden
            hidden = temporal(hidden)
            contribution = skip_proj(hidden)
            skip = contribution if skip is None else skip + contribution
            if index < len(self.spatial_fwd):
                fwd, bwd = self.spatial_fwd[index], self.spatial_bwd[index]
                hidden = fwd(hidden, adjacency) + bwd(hidden, adjacency.transpose()) + residual
        features = skip.relu()
        return self.head(features[:, features.shape[1] - 1])
