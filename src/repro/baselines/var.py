"""Vector Auto-Regression (VAR) baseline.

Fits ``Y_t = c + Σ_{p=1..P} A_p Y_{t-p}`` on the (scaled) training series by
ridge-regularised least squares and forecasts recursively.  Unlike the
univariate statistical baselines VAR does see cross-sensor structure, which
is why it beats HA/SVR in Table 3 — the reproduction preserves that
ordering.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import ForecastingData
from ..nn.module import Module
from ..tensor import Tensor

__all__ = ["VAR"]


class VAR(Module):
    """Ridge-estimated vector auto-regression of order ``lags``."""

    def __init__(self, lags: int = 3, ridge: float = 1e-3) -> None:
        super().__init__()
        if lags < 1:
            raise ValueError("lags must be >= 1")
        self.lags = lags
        self.ridge = ridge
        self._coefficients: np.ndarray | None = None  # (N*lags + 1, N)

    def fit(self, data: ForecastingData) -> "VAR":
        series = data.dataset.series.values
        stop = data.train.stop + data.windows.history
        values = data.scaler.transform(series[:stop])  # (T, N)
        steps, num_nodes = values.shape
        if steps <= self.lags:
            raise ValueError("training series shorter than the VAR order")
        rows = steps - self.lags
        design = np.ones((rows, num_nodes * self.lags + 1), dtype=np.float64)
        for p in range(1, self.lags + 1):
            block = values[self.lags - p : steps - p]
            design[:, (p - 1) * num_nodes : p * num_nodes] = block
        target = values[self.lags :]
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._coefficients = np.linalg.solve(gram, design.T @ target)
        return self

    def forward(self, x: np.ndarray, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        """Recursive multi-step forecast; returns (B, T_f, N, 1) scaled."""
        if self._coefficients is None:
            raise RuntimeError("VAR used before fit()")
        history = np.asarray(x)[..., 0]  # (B, T_h, N)
        batch, window, num_nodes = history.shape
        horizon = window
        if window < self.lags:
            raise ValueError(f"need at least {self.lags} history steps, got {window}")
        buffer = history[:, window - self.lags :].copy()  # (B, lags, N)
        outputs = np.empty((batch, horizon, num_nodes), dtype=np.float64)
        for step in range(horizon):
            design = np.ones((batch, num_nodes * self.lags + 1))
            for p in range(1, self.lags + 1):
                design[:, (p - 1) * num_nodes : p * num_nodes] = buffer[:, self.lags - p]
            prediction = design @ self._coefficients  # (B, N)
            outputs[:, step] = prediction
            buffer = np.concatenate([buffer[:, 1:], prediction[:, None, :]], axis=1)
        return Tensor(outputs[..., None].astype(np.float32))
