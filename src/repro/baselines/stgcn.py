"""STGCN baseline (Yu et al., IJCAI 2018).

Two ST-Conv blocks, each a temporal-gated-convolution / Chebyshev-graph-
convolution / temporal-gated-convolution sandwich, followed by a direct
multi-step output head.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph.transition import symmetric_normalized_laplacian
from ..tensor import Tensor
from .common import DirectHead, GatedTemporalConv, cheb_polynomials

__all__ = ["STGCN"]


class _ChebGraphConv(nn.Module):
    """Chebyshev GCN: ``Σ_k T_k(L̃) X W_k`` (precomputed polynomial supports)."""

    def __init__(self, in_dim: int, out_dim: int, polynomials: list[np.ndarray]) -> None:
        super().__init__()
        self.polynomials = polynomials
        self.projection = nn.Linear(len(polynomials) * in_dim, out_dim)

    def forward(self, x: Tensor) -> Tensor:
        pieces = [Tensor(p) @ x for p in self.polynomials]
        return self.projection(Tensor.concatenate(pieces, axis=-1))


class _STConvBlock(nn.Module):
    def __init__(self, dim: int, polynomials: list[np.ndarray]) -> None:
        super().__init__()
        self.temporal_in = GatedTemporalConv(dim, dim)
        self.graph = _ChebGraphConv(dim, dim, polynomials)
        self.temporal_out = GatedTemporalConv(dim, dim)
        self.norm = nn.LayerNorm(dim)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.temporal_in(x)
        hidden = self.graph(hidden).relu()
        hidden = self.temporal_out(hidden)
        return self.norm(hidden + x)


class STGCN(nn.Module):
    """Spatio-Temporal Graph Convolutional Network."""

    def __init__(
        self,
        adjacency: np.ndarray,
        hidden_dim: int = 32,
        horizon: int = 12,
        num_blocks: int = 2,
        cheb_order: int = 3,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        polynomials = cheb_polynomials(symmetric_normalized_laplacian(adjacency), cheb_order)
        self.input_projection = nn.Linear(in_channels, hidden_dim)
        self.blocks = nn.ModuleList(
            [_STConvBlock(hidden_dim, polynomials) for _ in range(num_blocks)]
        )
        self.head = DirectHead(hidden_dim, horizon, out_channels)

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.input_projection(x)
        for block in self.blocks:
            hidden = block(hidden)
        return self.head(hidden[:, hidden.shape[1] - 1])
