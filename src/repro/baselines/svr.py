"""Linear Support Vector Regression (SVR) baseline.

"Uses linear support vector machine for classical time series regression"
(Sec. 6.1).  One linear ε-insensitive model per forecast step maps a node's
last ``T_h`` (scaled) observations to that step; the models are pooled
across nodes, matching the per-sensor univariate treatment of the paper's
SVR baseline.  Trained by subgradient descent on the primal objective —
exact dual solvers add nothing at this scale.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import ForecastingData
from ..nn.module import Module
from ..tensor import Tensor

__all__ = ["SVR"]


class SVR(Module):
    """Pooled univariate linear ε-SVR, one regressor per horizon step."""

    def __init__(
        self,
        epsilon: float = 0.1,
        regularization: float = 1e-4,
        learning_rate: float = 0.05,
        epochs: int = 40,
        max_samples: int = 20000,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.epsilon = epsilon
        self.regularization = regularization
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.max_samples = max_samples
        self.seed = seed
        self._weights: np.ndarray | None = None  # (T_h + 1, T_f)

    def fit(self, data: ForecastingData) -> "SVR":
        history = data.windows.history
        horizon = data.windows.horizon
        rng = np.random.default_rng(self.seed)

        # Build pooled (lags -> future) training pairs from the train split.
        batch = data.train.gather(data.train.all_indices())
        x = batch.x[..., 0]  # (B, T_h, N)
        y = data.scaler.transform(batch.y[..., 0])  # supervise in scaled units
        features = x.transpose(0, 2, 1).reshape(-1, history)
        targets = y.transpose(0, 2, 1).reshape(-1, horizon)
        if features.shape[0] > self.max_samples:
            keep = rng.choice(features.shape[0], self.max_samples, replace=False)
            features, targets = features[keep], targets[keep]
        design = np.concatenate([features, np.ones((features.shape[0], 1))], axis=1)

        weights = np.zeros((history + 1, horizon), dtype=np.float64)
        n = design.shape[0]
        for epoch in range(self.epochs):
            lr = self.learning_rate / (1.0 + 0.1 * epoch)
            residual = design @ weights - targets  # (n, T_f)
            # ε-insensitive subgradient: sign outside the tube, 0 inside.
            outside = np.abs(residual) > self.epsilon
            sub = np.sign(residual) * outside
            grad = design.T @ sub / n + self.regularization * weights
            weights -= lr * grad
        self._weights = weights
        return self

    def forward(self, x: np.ndarray, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if self._weights is None:
            raise RuntimeError("SVR used before fit()")
        history = np.asarray(x)[..., 0]  # (B, T_h, N)
        batch, window, num_nodes = history.shape
        features = history.transpose(0, 2, 1).reshape(-1, window)
        design = np.concatenate([features, np.ones((features.shape[0], 1))], axis=1)
        prediction = design @ self._weights  # (B*N, T_f)
        horizon = prediction.shape[1]
        out = prediction.reshape(batch, num_nodes, horizon).transpose(0, 2, 1)
        return Tensor(out[..., None].astype(np.float32))
