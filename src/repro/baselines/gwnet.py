"""Graph WaveNet baseline (Wu et al., IJCAI 2019).

Stacks gated dilated causal temporal convolutions with graph convolutions,
plus a *self-adaptive adjacency matrix* learned from two node-embedding
dictionaries — the idea D2STGNN borrows for its Eq. 7.  Residual and skip
connections aggregate every layer's features before two output projections
decode all horizons at once.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph.transition import transition_pair
from ..tensor import Tensor, functional as F
from .common import DirectHead, GatedTemporalConv, GraphConv

__all__ = ["GraphWaveNet"]


class GraphWaveNet(nn.Module):
    """Gated TCN + GCN stack with adaptive adjacency."""

    def __init__(
        self,
        adjacency: np.ndarray,
        hidden_dim: int = 32,
        horizon: int = 12,
        num_layers: int = 4,
        embed_dim: int = 10,
        adaptive: bool = True,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        num_nodes = adjacency.shape[0]
        self.horizon = horizon
        self.adaptive = adaptive
        p_f, p_b = transition_pair(adjacency)
        self.static_supports = [p_f, p_b]
        if adaptive:
            self.embed_source = nn.Parameter(nn.init.xavier_uniform(num_nodes, embed_dim))
            self.embed_target = nn.Parameter(nn.init.xavier_uniform(num_nodes, embed_dim))
        num_supports = 2 + (1 if adaptive else 0)

        self.input_projection = nn.Linear(in_channels, hidden_dim)
        dilations = [2 ** (i % 3) for i in range(num_layers)]  # 1, 2, 4, 1, ...
        self.temporal = nn.ModuleList(
            [GatedTemporalConv(hidden_dim, hidden_dim, d) for d in dilations]
        )
        # The graph convolution feeds the next layer's residual stream; the
        # final layer has no successor (the prediction reads the skip sum),
        # so it carries none.
        self.spatial = nn.ModuleList(
            [GraphConv(hidden_dim, hidden_dim, num_supports, order=2) for _ in dilations[:-1]]
        )
        self.skip_projections = nn.ModuleList(
            [nn.Linear(hidden_dim, hidden_dim) for _ in dilations]
        )
        self.head = DirectHead(hidden_dim, horizon, out_channels)

    def _supports(self) -> list:
        supports: list = list(self.static_supports)
        if self.adaptive:
            scores = (self.embed_source @ self.embed_target.transpose()).relu()
            supports.append(F.softmax(scores, axis=-1))
        return supports

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = self.input_projection(x)  # (B, T, N, d)
        supports = self._supports()
        skip = None
        for index, (temporal, skip_proj) in enumerate(
            zip(self.temporal, self.skip_projections)
        ):
            residual = hidden
            hidden = temporal(hidden)
            contribution = skip_proj(hidden)
            skip = contribution if skip is None else skip + contribution
            if index < len(self.spatial):
                hidden = self.spatial[index](hidden, supports) + residual
        features = skip.relu()
        last = features[:, features.shape[1] - 1]  # (B, N, d)
        return self.head(last)
