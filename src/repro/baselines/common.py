"""Shared building blocks for the baseline forecasters.

Every neural baseline follows the library forecaster contract
``model(x, tod, dow) -> Tensor (B, T_f, N, C)`` in scaled units, so one
:class:`~repro.training.Trainer` drives them all.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph.transition import matrix_powers
from ..nn.temporal import CausalConv, GatedTemporalConv
from ..tensor import Tensor

__all__ = [
    "GraphConv",
    "CausalConv",
    "GatedTemporalConv",
    "cheb_polynomials",
    "DirectHead",
]


class GraphConv(nn.Module):
    """Diffusion / mix-hop graph convolution over a set of supports.

    Computes ``Σ_s Σ_{k=0..K} P_s^k X W_{s,k}`` where supports may be static
    numpy matrices or learned Tensors (e.g. Graph WaveNet's adaptive
    adjacency).  Order 0 is the identity (the node's own features).
    """

    def __init__(self, in_dim: int, out_dim: int, num_supports: int, order: int = 2) -> None:
        super().__init__()
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.num_supports = num_supports
        total = 1 + num_supports * order  # identity + each support power
        self.projection = nn.Linear(total * in_dim, out_dim)

    def forward(self, x: Tensor, supports: list) -> Tensor:
        """``x``: (..., N, d) with node axis second-to-last."""
        if len(supports) != self.num_supports:
            raise ValueError(f"expected {self.num_supports} supports, got {len(supports)}")
        pieces = [x]
        for support in supports:
            if isinstance(support, np.ndarray):
                for power in matrix_powers(support, self.order):
                    pieces.append(Tensor(power) @ x)
            else:
                running = x
                for _ in range(self.order):
                    running = support @ running
                    pieces.append(running)
        return self.projection(Tensor.concatenate(pieces, axis=-1))


def cheb_polynomials(laplacian: np.ndarray, order: int) -> list[np.ndarray]:
    """Chebyshev polynomial supports ``[T_0, ..., T_{order-1}]`` (STGCN, ASTGCN).

    The Laplacian is rescaled to [-1, 1] assuming ``λ_max ≈ 2`` (standard for
    the symmetric normalized Laplacian).
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    n = laplacian.shape[0]
    scaled = (laplacian - np.eye(n, dtype=np.float32)).astype(np.float32)
    polys = [np.eye(n, dtype=np.float32)]
    if order > 1:
        polys.append(scaled)
    for _ in range(order - 2):
        polys.append((2.0 * scaled @ polys[-1] - polys[-2]).astype(np.float32))
    return polys


class DirectHead(nn.Module):
    """Map the features of the last time step to a full multi-step forecast.

    Used by the baselines that decode all horizons at once (STGCN, Graph
    WaveNet, MTGNN, GMAN-lite): (B, N, d) -> (B, T_f, N, C).
    """

    def __init__(self, hidden_dim: int, horizon: int, out_channels: int = 1) -> None:
        super().__init__()
        self.horizon = horizon
        self.out_channels = out_channels
        self.mlp = nn.MLP([hidden_dim, hidden_dim, horizon * out_channels])

    def forward(self, last_hidden: Tensor) -> Tensor:
        batch, nodes, _ = last_hidden.shape
        out = self.mlp(last_hidden)  # (B, N, horizon*C)
        return out.reshape(batch, nodes, self.horizon, self.out_channels).transpose(0, 2, 1, 3)
