"""Optimizers and learning-rate schedules."""

from .adam import Adam
from .lr_scheduler import CosineAnnealingLR, StepLR
from .optimizer import Optimizer, clip_grad_norm
from .sgd import SGD

__all__ = ["Adam", "CosineAnnealingLR", "Optimizer", "SGD", "StepLR", "clip_grad_norm"]
