"""Optimizer base class and gradient utilities."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base class: holds the parameter list and the learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization — crash-safe resume needs the moments, not just weights.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serialisable snapshot: learning rate plus subclass state.

        Array-valued entries are deep copies, so a snapshot taken for
        rollback is immune to subsequent :meth:`step` calls.
        """
        return {"lr": float(self.lr), **self._extra_state()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        After loading, the next :meth:`step` behaves exactly as it would
        have on the optimizer the snapshot was taken from.
        """
        if "lr" not in state:
            raise ValueError("optimizer state dict is missing 'lr'")
        self.lr = float(state["lr"])
        self._load_extra_state(state)

    def _extra_state(self) -> dict:
        """Subclass hook: additional entries for :meth:`state_dict`."""
        return {}

    def _load_extra_state(self, state: dict) -> None:
        """Subclass hook: restore the entries added by :meth:`_extra_state`."""

    def _check_moment_arrays(self, name: str, arrays) -> list:
        """Validate a per-parameter array list against the parameter shapes."""
        arrays = list(arrays)
        if len(arrays) != len(self.parameters):
            raise ValueError(
                f"optimizer state holds {len(arrays)} '{name}' arrays for "
                f"{len(self.parameters)} parameters"
            )
        restored = []
        for index, (param, value) in enumerate(zip(self.parameters, arrays)):
            value = np.asarray(value)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"'{name}' array {index} has shape {value.shape}, "
                    f"parameter has {param.data.shape}"
                )
            restored.append(value.astype(param.data.dtype, copy=True))
        return restored


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Standard practice for the RNN-containing
    models reproduced here (DCRNN, DGCRN, D2STGNN).
    """
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if not math.isfinite(total):
        # Scaling by max_norm/inf would turn Inf gradients into NaN; leave
        # them alone so the caller (e.g. the trainer's recovery path) sees
        # the non-finite norm and can roll back.
        return total
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
