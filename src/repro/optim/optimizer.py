"""Optimizer base class and gradient utilities."""

from __future__ import annotations

import math
from typing import Iterable

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base class: holds the parameter list and the learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Standard practice for the RNN-containing
    models reproduced here (DCRNN, DGCRN, D2STGNN).
    """
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
