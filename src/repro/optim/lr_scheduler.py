"""Learning-rate schedules operating on an :class:`~repro.optim.Optimizer`."""

from __future__ import annotations

import math

from .optimizer import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs.

    DCRNN-style decay; call :meth:`step` once per epoch.
    """

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr


class CosineAnnealingLR:
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
        return self.optimizer.lr
