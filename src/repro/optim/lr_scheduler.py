"""Learning-rate schedules operating on an :class:`~repro.optim.Optimizer`."""

from __future__ import annotations

import math

from .optimizer import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs.

    DCRNN-style decay; call :meth:`step` once per epoch.
    """

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr

    def state_dict(self) -> dict:
        """Serialisable snapshot (epoch counter + schedule constants)."""
        return {
            "epoch": int(self.epoch),
            "base_lr": float(self.base_lr),
            "step_size": int(self.step_size),
            "gamma": float(self.gamma),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot and re-apply the schedule to the optimizer."""
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        self.step_size = int(state["step_size"])
        self.gamma = float(state["gamma"])
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR:
    """Cosine decay from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
        return self.optimizer.lr

    def state_dict(self) -> dict:
        """Serialisable snapshot (epoch counter + schedule constants)."""
        return {
            "epoch": int(self.epoch),
            "base_lr": float(self.base_lr),
            "total_epochs": int(self.total_epochs),
            "min_lr": float(self.min_lr),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot and re-apply the schedule to the optimizer."""
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        self.total_epochs = int(state["total_epochs"])
        self.min_lr = float(state["min_lr"])
        progress = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
