"""Adam optimizer (Kingma & Ba 2015) — the paper's optimizer (Sec. 6.1)."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction and optional decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _extra_state(self) -> dict:
        """Step count, hyper-parameters and deep copies of both moments."""
        return {
            "step": int(self._step),
            "beta1": float(self.beta1),
            "beta2": float(self.beta2),
            "eps": float(self.eps),
            "weight_decay": float(self.weight_decay),
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def _load_extra_state(self, state: dict) -> None:
        """Restore moments and step count; shapes must match the parameters."""
        self._step = int(state["step"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._m = self._check_moment_arrays("m", state["m"])
        self._v = self._check_moment_arrays("v", state["v"])

    def step(self) -> None:
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        scale = self.lr * math.sqrt(correction2) / correction1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = scale * m / (np.sqrt(v) + self.eps)
            if self.weight_decay:
                update = update + self.lr * self.weight_decay * param.data
            param.data -= update
