"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Classic SGD; used by the linear SVR baseline and in tests."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _extra_state(self) -> dict:
        """Hyper-parameters and deep copies of the velocity buffers."""
        return {
            "momentum": float(self.momentum),
            "weight_decay": float(self.weight_decay),
            "velocity": [v.copy() for v in self._velocity],
        }

    def _load_extra_state(self, state: dict) -> None:
        """Restore velocities; shapes must match the parameters."""
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        self._velocity = self._check_moment_arrays("velocity", state["velocity"])

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad
