"""Registry of the paper's experiments.

One entry per table/figure of the evaluation section (plus the extra
design-choice ablations), mapping each experiment to the modules that
implement it and the benchmark that regenerates it.  ``python -m repro
experiments`` prints this index; DESIGN.md §4 is the prose version.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible experiment of the paper."""

    experiment_id: str
    paper_artifact: str
    description: str
    datasets: tuple[str, ...]
    modules: tuple[str, ...]
    bench: str
    asserted_shape: str


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            experiment_id="table2",
            paper_artifact="Table 2",
            description="Dataset statistics (#node, #edge, #time step)",
            datasets=("metr-la-sim", "pems-bay-sim", "pems04-sim", "pems08-sim"),
            modules=("repro.data.datasets", "repro.graph"),
            bench="benchmarks/bench_table2_datasets.py",
            asserted_shape="2 speed + 2 flow datasets; flow graphs sparser; 5-min sampling",
        ),
        ExperimentSpec(
            experiment_id="table3",
            paper_artifact="Table 3",
            description="Main comparison: 13 methods x 4 datasets, MAE/RMSE/MAPE at H3/6/12",
            datasets=("metr-la-sim", "pems-bay-sim", "pems04-sim", "pems08-sim"),
            modules=("repro.core.model", "repro.baselines", "repro.training"),
            bench="benchmarks/bench_table3_performance.py",
            asserted_shape="deep > statistical; D2STGNN near top; error grows with horizon",
        ),
        ExperimentSpec(
            experiment_id="table4",
            paper_artifact="Table 4",
            description="Decoupled vs coupled framework (GWNet, DGCRN†, D2STGNN‡, D2STGNN†)",
            datasets=("metr-la-sim", "pems-bay-sim", "pems04-sim", "pems08-sim"),
            modules=("repro.core.model", "repro.baselines.gwnet", "repro.baselines.dgcrn"),
            bench="benchmarks/bench_table4_decoupled.py",
            asserted_shape="decoupled D2STGNN† strictly beats coupled D2STGNN‡ everywhere",
        ),
        ExperimentSpec(
            experiment_id="table5",
            paper_artifact="Table 5",
            description="Ablations on METR-LA: switch / gate / res / decouple / dg / apt / gru / msa / ar / cl",
            datasets=("metr-la-sim",),
            modules=("repro.core.model", "repro.training.curriculum"),
            bench="benchmarks/bench_table5_ablation.py",
            asserted_shape="switch ≈ full; removals hurt; w/o decouple among worst",
        ),
        ExperimentSpec(
            experiment_id="fig6",
            paper_artifact="Figure 6",
            description="Average training time per epoch",
            datasets=("metr-la-sim",),
            modules=("repro.training.trainer", "repro.utils.timer"),
            bench="benchmarks/bench_fig6_efficiency.py",
            asserted_shape="dynamic graph learning costs extra; model spread bounded (GPU gap does not transfer)",
        ),
        ExperimentSpec(
            experiment_id="fig7",
            paper_artifact="Figure 7",
            description="Sensitivity to k_s, k_t and hidden dimension d",
            datasets=("metr-la-sim",),
            modules=("repro.core.model",),
            bench="benchmarks/bench_fig7_sensitivity.py",
            asserted_shape="kernels 2-3 suffice; accuracy vs d U-shaped",
        ),
        ExperimentSpec(
            experiment_id="fig8",
            paper_artifact="Figure 8",
            description="Prediction visualisation and sensor-outage robustness",
            datasets=("metr-la-sim",),
            modules=("repro.core.model", "repro.data.simulator"),
            bench="benchmarks/bench_fig8_visualization.py",
            asserted_shape="tracks daily pattern; does not chase an outage to zero",
        ),
        ExperimentSpec(
            experiment_id="ablation-dg",
            paper_artifact="Sec. 5.3 design note",
            description="Per-window vs per-step dynamic graphs (cost/accuracy of the paper's approximation)",
            datasets=("metr-la-sim",),
            modules=("repro.core.dynamic_graph",),
            bench="benchmarks/bench_ablation_dynamic_graph.py",
            asserted_shape="per-window keeps per-step accuracy at lower cost",
        ),
        ExperimentSpec(
            experiment_id="ablation-blocks",
            paper_artifact="Sec. 4 framework claim",
            description="Alternative DSTF block instantiations (attention diffusion, TCN inherent)",
            datasets=("metr-la-sim",),
            modules=("repro.core.alternative_blocks",),
            bench="benchmarks/bench_ablation_instantiation.py",
            asserted_shape="all block combinations train to a tight accuracy band",
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id; raises KeyError with the valid ids."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]
