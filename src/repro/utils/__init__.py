"""Seeding, timing, atomic persistence and reporting utilities."""

from .ascii_plot import bar_chart, side_by_side, sparkline
from .atomic import atomic_savez, atomic_write
from .checkpoint import (
    CheckpointError,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)
from .seed import get_rng, set_seed, spawn_rng
from .timer import StopwatchStats, Timer, now

__all__ = [
    "CheckpointError",
    "atomic_savez",
    "atomic_write",
    "bar_chart",
    "side_by_side",
    "sparkline",
    "StopwatchStats",
    "Timer",
    "get_rng",
    "load_checkpoint",
    "load_training_checkpoint",
    "now",
    "save_checkpoint",
    "save_training_checkpoint",
    "set_seed",
    "spawn_rng",
]
