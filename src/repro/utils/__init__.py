"""Seeding, timing and reporting utilities."""

from .ascii_plot import bar_chart, side_by_side, sparkline
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .seed import get_rng, set_seed, spawn_rng
from .timer import StopwatchStats, Timer, now

__all__ = [
    "CheckpointError",
    "bar_chart",
    "side_by_side",
    "sparkline",
    "StopwatchStats",
    "Timer",
    "get_rng",
    "load_checkpoint",
    "now",
    "save_checkpoint",
    "set_seed",
    "spawn_rng",
]
