"""Wall-clock timing helpers used by the efficiency experiment (Fig. 6)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StopwatchStats"]


@dataclass
class StopwatchStats:
    """Accumulated timing statistics over repeated laps."""

    count: int = 0
    total: float = 0.0
    laps: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return min(self.laps) if self.laps else 0.0

    @property
    def maximum(self) -> float:
        return max(self.laps) if self.laps else 0.0


class Timer:
    """Context-manager stopwatch that accumulates laps.

    >>> timer = Timer()
    >>> with timer:
    ...     pass
    >>> timer.stats.count
    1
    """

    def __init__(self) -> None:
        self.stats = StopwatchStats()
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        lap = time.perf_counter() - self._start
        self.stats.count += 1
        self.stats.total += lap
        self.stats.laps.append(lap)
        self._start = None
