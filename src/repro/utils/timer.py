"""Wall-clock timing helpers: the library's shared clock and lap stopwatch.

Every component that measures time — the :class:`Timer` stopwatch, the
op-level profiler in :mod:`repro.obs`, the trainer's epoch timing and the
benchmark harness — reads the same monotonic clock through :func:`now`, so
measurements from different layers are directly comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StopwatchStats", "now"]


def now() -> float:
    """The shared monotonic clock: seconds from ``time.perf_counter``.

    All timing in the library (trainer epochs, profiler ops, benchmarks)
    goes through this single function so the clock source can be swapped or
    instrumented in one place.
    """
    return time.perf_counter()


@dataclass
class StopwatchStats:
    """Accumulated timing statistics over repeated laps."""

    count: int = 0
    total: float = 0.0
    laps: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return min(self.laps) if self.laps else 0.0

    @property
    def maximum(self) -> float:
        return max(self.laps) if self.laps else 0.0


class Timer:
    """Context-manager stopwatch that accumulates laps.

    >>> timer = Timer()
    >>> with timer:
    ...     pass
    >>> timer.stats.count
    1
    """

    def __init__(self) -> None:
        self.stats = StopwatchStats()
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = now()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        lap = now() - self._start
        self.stats.count += 1
        self.stats.total += lap
        self.stats.laps.append(lap)
        self._start = None
