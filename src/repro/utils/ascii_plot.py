"""Terminal plotting: sparklines and bar charts.

matplotlib is unavailable offline, so the visual benchmarks (Figures 6-8)
and examples render their figures as text.  Kept deliberately tiny — these
are reporting aids, not a plotting library.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "bar_chart", "side_by_side"]

_LEVELS = " .:-=+*#%@"


def sparkline(series, lo: float | None = None, hi: float | None = None) -> str:
    """Render a 1-D series as a density string.

    ``lo``/``hi`` pin the value range (useful to share a scale across
    several lines); they default to the series' own range.
    """
    values = np.asarray(series, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"sparkline takes a 1-D series, got shape {values.shape}")
    if values.size == 0:
        return ""
    lo = float(values.min()) if lo is None else lo
    hi = float(values.max()) if hi is None else hi
    span = (hi - lo) or 1.0
    clipped = np.clip(values, lo, hi)
    indices = ((clipped - lo) / span * (len(_LEVELS) - 1)).astype(int)
    return "".join(_LEVELS[i] for i in indices)


def bar_chart(values: dict[str, float], width: int = 40, unit: str = "") -> str:
    """Render a {label: value} mapping as horizontal bars, sorted ascending."""
    if not values:
        return ""
    scale = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in sorted(values.items(), key=lambda kv: kv[1]):
        bar = "#" * max(1, int(width * abs(value) / scale))
        lines.append(f"{label:<{label_width}}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def side_by_side(labelled_series: dict[str, np.ndarray], lo=None, hi=None) -> str:
    """Render several series on a shared scale, one sparkline per line."""
    if not labelled_series:
        return ""
    stacked = np.concatenate([np.asarray(v, dtype=np.float64) for v in labelled_series.values()])
    lo = float(stacked.min()) if lo is None else lo
    hi = float(stacked.max()) if hi is None else hi
    label_width = max(len(k) for k in labelled_series)
    return "\n".join(
        f"{label:<{label_width}} {sparkline(series, lo, hi)}"
        for label, series in labelled_series.items()
    )
