"""Model and training-state checkpointing.

Two artifact kinds, both single ``.npz`` files written atomically (see
:mod:`repro.utils.atomic`) so a mid-write kill never leaves a truncated
archive:

* **model checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`)
  hold every named parameter plus a JSON-encoded metadata blob (model class
  name, config dict), so a trained forecaster can be shipped and reloaded
  without pickling code;
* **training-state checkpoints** (:func:`save_training_checkpoint` /
  :func:`load_training_checkpoint`) additionally capture optimizer moments,
  scheduler counters, the early-stopping snapshot and free-form trainer
  state (RNG states, curriculum counters, history), so a killed run resumed
  via ``Trainer.fit(resume_from=...)`` continues to the same result as an
  uninterrupted one.

All loaders raise :class:`CheckpointError` — never a raw ``zipfile`` or
``KeyError`` traceback — on truncated files, missing metadata or unknown
format versions.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..nn.module import Module
from .atomic import atomic_savez

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "CheckpointError",
]

_META_KEY = "__checkpoint_meta__"
_FORMAT_VERSION = 1
_TRAIN_FORMAT_VERSION = 1

# Array-name prefixes inside a training-state archive.
_MODEL_PREFIX = "model/"
_OPTIM_PREFIX = "optim/"
_BEST_PREFIX = "best/"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint file is malformed or incompatible."""


def _config_to_dict(config) -> dict | None:
    if config is None:
        return None
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return config
    raise TypeError(f"config must be a dataclass or dict, got {type(config)!r}")


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _open_archive(path: Path):
    """``np.load`` with malformed-file errors normalised to CheckpointError."""
    try:
        return np.load(path)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except Exception as error:  # zipfile.BadZipFile, OSError, EOFError, ...
        raise CheckpointError(f"{path} is not a readable checkpoint archive: {error}") from error


def _read_meta(path: Path, archive) -> dict:
    if _META_KEY not in archive:
        raise CheckpointError(f"{path} is not a repro checkpoint (missing metadata)")
    try:
        return json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    except Exception as error:
        raise CheckpointError(f"{path} holds corrupted checkpoint metadata: {error}") from error


def _read_arrays(path: Path, archive, names) -> dict[str, np.ndarray]:
    """Materialise archive entries, normalising truncated-member errors."""
    try:
        return {name: archive[name] for name in names}
    except Exception as error:
        raise CheckpointError(f"{path} holds truncated checkpoint arrays: {error}") from error


def save_checkpoint(path: str | Path, model: Module, config=None, extra: dict | None = None) -> Path:
    """Write ``model``'s parameters (and optional config/extra metadata) to ``path``.

    ``config`` may be a dataclass (e.g. :class:`~repro.core.D2STGNNConfig`)
    or a plain dict; ``extra`` is free-form JSON-serialisable metadata
    (training metrics, dataset name, ...).  The archive is written through
    :func:`~repro.utils.atomic.atomic_write`, so an interrupted save leaves
    any previous checkpoint at ``path`` intact.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    if _META_KEY in state:
        raise CheckpointError(f"parameter name collides with reserved key {_META_KEY}")
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "config": _config_to_dict(config),
        "extra": extra or {},
        "num_parameters": int(sum(v.size for v in state.values())),
    }
    arrays = dict(state)
    arrays[_META_KEY] = _encode_meta(meta)
    return atomic_savez(path, **arrays)


def load_checkpoint(path: str | Path, model: Module | None = None) -> dict:
    """Read a checkpoint.

    Returns ``{"state": {...}, "meta": {...}}``.  When ``model`` is given its
    parameters are loaded in place (shapes are validated by
    :meth:`~repro.nn.Module.load_state_dict`).  Truncated or foreign files
    raise :class:`CheckpointError`.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    with _open_archive(path) as archive:
        meta = _read_meta(path, archive)
        if meta.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {meta.get('format_version')!r}"
            )
        state = _read_arrays(path, archive, (k for k in archive.files if k != _META_KEY))
    if model is not None:
        if meta.get("model_class") != type(model).__name__:
            raise CheckpointError(
                f"checkpoint holds a {meta.get('model_class')}, not a {type(model).__name__}"
            )
        model.load_state_dict(state)
    return {"state": state, "meta": meta}


# ----------------------------------------------------------------------
# Training-state checkpoints (crash-safe resume)
# ----------------------------------------------------------------------
def _split_optimizer_state(state: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Separate an optimizer state dict into JSON scalars and npz arrays.

    Array-list entries (the per-parameter moments) become
    ``optim/<key>/<index>`` archive members; their JSON entry records the
    list length so loading can reassemble them in order.
    """
    scalars: dict = {}
    arrays: dict[str, np.ndarray] = {}
    for key, value in state.items():
        if isinstance(value, list) and value and isinstance(value[0], np.ndarray):
            for index, array in enumerate(value):
                arrays[f"{_OPTIM_PREFIX}{key}/{index}"] = array
            scalars[key] = {"__array_list__": len(value)}
        else:
            scalars[key] = value
    return scalars, arrays


def _join_optimizer_state(scalars: dict, arrays: dict[str, np.ndarray]) -> dict:
    state: dict = {}
    for key, value in scalars.items():
        if isinstance(value, dict) and "__array_list__" in value:
            state[key] = [arrays[f"{key}/{index}"] for index in range(value["__array_list__"])]
        else:
            state[key] = value
    return state


def save_training_checkpoint(
    path: str | Path,
    *,
    model: Module,
    optimizer,
    scheduler=None,
    stopper=None,
    trainer_state: dict | None = None,
) -> Path:
    """Atomically persist the full state of an in-progress training run.

    Captures the model parameters, the optimizer's :meth:`state_dict`
    (moments included), the scheduler's counters, the early-stopping state
    (best loss, patience counter and best-weights snapshot) and
    ``trainer_state`` — a free-form JSON-serialisable dict the
    :class:`~repro.training.Trainer` uses for epoch/RNG/curriculum counters.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"{_MODEL_PREFIX}{name}"] = value
    optim_scalars, optim_arrays = _split_optimizer_state(optimizer.state_dict())
    arrays.update(optim_arrays)
    stopper_meta = None
    if stopper is not None:
        stopper_state = stopper.state_dict()
        best = stopper_state.pop("best_state")
        stopper_meta = {**stopper_state, "has_best_state": best is not None}
        if best is not None:
            for name, value in best.items():
                arrays[f"{_BEST_PREFIX}{name}"] = value
    meta = {
        "format_version": _TRAIN_FORMAT_VERSION,
        "kind": "training_state",
        "model_class": type(model).__name__,
        "optimizer_class": type(optimizer).__name__,
        "optimizer": optim_scalars,
        "scheduler": None if scheduler is None else scheduler.state_dict(),
        "stopper": stopper_meta,
        "trainer": trainer_state or {},
    }
    arrays[_META_KEY] = _encode_meta(meta)
    return atomic_savez(path, **arrays)


def load_training_checkpoint(
    path: str | Path,
    *,
    model: Module | None = None,
    optimizer=None,
    scheduler=None,
    stopper=None,
) -> dict:
    """Read a training-state checkpoint; optionally restore components in place.

    Returns ``{"meta", "model_state", "optimizer_state", "scheduler_state",
    "stopper_state", "trainer_state"}``.  Any of ``model`` / ``optimizer`` /
    ``scheduler`` / ``stopper`` passed in is restored via its own
    ``load_state_dict``.  Malformed files raise :class:`CheckpointError`.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no training checkpoint at {path}")
    with _open_archive(path) as archive:
        meta = _read_meta(path, archive)
        if meta.get("kind") != "training_state":
            raise CheckpointError(
                f"{path} is a {meta.get('kind', 'model')!r} checkpoint, not a training state"
            )
        if meta.get("format_version") != _TRAIN_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported training-state format {meta.get('format_version')!r}"
            )
        everything = _read_arrays(path, archive, (k for k in archive.files if k != _META_KEY))
    model_state = {
        name[len(_MODEL_PREFIX):]: value
        for name, value in everything.items()
        if name.startswith(_MODEL_PREFIX)
    }
    optim_arrays = {
        name[len(_OPTIM_PREFIX):]: value
        for name, value in everything.items()
        if name.startswith(_OPTIM_PREFIX)
    }
    best_state = {
        name[len(_BEST_PREFIX):]: value
        for name, value in everything.items()
        if name.startswith(_BEST_PREFIX)
    }
    optimizer_state = _join_optimizer_state(meta["optimizer"], optim_arrays)
    stopper_state = None
    if meta.get("stopper") is not None:
        stopper_state = dict(meta["stopper"])
        has_best = stopper_state.pop("has_best_state", False)
        stopper_state["best_state"] = best_state if has_best else None
    if model is not None:
        if meta.get("model_class") != type(model).__name__:
            raise CheckpointError(
                f"training state holds a {meta.get('model_class')}, not a {type(model).__name__}"
            )
        model.load_state_dict(model_state)
    if optimizer is not None:
        if meta.get("optimizer_class") != type(optimizer).__name__:
            raise CheckpointError(
                f"training state holds {meta.get('optimizer_class')} state, "
                f"not {type(optimizer).__name__}"
            )
        optimizer.load_state_dict(optimizer_state)
    if scheduler is not None and meta.get("scheduler") is not None:
        scheduler.load_state_dict(meta["scheduler"])
    if stopper is not None and stopper_state is not None:
        stopper.load_state_dict(stopper_state)
    return {
        "meta": meta,
        "model_state": model_state,
        "optimizer_state": optimizer_state,
        "scheduler_state": meta.get("scheduler"),
        "stopper_state": stopper_state,
        "trainer_state": meta.get("trainer", {}),
    }
