"""Model checkpointing: save/load parameters and configuration.

A checkpoint is a single ``.npz`` file holding every named parameter plus a
JSON-encoded metadata blob (model class name, config dict, library version),
so a trained forecaster can be shipped and reloaded without pickling code.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointError"]

_META_KEY = "__checkpoint_meta__"
_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised when a checkpoint file is malformed or incompatible."""


def _config_to_dict(config) -> dict | None:
    if config is None:
        return None
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return config
    raise TypeError(f"config must be a dataclass or dict, got {type(config)!r}")


def save_checkpoint(path: str | Path, model: Module, config=None, extra: dict | None = None) -> Path:
    """Write ``model``'s parameters (and optional config/extra metadata) to ``path``.

    ``config`` may be a dataclass (e.g. :class:`~repro.core.D2STGNNConfig`)
    or a plain dict; ``extra`` is free-form JSON-serialisable metadata
    (training metrics, dataset name, ...).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    if _META_KEY in state:
        raise CheckpointError(f"parameter name collides with reserved key {_META_KEY}")
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "config": _config_to_dict(config),
        "extra": extra or {},
        "num_parameters": int(sum(v.size for v in state.values())),
    }
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(path: str | Path, model: Module | None = None) -> dict:
    """Read a checkpoint.

    Returns ``{"state": {...}, "meta": {...}}``.  When ``model`` is given its
    parameters are loaded in place (shapes are validated by
    :meth:`~repro.nn.Module.load_state_dict`).
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise CheckpointError(f"{path} is not a repro checkpoint (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {meta.get('format_version')!r}"
            )
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    if model is not None:
        if meta["model_class"] != type(model).__name__:
            raise CheckpointError(
                f"checkpoint holds a {meta['model_class']}, not a {type(model).__name__}"
            )
        model.load_state_dict(state)
    return {"state": state, "meta": meta}
