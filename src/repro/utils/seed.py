"""Global random-state management.

Every stochastic component in the library (parameter initialisation, dropout,
the traffic simulator, data shuffling) draws from generators seeded through
:func:`set_seed`, so a run is reproducible end to end from a single call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["set_seed", "get_rng", "spawn_rng"]

_rng: np.random.Generator = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Seed the library-wide random generator."""
    global _rng
    _rng = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the library-wide random generator."""
    return _rng


def spawn_rng() -> np.random.Generator:
    """Return an independent generator split off the global one.

    Useful for components (e.g. the data simulator) that must not perturb the
    stream used for parameter initialisation.
    """
    seed = int(_rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
