"""Crash-safe file persistence: write to a temp file, then ``os.replace``.

Every artifact the library persists (model checkpoints, training state,
dataset archives, telemetry files) goes through these helpers so a process
killed mid-write can never leave a truncated file behind: the temp file
lives in the *target directory* (same filesystem, so the final rename is
atomic) and the destination is only touched by ``os.replace`` after the
payload is fully written and fsynced.

The repo linter enforces the discipline (rule R006): direct ``np.savez*``
calls and ``open(..., "w")`` writes in the state-persisting modules are
flagged outside this module.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

import numpy as np

__all__ = ["atomic_write", "atomic_savez"]


@contextmanager
def atomic_write(path: str | Path, mode: str = "w"):
    """Context manager yielding a handle whose content replaces ``path`` atomically.

    The handle writes to a temp file in ``path``'s directory; on clean exit
    the temp file is flushed, fsynced and renamed over ``path`` in one
    ``os.replace`` call.  On an exception (or a process kill) the temp file
    is discarded and the previous content of ``path`` — if any — survives
    untouched.

    ``mode`` must be a write mode (``"w"`` or ``"wb"``).
    """
    if not mode.startswith("w"):
        raise ValueError(f"atomic_write requires a write mode, got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise


def atomic_savez(path: str | Path, **arrays: np.ndarray) -> Path:
    """Write a compressed ``.npz`` archive atomically (see :func:`atomic_write`).

    Drop-in replacement for ``np.savez_compressed(path, **arrays)`` with the
    rename-into-place guarantee; returns the final path.
    """
    path = Path(path)
    with atomic_write(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path
