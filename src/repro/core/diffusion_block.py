"""Diffusion model: spatial-temporal localized convolutional layer (Sec. 5.1).

For every time step ``t`` the operator mixes, for each order ``k ≤ k_s`` and
each transition matrix, the features of *other* nodes over the last ``k_t``
steps (Eqs. 4-8):

    H_t = Σ_s Σ_k  (P_s^k ⊙ (1-I))  ·  Σ_m σ(X_{t-m} W_m)  ·  W_{s,k}

The diagonal masking is load-bearing: a node's own history is inherent
signal by definition and is left to the inherent model.

Both output branches of the framework are provided:

* **forecast** — auto-regressive continuation of the hidden sequence over
  the forecast horizon (a learned map from the last ``k_t`` hidden states to
  the next one, slid forward step by step), or a direct multi-step projection
  when ``autoregressive=False`` (the paper's *w/o ar* ablation);
* **backcast** — a non-linear fully connected reconstruction of the input,
  implemented as ``relu(H W_1) W_2`` so reconstructed signals may take either
  sign in the z-scored latent space.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph.localized import mask_self_loops
from ..graph.transition import matrix_powers
from ..tensor import Tensor

__all__ = ["DiffusionBlock", "Support"]

# A transition matrix given to the block: a static numpy (N, N) matrix, a
# learned Tensor (N, N) (self-adaptive), or a per-sample Tensor (B, N, N)
# (dynamic graph).
Support = "np.ndarray | Tensor"


def _masked_powers(support, k_s: int) -> list:
    """``[P ⊙ (1-I), ..., P^{k_s} ⊙ (1-I)]`` for numpy or Tensor supports.

    Tensor supports may be (N, N) adaptive, (B, N, N) per-sample dynamic, or
    (B, T, N, N) per-step dynamic; powers broadcast over the leading axes.
    """
    if isinstance(support, np.ndarray):
        return [Tensor(mask_self_loops(p)) for p in matrix_powers(support, k_s)]
    num_nodes = support.shape[-1]
    off_diag = Tensor(1.0 - np.eye(num_nodes, dtype=np.float32))
    powers = [support * off_diag]
    running = support
    for _ in range(k_s - 1):
        running = running @ support
        powers.append(running * off_diag)
    return powers


class DiffusionBlock(nn.Module):
    """The pink block of Fig. 3: primary model + forecast + backcast.

    Parameters
    ----------
    hidden_dim:
        Latent width ``d``.
    num_supports:
        How many transition matrices will be passed to :meth:`forward`
        (forward/backward/adaptive — 3 in the full model).
    k_s, k_t:
        Spatial and temporal kernel sizes (paper defaults: 2 and 3).
    horizon:
        Number of future hidden states the forecast branch emits.
    autoregressive:
        Forecast-branch strategy (see module docstring).
    use_backcast:
        Whether to build the backcast branch.  The backcast only exists to
        feed the residual links (Eq. 1-2); a block whose backcast nobody
        consumes (coupled stacking, *w/o res*, or the second block of the
        final layer) should not carry — or spend compute on — its
        parameters.  When off, :meth:`forward` returns ``None`` in the
        backcast slot.
    """

    def __init__(
        self,
        hidden_dim: int,
        num_supports: int,
        k_s: int = 2,
        k_t: int = 3,
        horizon: int = 12,
        autoregressive: bool = True,
        use_backcast: bool = True,
    ) -> None:
        super().__init__()
        if min(hidden_dim, num_supports, k_s, k_t, horizon) < 1:
            raise ValueError("all DiffusionBlock sizes must be >= 1")
        self.hidden_dim = hidden_dim
        self.num_supports = num_supports
        self.k_s = k_s
        self.k_t = k_t
        self.horizon = horizon
        self.autoregressive = autoregressive

        # Eq. 5: per-time-offset input transforms W_m.
        self.offset_transforms = nn.ModuleList(
            [nn.Linear(hidden_dim, hidden_dim, bias=False) for _ in range(k_t)]
        )
        # Eq. 8: one output transform per (support, order) pair.
        self.order_transforms = nn.ModuleList(
            [
                nn.Linear(hidden_dim, hidden_dim, bias=False)
                for _ in range(num_supports * k_s)
            ]
        )
        self.output_bias = nn.Parameter(nn.init.zeros(hidden_dim))
        # Forecast branch.
        if autoregressive:
            self.ar_step = nn.MLP([k_t * hidden_dim, hidden_dim, hidden_dim])
        else:
            self.direct_head = nn.Linear(hidden_dim, horizon * hidden_dim)
        # Backcast branch.
        self.backcast = nn.MLP([hidden_dim, hidden_dim, hidden_dim]) if use_backcast else None

    # ------------------------------------------------------------------
    def _temporal_mix(self, x: Tensor) -> Tensor:
        """``Σ_m shift_m(σ(X W_m))``: the localized feature aggregation."""
        batch, steps, num_nodes, dim = x.shape
        mixed = None
        for offset, transform in enumerate(self.offset_transforms):
            features = transform(x).relu()
            if offset > 0:
                pad = Tensor.zeros((batch, offset, num_nodes, dim))
                features = Tensor.concatenate([pad, features[:, : steps - offset]], axis=1)
            mixed = features if mixed is None else mixed + features
        return mixed

    def _graph_mix(self, mixed: Tensor, supports: list) -> Tensor:
        """``Σ_s Σ_k masked(P_s^k) mixed W_{s,k}`` (Eq. 8)."""
        out = None
        index = 0
        for support in supports:
            for power in _masked_powers(support, self.k_s):
                if power.ndim == 3:  # per-sample dynamic (B, N, N)
                    propagated = power.expand_dims(1) @ mixed
                else:  # (N, N) static/adaptive or (B, T, N, N) per-step dynamic
                    propagated = power @ mixed
                term = self.order_transforms[index](propagated)
                out = term if out is None else out + term
                index += 1
        return out + self.output_bias

    # ------------------------------------------------------------------
    def forward(self, x: Tensor, supports: list) -> tuple[Tensor, Tensor, Tensor]:
        """Run the block.

        Parameters
        ----------
        x:
            Diffusion-signal input (B, T, N, d) — the gated ``X^dif``.
        supports:
            Transition matrices (see :data:`Support`); their number must
            match ``num_supports``.

        Returns
        -------
        (hidden, forecast, backcast):
            hidden (B, T, N, d); forecast (B, horizon, N, d);
            backcast (B, T, N, d), the block's estimate of its own input
            (``None`` when built with ``use_backcast=False``).
        """
        if len(supports) != self.num_supports:
            raise ValueError(f"expected {self.num_supports} supports, got {len(supports)}")
        hidden = self._graph_mix(self._temporal_mix(x), supports)
        forecast = self._forecast(hidden)
        backcast = self.backcast(hidden) if self.backcast is not None else None
        return hidden, forecast, backcast

    def _forecast(self, hidden: Tensor) -> Tensor:
        batch, steps, num_nodes, dim = hidden.shape
        if not self.autoregressive:
            flat = self.direct_head(hidden[:, steps - 1])  # (B, N, horizon*d)
            return flat.reshape(batch, num_nodes, self.horizon, dim).transpose(0, 2, 1, 3)
        # Sliding auto-regression over the last k_t hidden states.
        window = [hidden[:, t] for t in range(max(0, steps - self.k_t), steps)]
        while len(window) < self.k_t:  # short inputs: pad by repeating oldest
            window.insert(0, window[0])
        outputs = []
        for _ in range(self.horizon):
            stacked = Tensor.concatenate(window[-self.k_t :], axis=-1)  # (B, N, k_t*d)
            nxt = self.ar_step(stacked)
            outputs.append(nxt)
            window.append(nxt)
        return Tensor.stack(outputs, axis=1)
