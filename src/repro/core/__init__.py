"""D2STGNN and the Decoupled Spatial-Temporal Framework (the paper's contribution)."""

from .alternative_blocks import (
    AttentionDiffusionBlock,
    DSTFModel,
    TCNInherentBlock,
    build_dstf_model,
)
from .decouple import CoupledLayer, DecoupledLayer
from .diffusion_block import DiffusionBlock
from .dynamic_graph import DynamicGraphLearner
from .embeddings import SpatialTemporalEmbeddings
from .gate import EstimationGate
from .inherent_block import InherentBlock
from .model import D2STGNN, D2STGNNConfig

__all__ = [
    "AttentionDiffusionBlock",
    "CoupledLayer",
    "DSTFModel",
    "TCNInherentBlock",
    "build_dstf_model",
    "D2STGNN",
    "D2STGNNConfig",
    "DecoupledLayer",
    "DiffusionBlock",
    "DynamicGraphLearner",
    "EstimationGate",
    "InherentBlock",
    "SpatialTemporalEmbeddings",
]
