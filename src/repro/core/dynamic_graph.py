"""Dynamic graph learning (Sec. 5.3, Eqs. 13-14).

The static transitions ``P_f``/``P_b`` encode road topology but not the
time-varying intensity of diffusion (Fig. 2(c)).  This module learns a
per-sample multiplicative mask over them from three information sources the
paper insists must *all* be used: the current traffic observations (dynamic),
the node embeddings (static), and the time-slot embeddings (time):

    DF^u = Concat[ FC(X), T^D_t, T^W_t, E^u ]
    P_f^dy = P_f ⊙ softmax( (DF^u W^Q)(DF^u W^K)^T / sqrt(d) )

Given the limited window ``T_h``, one matrix per sample is computed (the
paper's cost-saving assumption that ``P^dy`` is static within a window); the
window's last time step provides the time embeddings.
"""

from __future__ import annotations

import math

import numpy as np

from .. import nn
from ..tensor import Tensor, functional as F

__all__ = ["DynamicGraphLearner"]


class DynamicGraphLearner(nn.Module):
    """Produce dynamic transition matrices ``(P_f^dy, P_b^dy)``.

    ``per_step=False`` (paper default): one matrix per sample, shape
    (B, N, N) — the cost-saving approximation "given a limited time range
    T_h, P^dy is static".  ``per_step=True``: the exact formulation with one
    matrix per time step, shape (B, T, N, N) — quadratically more expensive,
    provided so the approximation's cost/accuracy trade-off can be measured
    (see ``benchmarks/bench_ablation_dynamic_graph.py``).
    """

    def __init__(
        self, history: int, hidden_dim: int, embed_dim: int, per_step: bool = False
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.embed_dim = embed_dim
        self.per_step = per_step
        if per_step:
            # Per-step features come from that step's observation alone.
            self.feature_fc = nn.MLP([hidden_dim, hidden_dim, embed_dim])
        else:
            # FC(·) of Eq. 13: flattened per-node history -> embed_dim features.
            self.feature_fc = nn.MLP([history * hidden_dim, hidden_dim, embed_dim])
        feature_dim = 4 * embed_dim
        self.w_q = nn.Linear(feature_dim, embed_dim, bias=False)
        self.w_k = nn.Linear(feature_dim, embed_dim, bias=False)

    def _dynamic_features(
        self, x: Tensor, t_day: Tensor, t_week: Tensor, node_embedding: Tensor
    ) -> Tensor:
        """Assemble ``DF``: (B, N, 4e), or (B, T, N, 4e) when per-step."""
        batch, steps, num_nodes, dim = x.shape
        if self.per_step:
            dynamic = self.feature_fc(x)  # (B, T, N, e)
            shape = (batch, steps, num_nodes, self.embed_dim)
            day = t_day.expand_dims(2).broadcast_to(shape)
            week = t_week.expand_dims(2).broadcast_to(shape)
            static = node_embedding.expand_dims(0).expand_dims(0).broadcast_to(shape)
            return Tensor.concatenate([dynamic, day, week, static], axis=-1)
        history = x.transpose(0, 2, 1, 3).reshape(batch, num_nodes, steps * dim)
        dynamic = self.feature_fc(history)  # (B, N, e)
        last_day = t_day[:, steps - 1].expand_dims(1).broadcast_to(
            (batch, num_nodes, self.embed_dim)
        )
        last_week = t_week[:, steps - 1].expand_dims(1).broadcast_to(
            (batch, num_nodes, self.embed_dim)
        )
        static = node_embedding.expand_dims(0).broadcast_to(
            (batch, num_nodes, self.embed_dim)
        )
        return Tensor.concatenate([dynamic, last_day, last_week, static], axis=-1)

    def _mask(self, features: Tensor) -> Tensor:
        q = self.w_q(features)
        k = self.w_k(features)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.embed_dim))
        return F.softmax(scores, axis=-1)  # (B, [T,] N, N)

    def forward(
        self,
        x: Tensor,
        t_day: Tensor,
        t_week: Tensor,
        node_source: Tensor,
        node_target: Tensor,
        p_forward: np.ndarray,
        p_backward: np.ndarray,
    ) -> tuple[Tensor, Tensor]:
        """Return dynamic transitions, each (B, N, N).

        ``x``: latent input (B, T, N, d); ``t_day``/``t_week``: (B, T, e)
        time embeddings; ``node_source``/``node_target``: (N, e);
        ``p_forward``/``p_backward``: the static road-network transitions.
        """
        df_u = self._dynamic_features(x, t_day, t_week, node_source)
        df_d = self._dynamic_features(x, t_day, t_week, node_target)
        p_f_dy = Tensor(p_forward) * self._mask(df_u)
        p_b_dy = Tensor(p_backward) * self._mask(df_d)
        return p_f_dy, p_b_dy
