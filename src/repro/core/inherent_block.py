"""Inherent model: GRU + multi-head self-attention (Sec. 5.2, Fig. 5).

The inherent signal of each node is a *univariate* series, so the node axis
is folded into the batch axis and every node is processed independently —
"all the nodes are calculated individually in parallel".  Short-term
dependencies are captured by a GRU (Eq. 10); long-term dependencies by
multi-head self-attention over the time axis (Eq. 11) after adding the
non-trainable sinusoidal positional encoding (Eq. 12).

Forecast branch: "a simple sliding auto-regression, rather than the commonly
used encoder-decoder architecture" — the GRU keeps stepping beyond the last
observation, feeding back a projection of its own hidden state as the next
input.  Backcast branch: non-linear fully connected reconstruction.
"""

from __future__ import annotations

from .. import nn
from ..tensor import Tensor

__all__ = ["InherentBlock"]


class InherentBlock(nn.Module):
    """The blue block of Fig. 3.

    ``use_gru`` / ``use_msa`` switch off the two sub-modules for the paper's
    *w/o gru* and *w/o msa* ablations (Table 5).  ``use_backcast=False``
    omits the backcast branch entirely (and returns ``None`` in its slot)
    for positions where no residual link consumes it — the second block of
    the final decoupled layer, coupled stacking, or the *w/o res* ablation.
    """

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int = 4,
        horizon: int = 12,
        use_gru: bool = True,
        use_msa: bool = True,
        autoregressive: bool = True,
        max_length: int = 64,
        use_backcast: bool = True,
    ) -> None:
        super().__init__()
        if not (use_gru or use_msa):
            raise ValueError("inherent block needs at least one of GRU / self-attention")
        self.hidden_dim = hidden_dim
        self.horizon = horizon
        self.use_gru = use_gru
        self.use_msa = use_msa
        self.autoregressive = autoregressive
        if use_gru:
            self.gru = nn.GRU(hidden_dim, hidden_dim)
        if use_msa:
            self.positional = nn.PositionalEncoding(hidden_dim, max_length=max_length)
            self.attention = nn.MultiHeadSelfAttention(hidden_dim, num_heads=num_heads)
        if autoregressive:
            # Projection feeding the GRU its own prediction as next input.
            self.feedback = nn.Linear(hidden_dim, hidden_dim)
        else:
            self.direct_head = nn.Linear(hidden_dim, horizon * hidden_dim)
        self.backcast = nn.MLP([hidden_dim, hidden_dim, hidden_dim]) if use_backcast else None

    def forward(self, x: Tensor, *, return_hidden: bool = True) -> tuple[Tensor, Tensor, Tensor]:
        """Process inherent input (B, T, N, d).

        Returns ``(hidden, forecast, backcast)`` with shapes
        (B, T, N, d), (B, horizon, N, d) and (B, T, N, d); the backcast is
        ``None`` when the block was built with ``use_backcast=False``.
        Callers that discard the hidden slot (the decoupled layer, which
        chains on the residual instead) pass ``return_hidden=False`` to
        skip its reshape/transpose — dead ops the tape audit (rule T003)
        rejects.
        """
        batch, steps, num_nodes, dim = x.shape
        folded = x.transpose(0, 2, 1, 3).reshape(batch * num_nodes, steps, dim)

        if self.use_gru:
            gru_seq, gru_state = self.gru(folded)
        else:
            gru_seq, gru_state = folded, folded[:, steps - 1]

        hidden_seq = gru_seq
        if self.use_msa:
            hidden_seq = self.attention(self.positional(gru_seq)) + gru_seq

        forecast = self._forecast(hidden_seq, gru_state)

        def unfold(seq: Tensor, length: int) -> Tensor:
            return seq.reshape(batch, num_nodes, length, dim).transpose(0, 2, 1, 3)

        backcast = (
            unfold(self.backcast(hidden_seq), steps) if self.backcast is not None else None
        )
        hidden = unfold(hidden_seq, steps) if return_hidden else None
        return hidden, unfold(forecast, self.horizon), backcast

    def _forecast(self, hidden_seq: Tensor, gru_state: Tensor) -> Tensor:
        if not self.autoregressive:
            last = hidden_seq[:, hidden_seq.shape[1] - 1]
            flat = self.direct_head(last)  # (B*N, horizon*d)
            return flat.reshape(flat.shape[0], self.horizon, self.hidden_dim)
        outputs = []
        state = gru_state
        current = hidden_seq[:, hidden_seq.shape[1] - 1]
        for _ in range(self.horizon):
            step_input = self.feedback(current)
            if self.use_gru:
                state = self.gru.cell(step_input, state)
                current = state
            else:
                current = step_input.tanh()
            outputs.append(current)
        return Tensor.stack(outputs, axis=1)
