"""Decoupled spatial-temporal layer — the DSTF framework proper (Sec. 4).

One layer performs (Fig. 3, Algorithm 1 lines 6-11):

1. **estimation gate** — split the layer input into a rough diffusion share
   ``X^dif = Λ ⊙ X^l`` (Eq. 3);
2. **first block** (diffusion by default) — produce hidden states, a
   forecast, and a *backcast* reconstruction of its input;
3. **residual link** — ``X^inh = X^l - X_b^dif`` (Eq. 1): remove what the
   first model explained, leaving the inherent signal;
4. **second block** (inherent) — same three outputs on the residual;
5. **residual link** — ``X^{l+1} = X^inh - X_b^inh`` (Eq. 2): what neither
   model explained flows to the next layer.

The framework is agnostic to the two block implementations: anything with
the ``(hidden, forecast, backcast)`` return contract plugs in.  Constructor
flags reproduce the paper's framework ablations (Table 5): *switch*
(``diffusion_first=False``), *w/o gate*, *w/o res*, and *w/o decouple*
(both off, blocks chained directly as in conventional STGNNs).
"""

from __future__ import annotations

import inspect

from .. import nn
from ..tensor import Tensor
from .diffusion_block import DiffusionBlock
from .gate import EstimationGate
from .inherent_block import InherentBlock

__all__ = ["DecoupledLayer", "CoupledLayer"]


def _accepts_return_hidden(block: nn.Module) -> bool:
    """True when a block's forward offers the ``return_hidden`` opt-out."""
    try:
        parameters = inspect.signature(block.forward).parameters
    except (TypeError, ValueError):
        return False
    return "return_hidden" in parameters


class DecoupledLayer(nn.Module):
    """One decoupled spatial-temporal layer of D2STGNN."""

    def __init__(
        self,
        diffusion: DiffusionBlock,
        inherent: InherentBlock,
        embed_dim: int,
        hidden_dim: int,
        diffusion_first: bool = True,
        use_gate: bool = True,
        use_residual: bool = True,
    ) -> None:
        super().__init__()
        self.diffusion = diffusion
        self.inherent = inherent
        self.diffusion_first = diffusion_first
        self.use_gate = use_gate
        self.use_residual = use_residual
        if use_gate:
            self.gate = EstimationGate(embed_dim, hidden_dim)
        # The layer chains on the residual, never on the inherent hidden
        # states, so blocks offering a ``return_hidden`` opt-out get it
        # passed (skipping dead ops, tape-audit rule T003).  Probed rather
        # than required: the block contract stays "anything returning
        # (hidden, forecast, backcast)".
        self._inherent_skips_hidden = _accepts_return_hidden(inherent)

    def forward(
        self,
        x: Tensor,
        supports: list,
        t_day: Tensor,
        t_week: Tensor,
        node_source: Tensor,
        node_target: Tensor,
    ) -> tuple[Tensor, Tensor, Tensor]:
        """Run the layer.

        Returns ``(residual, diffusion_forecast, inherent_forecast)`` where
        ``residual`` is the next layer's input ``X^{l+1}``.
        """

        def run_diffusion(inp: Tensor):
            return self.diffusion(inp, supports)

        def run_inherent(inp: Tensor):
            if self._inherent_skips_hidden:
                return self.inherent(inp, return_hidden=False)
            return self.inherent(inp)

        if self.diffusion_first:
            first, second = run_diffusion, run_inherent
        else:
            first, second = run_inherent, run_diffusion

        if self.use_gate:
            gate_values = self.gate.gate_values(t_day, t_week, node_source, node_target)
            if not self.diffusion_first:
                # The gate estimates the share of the *first* model's signal;
                # with the order switched that is the inherent share 1 - Λ.
                gate_values = 1.0 - gate_values
            first_input = gate_values * x
        else:
            first_input = x

        _, first_forecast, first_backcast = first(first_input)
        second_input = (
            x - first_backcast if self.use_residual and first_backcast is not None else x
        )
        _, second_forecast, second_backcast = second(second_input)
        residual = (
            second_input - second_backcast
            if self.use_residual and second_backcast is not None
            else second_input
        )

        if self.diffusion_first:
            return residual, first_forecast, second_forecast
        return residual, second_forecast, first_forecast


class CoupledLayer(nn.Module):
    """The *w/o decouple* variant (D2STGNN‡ in Table 4).

    No estimation gate, no residual decomposition: the diffusion and
    inherent models are chained directly — the inherent model consumes the
    diffusion model's hidden states, the next layer consumes the inherent
    hidden states — the conventional STGNN stacking pattern (e.g. Graph
    WaveNet).  Keeping the two primary models identical to the decoupled
    version isolates the framework's contribution.
    """

    def __init__(self, diffusion: DiffusionBlock, inherent: InherentBlock,
                 diffusion_first: bool = True) -> None:
        super().__init__()
        self.diffusion = diffusion
        self.inherent = inherent
        self.diffusion_first = diffusion_first

    def forward(
        self,
        x: Tensor,
        supports: list,
        t_day: Tensor,
        t_week: Tensor,
        node_source: Tensor,
        node_target: Tensor,
    ) -> tuple[Tensor, Tensor, Tensor]:
        if self.diffusion_first:
            hidden_1, forecast_dif, _ = self.diffusion(x, supports)
            hidden_2, forecast_inh, _ = self.inherent(hidden_1)
        else:
            hidden_1, forecast_inh, _ = self.inherent(x)
            hidden_2, forecast_dif, _ = self.diffusion(hidden_1, supports)
        return hidden_2, forecast_dif, forecast_inh
