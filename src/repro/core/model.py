"""D2STGNN — the full model (Sec. 5, Fig. 3, Algorithm 1).

Stacks ``num_layers`` decoupled spatial-temporal layers over a latent
projection of the traffic signal, sums the forecast hidden states of every
block at every layer (Eq. 15), and regresses the final prediction through a
two-layer fully connected head.

Every ablation of Tables 4-5 is a constructor flag:

==================  ==========================================================
Flag                Paper variant
==================  ==========================================================
``use_dynamic_graph=False``   *w/o dg*  → D2STGNN† (static pre-defined graph)
``use_adaptive=False``        *w/o apt* (no self-adaptive transition matrix)
``use_gate=False``            *w/o gate*
``use_residual=False``        *w/o res*
``use_decouple=False``        *w/o decouple* → D2STGNN‡ (coupled stacking)
``use_gru=False``             *w/o gru*
``use_msa=False``             *w/o msa*
``autoregressive=False``      *w/o ar* (direct multi-step heads)
``diffusion_first=False``     *switch* (inherent block first)
==================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..graph.transition import transition_pair
from ..tensor import Tensor
from .decouple import CoupledLayer, DecoupledLayer
from .diffusion_block import DiffusionBlock
from .dynamic_graph import DynamicGraphLearner
from .embeddings import SpatialTemporalEmbeddings
from .inherent_block import InherentBlock

__all__ = ["D2STGNNConfig", "D2STGNN"]


@dataclass(frozen=True)
class D2STGNNConfig:
    """Hyper-parameters and ablation switches of D2STGNN.

    Paper defaults (Sec. 6.1): hidden 32, embeddings 12, ``k_s=2``,
    ``k_t=3``, history = horizon = 12.
    """

    num_nodes: int
    steps_per_day: int = 288
    in_channels: int = 1
    out_channels: int = 1
    history: int = 12
    horizon: int = 12
    hidden_dim: int = 32
    embed_dim: int = 12
    num_layers: int = 2
    k_s: int = 2
    k_t: int = 3
    num_heads: int = 4
    dropout: float = 0.1
    # Ablation switches.
    diffusion_first: bool = True
    use_gate: bool = True
    use_residual: bool = True
    use_decouple: bool = True
    use_dynamic_graph: bool = True
    dynamic_graph_per_step: bool = False  # exact per-step P^dy (Sec. 5.3 note)
    use_adaptive: bool = True
    use_gru: bool = True
    use_msa: bool = True
    autoregressive: bool = True

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("D2STGNN needs at least two sensors")
        if self.hidden_dim % self.num_heads != 0:
            raise ValueError("hidden_dim must be divisible by num_heads")
        if min(self.num_layers, self.k_s, self.k_t, self.history, self.horizon) < 1:
            raise ValueError("layer counts, kernel sizes and horizons must be >= 1")


class D2STGNN(nn.Module):
    """Decoupled Dynamic Spatial-Temporal Graph Neural Network.

    Parameters
    ----------
    config:
        Model hyper-parameters and ablation switches.
    adjacency:
        Static road-network adjacency (N, N); converted internally to the
        forward/backward transition pair of Sec. 5.1.
    """

    def __init__(self, config: D2STGNNConfig, adjacency: np.ndarray) -> None:
        super().__init__()
        if adjacency.shape != (config.num_nodes, config.num_nodes):
            raise ValueError(
                f"adjacency shape {adjacency.shape} does not match num_nodes={config.num_nodes}"
            )
        self.config = config
        self.p_forward, self.p_backward = transition_pair(adjacency)

        self.embeddings = SpatialTemporalEmbeddings(
            config.num_nodes, config.steps_per_day, config.embed_dim
        )
        self.input_projection = nn.Linear(config.in_channels, config.hidden_dim)
        self.dropout = nn.Dropout(config.dropout)

        if config.use_dynamic_graph:
            self.graph_learner = DynamicGraphLearner(
                config.history,
                config.hidden_dim,
                config.embed_dim,
                per_step=config.dynamic_graph_per_step,
            )

        num_supports = 2 + (1 if config.use_adaptive else 0)
        layers = []
        for index in range(config.num_layers):
            # Backcasts exist solely to feed the residual links (Eq. 1-2),
            # so a block only builds one when some link will consume it:
            # never under coupled stacking or *w/o res*, and the layer's
            # second block skips it on the final layer, whose residual
            # X^{L+1} has no successor.
            needs_residual = config.use_decouple and config.use_residual
            first_backcast = needs_residual
            second_backcast = needs_residual and index < config.num_layers - 1
            if config.diffusion_first:
                diffusion_backcast, inherent_backcast = first_backcast, second_backcast
            else:
                diffusion_backcast, inherent_backcast = second_backcast, first_backcast
            diffusion = DiffusionBlock(
                config.hidden_dim,
                num_supports=num_supports,
                k_s=config.k_s,
                k_t=config.k_t,
                horizon=config.horizon,
                autoregressive=config.autoregressive,
                use_backcast=diffusion_backcast,
            )
            inherent = InherentBlock(
                config.hidden_dim,
                num_heads=config.num_heads,
                horizon=config.horizon,
                use_gru=config.use_gru,
                use_msa=config.use_msa,
                autoregressive=config.autoregressive,
                max_length=max(config.history, config.horizon) + 4,
                use_backcast=inherent_backcast,
            )
            if config.use_decouple:
                layers.append(
                    DecoupledLayer(
                        diffusion,
                        inherent,
                        embed_dim=config.embed_dim,
                        hidden_dim=config.hidden_dim,
                        diffusion_first=config.diffusion_first,
                        use_gate=config.use_gate,
                        use_residual=config.use_residual,
                    )
                )
            else:
                layers.append(
                    CoupledLayer(diffusion, inherent, diffusion_first=config.diffusion_first)
                )
        self.layers = nn.ModuleList(layers)
        # Eq. 15 regression head: two-layer FC applied per forecast step.
        self.head = nn.MLP([config.hidden_dim, config.hidden_dim, config.out_channels])

    # ------------------------------------------------------------------
    def _supports(self, x_latent: Tensor, t_day: Tensor, t_week: Tensor) -> list:
        """Assemble the transition matrices for the diffusion blocks.

        Dynamic graphs replace the static pair when enabled (Sec. 5.3); the
        self-adaptive matrix (Eq. 7) is appended when enabled.
        """
        if self.config.use_dynamic_graph:
            p_f, p_b = self.graph_learner(
                x_latent,
                t_day,
                t_week,
                self.embeddings.node_source,
                self.embeddings.node_target,
                self.p_forward,
                self.p_backward,
            )
            supports: list = [p_f, p_b]
        else:
            supports = [self.p_forward, self.p_backward]
        if self.config.use_adaptive:
            supports.append(self.embeddings.adaptive_transition())
        return supports

    def forward(self, x: np.ndarray | Tensor, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        """Forecast.

        Parameters
        ----------
        x:
            Scaled history (B, T_h, N, C_in).
        tod, dow:
            Integer (B, T_h) time-of-day / day-of-week indices.

        Returns
        -------
        Tensor
            Predictions (B, T_f, N, C_out) in scaled units.
        """
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim != 4:
            raise ValueError(f"expected (B, T, N, C) input, got shape {x.shape}")
        if x.shape[2] != self.config.num_nodes:
            raise ValueError(
                f"input has {x.shape[2]} nodes, model built for {self.config.num_nodes}"
            )
        t_day, t_week = self.embeddings.time_features(tod, dow)

        latent = self.dropout(self.input_projection(x))
        supports = self._supports(latent, t_day, t_week)

        forecast_sum = None
        current = latent
        for layer in self.layers:
            current, f_dif, f_inh = layer(
                current,
                supports,
                t_day,
                t_week,
                self.embeddings.node_source,
                self.embeddings.node_target,
            )
            layer_sum = f_dif + f_inh
            forecast_sum = layer_sum if forecast_sum is None else forecast_sum + layer_sum

        return self.head(forecast_sum)
