"""Shared embedding tables of D2STGNN (Sec. 4.2).

Four learnable tables are shared across the estimation gates, the
self-adaptive transition matrix and the dynamic graph learner:

* ``T^D``: one vector per time-of-day slot (``steps_per_day`` slots);
* ``T^W``: one vector per day of the week (7 slots);
* ``E^u``: source-node embeddings (used when a node *emits* messages);
* ``E^d``: target-node embeddings (used when a node *aggregates*).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = ["SpatialTemporalEmbeddings"]


class SpatialTemporalEmbeddings(nn.Module):
    """Container for the four embedding tables, randomly initialised."""

    def __init__(self, num_nodes: int, steps_per_day: int, dim: int) -> None:
        super().__init__()
        self.num_nodes = num_nodes
        self.steps_per_day = steps_per_day
        self.dim = dim
        self.time_of_day = nn.Embedding(steps_per_day, dim)
        self.day_of_week = nn.Embedding(7, dim)
        self.node_source = nn.Parameter(nn.init.xavier_uniform(num_nodes, dim))
        self.node_target = nn.Parameter(nn.init.xavier_uniform(num_nodes, dim))

    def time_features(self, tod: np.ndarray, dow: np.ndarray) -> tuple[Tensor, Tensor]:
        """Look up (B, T, dim) embeddings for integer index arrays (B, T)."""
        return self.time_of_day(tod % self.steps_per_day), self.day_of_week(dow % 7)

    def adaptive_transition(self) -> Tensor:
        """Self-adaptive transition matrix ``P_apt`` (paper Eq. 7).

        ``softmax(relu(E^d (E^u)^T))`` — row-normalised, so it plays the same
        role as the road-network transitions it supplements.
        """
        from ..tensor import functional as F

        scores = (self.node_target @ self.node_source.transpose()).relu()
        return F.softmax(scores, axis=-1)
