"""Estimation gate (paper Eq. 3).

The gate estimates, per (time step, node), the fraction ``Λ ∈ (0, 1)`` of the
layer input that is diffusion signal, from the time-slot and node embeddings:

    Λ_{t,i} = Sigmoid( σ( (T^D_t || T^W_t || E^u_i || E^d_i) W_1 ) W_2 )
    X^dif   = Λ ⊙ X^l

Its job is to unburden the first model of each layer, which otherwise sees
the full coupled signal but must learn only its own part (Sec. 4.2).
"""

from __future__ import annotations

from .. import nn
from ..tensor import Tensor

__all__ = ["EstimationGate"]


class EstimationGate(nn.Module):
    """Learned soft split of a layer input into its diffusion share."""

    def __init__(self, embed_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.fc1 = nn.Linear(4 * embed_dim, hidden_dim)
        self.fc2 = nn.Linear(hidden_dim, 1)

    def gate_values(
        self,
        t_day: Tensor,
        t_week: Tensor,
        node_source: Tensor,
        node_target: Tensor,
    ) -> Tensor:
        """Return Λ with shape (B, T, N, 1).

        ``t_day``/``t_week``: (B, T, d) time-slot embeddings;
        ``node_source``/``node_target``: (N, d) node embeddings.
        The four are broadcast-concatenated over the missing axes
        (``Concat(·)`` in the paper's notation).
        """
        batch, steps, _ = t_day.shape
        num_nodes = node_source.shape[0]
        t_day = t_day.expand_dims(2).broadcast_to((batch, steps, num_nodes, t_day.shape[-1]))
        t_week = t_week.expand_dims(2).broadcast_to((batch, steps, num_nodes, t_week.shape[-1]))
        e_u = node_source.expand_dims(0).expand_dims(0).broadcast_to(
            (batch, steps, num_nodes, node_source.shape[-1])
        )
        e_d = node_target.expand_dims(0).expand_dims(0).broadcast_to(
            (batch, steps, num_nodes, node_target.shape[-1])
        )
        features = Tensor.concatenate([t_day, t_week, e_u, e_d], axis=-1)
        return self.fc2(self.fc1(features).relu()).sigmoid()

    def forward(
        self,
        x: Tensor,
        t_day: Tensor,
        t_week: Tensor,
        node_source: Tensor,
        node_target: Tensor,
    ) -> Tensor:
        """Return ``X^dif = Λ ⊙ X`` for input (B, T, N, d)."""
        return self.gate_values(t_day, t_week, node_source, node_target) * x
