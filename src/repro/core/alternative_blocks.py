"""Alternative instantiations of the DSTF framework's abstract components.

Section 4 of the paper stresses that in DSTF "the dynamic graph learning,
diffusion model, and inherent model remain abstract and can be designed
independently".  D2STGNN is *one* instantiation; this module provides a
second one to exercise that claim:

* :class:`AttentionDiffusionBlock` — the diffusion model as graph-masked
  spatial attention (GMAN-style) instead of the localized convolution.  The
  attention scores are computed per time step and masked to the road
  network's edges, with the diagonal blocked so a node cannot attend to its
  own history (preserving the framework's diffusion/inherent separation).
* :class:`TCNInherentBlock` — the inherent model as a stack of dilated
  causal convolutions per node (WaveNet-style) instead of GRU + MSA.

Both follow the framework's block contract — ``forward(...)`` returns
``(hidden, forecast, backcast)`` — so they plug into
:class:`~repro.core.DecoupledLayer` unchanged.  The factory
:func:`build_dstf_model` assembles a full forecaster from any combination
of block types; ``tests/test_core_alternative.py`` and
``benchmarks/bench_ablation_instantiation.py`` compare the instantiations.
"""

from __future__ import annotations

import math

import numpy as np

from .. import nn
from ..graph.transition import transition_pair
from ..tensor import Tensor, functional as F
from .decouple import DecoupledLayer
from .diffusion_block import DiffusionBlock
from .embeddings import SpatialTemporalEmbeddings
from .inherent_block import InherentBlock

__all__ = ["AttentionDiffusionBlock", "TCNInherentBlock", "DSTFModel", "build_dstf_model"]


class AttentionDiffusionBlock(nn.Module):
    """Diffusion model via graph-masked spatial attention.

    For each time step, every node attends over its road-network neighbours
    (edges of any supplied support); the mask removes non-edges *and* the
    diagonal, so like the localized convolution the block is structurally
    blind to a node's own history.
    """

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int = 2,
        horizon: int = 12,
        autoregressive: bool = True,
        k_t: int = 3,
        max_nodes: int = 512,
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.horizon = horizon
        self.autoregressive = autoregressive
        self.k_t = k_t
        # Queries come from *static per-node embeddings*, not from the input:
        # were the query computed from x_i, node i's output would depend on
        # its own history through Q even with the diagonal masked, violating
        # the framework's diffusion/inherent separation.
        self.node_query = nn.Parameter(nn.init.xavier_uniform(max_nodes, hidden_dim))
        self.w_k = nn.Linear(hidden_dim, hidden_dim, bias=False)
        self.w_v = nn.Linear(hidden_dim, hidden_dim, bias=False)
        self.mix = nn.Linear(hidden_dim, hidden_dim)
        if autoregressive:
            self.ar_step = nn.MLP([k_t * hidden_dim, hidden_dim, hidden_dim])
        else:
            self.direct_head = nn.Linear(hidden_dim, horizon * hidden_dim)
        self.backcast = nn.MLP([hidden_dim, hidden_dim, hidden_dim])

    @staticmethod
    def _edge_mask(supports: list, num_nodes: int) -> np.ndarray:
        """True where attention is *disallowed*: non-edges and the diagonal."""
        allowed = np.zeros((num_nodes, num_nodes), dtype=bool)
        for support in supports:
            matrix = support if isinstance(support, np.ndarray) else support.numpy()
            if matrix.ndim > 2:  # dynamic supports: union over batch/time
                matrix = matrix.reshape(-1, num_nodes, num_nodes).max(axis=0)
            allowed |= matrix > 0
        np.fill_diagonal(allowed, False)  # self-history is inherent signal
        return ~allowed

    def forward(self, x: Tensor, supports: list) -> tuple[Tensor, Tensor, Tensor]:
        """``x``: (B, T, N, d); returns (hidden, forecast, backcast)."""
        batch, steps, nodes, dim = x.shape
        mask = self._edge_mask(supports, nodes)
        if mask.all():
            raise ValueError("supports contain no edges; attention has nothing to mix")
        keys = self.w_k(x)  # (B, T, N, d)
        values = self.w_v(x)
        queries = self.node_query[:nodes]  # (N, d), static
        scores = (queries @ keys.swapaxes(-1, -2)) * (1.0 / math.sqrt(dim))
        penalty = np.where(mask, -1e9, 0.0).astype(np.float32)
        attended = F.softmax(scores + Tensor(penalty), axis=-1) @ values
        hidden = self.mix(attended).relu()
        return hidden, self._forecast(hidden), self.backcast(hidden)

    def _forecast(self, hidden: Tensor) -> Tensor:
        batch, steps, nodes, dim = hidden.shape
        if not self.autoregressive:
            flat = self.direct_head(hidden[:, steps - 1])
            return flat.reshape(batch, nodes, self.horizon, dim).transpose(0, 2, 1, 3)
        window = [hidden[:, t] for t in range(max(0, steps - self.k_t), steps)]
        while len(window) < self.k_t:
            window.insert(0, window[0])
        outputs = []
        for _ in range(self.horizon):
            stacked = Tensor.concatenate(window[-self.k_t :], axis=-1)
            nxt = self.ar_step(stacked)
            outputs.append(nxt)
            window.append(nxt)
        return Tensor.stack(outputs, axis=1)


class TCNInherentBlock(nn.Module):
    """Inherent model via dilated causal convolutions (per node).

    A WaveNet-style receptive field replaces the GRU + self-attention stack;
    like the original inherent model it never mixes information across
    nodes.
    """

    def __init__(
        self,
        hidden_dim: int,
        num_layers: int = 3,
        horizon: int = 12,
        autoregressive: bool = True,
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.horizon = horizon
        self.autoregressive = autoregressive
        self.layers = nn.ModuleList(
            [nn.GatedTemporalConv(hidden_dim, hidden_dim, dilation=2**i) for i in range(num_layers)]
        )
        if autoregressive:
            self.ar_step = nn.MLP([2 * hidden_dim, hidden_dim, hidden_dim])
        else:
            self.direct_head = nn.Linear(hidden_dim, horizon * hidden_dim)
        self.backcast = nn.MLP([hidden_dim, hidden_dim, hidden_dim])

    def forward(self, x: Tensor, *, return_hidden: bool = True) -> tuple[Tensor, Tensor, Tensor]:
        """``x``: (B, T, N, d); returns (hidden, forecast, backcast).

        ``return_hidden=False`` is part of the inherent-block contract (the
        decoupled layer chains on the residual, not the hidden states); here
        the hidden slot is the raw TCN stack output the forecast/backcast
        branches consume anyway, so skipping it costs nothing either way.
        """
        hidden = x
        for layer in self.layers:
            hidden = layer(hidden) + hidden  # residual TCN stack
        result = hidden if return_hidden else None
        return result, self._forecast(hidden), self.backcast(hidden)

    def _forecast(self, hidden: Tensor) -> Tensor:
        batch, steps, nodes, dim = hidden.shape
        if not self.autoregressive:
            flat = self.direct_head(hidden[:, steps - 1])
            return flat.reshape(batch, nodes, self.horizon, dim).transpose(0, 2, 1, 3)
        window = [hidden[:, max(0, steps - 2)], hidden[:, steps - 1]]
        outputs = []
        for _ in range(self.horizon):
            stacked = Tensor.concatenate(window[-2:], axis=-1)
            nxt = self.ar_step(stacked)
            outputs.append(nxt)
            window.append(nxt)
        return Tensor.stack(outputs, axis=1)


class DSTFModel(nn.Module):
    """A DSTF forecaster assembled from arbitrary block instantiations.

    The skeleton mirrors :class:`~repro.core.D2STGNN` (input projection,
    shared embeddings, stacked decoupled layers, summed forecasts, MLP
    head) but takes block *factories*, demonstrating that the framework is
    independent of its primary models.
    """

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        diffusion_factory,
        inherent_factory,
        steps_per_day: int = 288,
        hidden_dim: int = 32,
        embed_dim: int = 12,
        num_layers: int = 2,
        horizon: int = 12,
        in_channels: int = 1,
        out_channels: int = 1,
    ) -> None:
        super().__init__()
        self.num_nodes = num_nodes
        self.p_forward, self.p_backward = transition_pair(adjacency)
        self.embeddings = SpatialTemporalEmbeddings(num_nodes, steps_per_day, embed_dim)
        self.input_projection = nn.Linear(in_channels, hidden_dim)
        self.layers = nn.ModuleList(
            [
                DecoupledLayer(
                    diffusion_factory(),
                    inherent_factory(),
                    embed_dim=embed_dim,
                    hidden_dim=hidden_dim,
                )
                for _ in range(num_layers)
            ]
        )
        self.head = nn.MLP([hidden_dim, hidden_dim, out_channels])

    def forward(self, x, tod: np.ndarray, dow: np.ndarray) -> Tensor:
        """Forecast (B, T_f, N, C) from scaled history (B, T_h, N, C_in)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        t_day, t_week = self.embeddings.time_features(tod, dow)
        supports = [self.p_forward, self.p_backward, self.embeddings.adaptive_transition()]
        current = self.input_projection(x)
        forecast_sum = None
        for layer in self.layers:
            current, f_dif, f_inh = layer(
                current,
                supports,
                t_day,
                t_week,
                self.embeddings.node_source,
                self.embeddings.node_target,
            )
            layer_sum = f_dif + f_inh
            forecast_sum = layer_sum if forecast_sum is None else forecast_sum + layer_sum
        return self.head(forecast_sum)


def build_dstf_model(
    num_nodes: int,
    adjacency: np.ndarray,
    diffusion: str = "localized-conv",
    inherent: str = "gru-msa",
    steps_per_day: int = 288,
    hidden_dim: int = 32,
    embed_dim: int = 12,
    num_layers: int = 2,
    num_heads: int = 2,
    horizon: int = 12,
    k_s: int = 2,
    k_t: int = 3,
) -> DSTFModel:
    """Assemble a DSTF forecaster from named block instantiations.

    ``diffusion``: ``"localized-conv"`` (the paper's, Sec. 5.1) or
    ``"graph-attention"``.  ``inherent``: ``"gru-msa"`` (the paper's,
    Sec. 5.2) or ``"tcn"``.
    """
    diffusion_factories = {
        "localized-conv": lambda: DiffusionBlock(
            hidden_dim, num_supports=3, k_s=k_s, k_t=k_t, horizon=horizon
        ),
        "graph-attention": lambda: AttentionDiffusionBlock(
            hidden_dim, num_heads=num_heads, horizon=horizon, k_t=k_t,
            max_nodes=num_nodes,
        ),
    }
    inherent_factories = {
        "gru-msa": lambda: InherentBlock(
            hidden_dim, num_heads=num_heads, horizon=horizon, max_length=horizon + 16
        ),
        "tcn": lambda: TCNInherentBlock(hidden_dim, horizon=horizon),
    }
    if diffusion not in diffusion_factories:
        raise KeyError(f"unknown diffusion block {diffusion!r}; options: {sorted(diffusion_factories)}")
    if inherent not in inherent_factories:
        raise KeyError(f"unknown inherent block {inherent!r}; options: {sorted(inherent_factories)}")
    return DSTFModel(
        num_nodes=num_nodes,
        adjacency=adjacency,
        diffusion_factory=diffusion_factories[diffusion],
        inherent_factory=inherent_factories[inherent],
        steps_per_day=steps_per_day,
        hidden_dim=hidden_dim,
        embed_dim=embed_dim,
        num_layers=num_layers,
        horizon=horizon,
    )
