"""Temporal convolution layers (WaveNet-family building blocks).

Shared by the Graph WaveNet / MTGNN baselines and the alternative DSTF
block instantiations in :mod:`repro.core.alternative_blocks`.
"""

from __future__ import annotations

from ..tensor import Tensor
from .linear import Linear
from .module import Module

__all__ = ["CausalConv", "GatedTemporalConv"]


class CausalConv(Module):
    """Dilated causal 1-D convolution along the time axis (kernel size 2).

    ``y_t = x_t W_1 + x_{t-dilation} W_2`` with zero padding on the left.
    Input/output: (B, T, N, d) — the node axis rides along.
    """

    def __init__(self, in_dim: int, out_dim: int, dilation: int = 1) -> None:
        super().__init__()
        if dilation < 1:
            raise ValueError("dilation must be >= 1")
        self.dilation = dilation
        self.w_now = Linear(in_dim, out_dim, bias=True)
        self.w_past = Linear(in_dim, out_dim, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, nodes, dim = x.shape
        now = self.w_now(x)
        d = self.dilation
        if d >= steps:
            return now
        pad = Tensor.zeros((batch, d, nodes, self.w_past.out_features))
        past = Tensor.concatenate([pad, self.w_past(x[:, : steps - d])], axis=1)
        return now + past


class GatedTemporalConv(Module):
    """Gated TCN unit: ``tanh(conv(x)) ⊙ sigmoid(conv(x))`` (Graph WaveNet)."""

    def __init__(self, in_dim: int, out_dim: int, dilation: int = 1) -> None:
        super().__init__()
        self.filter_conv = CausalConv(in_dim, out_dim, dilation)
        self.gate_conv = CausalConv(in_dim, out_dim, dilation)

    def forward(self, x: Tensor) -> Tensor:
        return self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()
