"""Base classes for neural-network components: :class:`Parameter` and :class:`Module`.

The API deliberately mirrors ``torch.nn`` (``parameters()``, ``train()``,
``eval()``, ``state_dict()``) so the model code in :mod:`repro.core` and
:mod:`repro.baselines` reads like the original PyTorch implementations it
reproduces.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from ..tensor import Tensor, inference_mode

__all__ = ["Parameter", "Module"]

# Observability hook (installed by repro.obs.profiler, None otherwise).  When
# set, Module.__call__ wraps each forward pass in the context manager the hook
# returns, giving the profiler a named-scope breakdown of where time goes.
# The disabled path costs one global read and a predicted branch per module
# call — module calls are orders of magnitude rarer than tensor ops.
_FORWARD_SCOPE_HOOK = None


def _set_forward_scope_hook(hook) -> None:
    """Install (or clear, with ``None``) the profiler's forward-scope hook.

    ``hook(module)`` must return a context manager; the module's forward pass
    runs inside it.  Used exclusively by :mod:`repro.obs.profiler`.
    """
    global _FORWARD_SCOPE_HOOK
    _FORWARD_SCOPE_HOOK = hook


class Parameter(Tensor):
    """A tensor that is a trainable model weight (``requires_grad=True``)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_scope_name", None)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a submodule under an explicit name."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its submodules."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted-path name, parameter) pairs for the whole tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield (dotted-path name, module) pairs for the whole tree.

        The root is yielded under ``prefix`` itself (empty string by
        default), mirroring ``torch.nn.Module.named_modules``.
        """
        yield (prefix, self)
        for name, module in self._modules.items():
            child = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(prefix=child)

    # ------------------------------------------------------------------
    # Profiler scope annotation
    # ------------------------------------------------------------------
    @property
    def scope_name(self) -> str:
        """Name the profiler files this module's forward time under.

        Defaults to the class name; override with :meth:`annotate_scope`
        (e.g. to the dotted path from :meth:`named_modules`).
        """
        explicit = getattr(self, "_scope_name", None)
        return explicit if explicit else type(self).__name__

    def annotate_scope(self, name: str) -> "Module":
        """Set an explicit profiler scope name; returns ``self`` for chaining."""
        object.__setattr__(self, "_scope_name", str(name))
        return self

    def num_parameters(self) -> int:
        """Total number of scalar weights (the 'model size')."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Put this module (and submodules) in training mode."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Put this module (and submodules) in evaluation mode."""
        return self.train(False)

    @contextlib.contextmanager
    def inference(self):
        """Serving context: eval mode plus the engine's inference mode.

        Switches the whole module tree to evaluation mode (dropout becomes
        the identity) and enters :func:`repro.tensor.inference_mode` (no
        graph recording, backward tape paused) for the duration.  On exit,
        every submodule's previous ``training`` flag is restored exactly —
        a trainer that evaluates mid-run returns to its prior mode mix.
        """
        previous = [(module, module.training) for module in self.modules()]
        self.train(False)
        try:
            with inference_mode():
                yield self
        finally:
            for module, mode in previous:
                object.__setattr__(module, "training", mode)

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """A name -> array snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = state[name]
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.copy_(value)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        hook = _FORWARD_SCOPE_HOOK
        if hook is None:
            return self.forward(*args, **kwargs)
        with hook(self):
            return self.forward(*args, **kwargs)
