"""Neural-network layer library built on :mod:`repro.tensor`."""

from . import init
from .activations import LeakyReLU, ReLU, Sigmoid, Tanh
from .attention import MultiHeadSelfAttention, scaled_dot_product_attention
from .container import ModuleList, Sequential
from .dropout import Dropout
from .embedding import Embedding
from .linear import Linear, MLP
from .module import Module, Parameter
from .normalization import LayerNorm
from .positional import PositionalEncoding, sinusoidal_encoding
from .rnn import GRU, GRUCell, LSTM, LSTMCell
from .temporal import CausalConv, GatedTemporalConv

__all__ = [
    "CausalConv",
    "Dropout",
    "GatedTemporalConv",
    "Embedding",
    "GRU",
    "GRUCell",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "LSTM",
    "LSTMCell",
    "MLP",
    "Module",
    "ModuleList",
    "MultiHeadSelfAttention",
    "Parameter",
    "PositionalEncoding",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "init",
    "scaled_dot_product_attention",
    "sinusoidal_encoding",
]
