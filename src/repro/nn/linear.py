"""Fully connected layers and small MLP stacks.

``Linear`` applies to the trailing dimension of an input of any rank, which
is the convention used throughout the paper (traffic tensors are
``(batch, time, node, channel)`` and weights act on ``channel``).
"""

from __future__ import annotations

from ..tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b`` on the last axis.

    Parameters
    ----------
    in_features, out_features:
        Sizes of the trailing axis before and after.
    bias:
        Whether to add the learned offset.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(in_features, out_features))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class MLP(Module):
    """A stack of Linear layers with ReLU between them (not after the last).

    This is the "non-linear two-layer fully connected network" the paper uses
    for the regression head, the estimation gate, and the dynamic-feature
    extractor (Sec. 4.2, 5.3, 5.4).
    """

    def __init__(self, dims: list[int], bias: bool = True, final_activation: bool = False) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        self.layers = [Linear(a, b, bias=bias) for a, b in zip(dims[:-1], dims[1:])]
        for i, layer in enumerate(self.layers):
            self.register_module(f"layer{i}", layer)
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1 or self.final_activation:
                x = x.relu()
        return x
