"""Inverted dropout regularisation."""

from __future__ import annotations

from ..tensor import Tensor
from ..utils.seed import get_rng
from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Zero each element with probability ``p`` during training.

    Uses the inverted-dropout convention: surviving activations are scaled by
    ``1/(1-p)`` so evaluation mode is the identity.
    """

    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (get_rng().random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)
