"""Multi-head self-attention (Vaswani et al. 2017; paper Eq. 11).

The inherent model applies attention along the *time* axis of each node's
series; the dynamic graph learner applies it along the *node* axis.  Both use
this module on a batch-first ``(batch, length, dim)`` input.
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor, functional as F
from .linear import Linear
from .module import Module

__all__ = ["MultiHeadSelfAttention", "scaled_dot_product_attention"]


def scaled_dot_product_attention(
    q: Tensor, k: Tensor, v: Tensor, mask: np.ndarray | None = None
) -> Tensor:
    """``softmax(Q K^T / sqrt(d)) V`` on trailing (length, dim) axes.

    ``mask`` (broadcastable to the score shape) marks *disallowed* positions
    with True; their scores are pushed to -1e9 before the softmax.
    """
    dim = q.shape[-1]
    scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(dim))
    if mask is not None:
        penalty = np.where(mask, -1e9, 0.0).astype(np.float32)
        scores = scores + Tensor(penalty)
    return F.softmax(scores, axis=-1) @ v


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with output projection.

    Heads are realised by reshaping the projected ``(batch, length, dim)``
    tensor to ``(batch, heads, length, dim // heads)`` and letting the batched
    matmul broadcast over the head axis.
    """

    def __init__(self, dim: int, num_heads: int = 4) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, bias=False)
        self.w_k = Linear(dim, dim, bias=False)
        self.w_v = Linear(dim, dim, bias=False)
        self.w_o = Linear(dim, dim, bias=False)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        q = self._split_heads(self.w_q(x))
        k = self._split_heads(self.w_k(x))
        v = self._split_heads(self.w_v(x))
        attended = scaled_dot_product_attention(q, k, v, mask=mask)
        return self.w_o(self._merge_heads(attended))
