"""Recurrent layers: GRU (Eq. 10 of the paper) and LSTM (FC-LSTM baseline).

Sequence layout is batch-first ``(batch, time, features)``.  Spatial models
fold the node axis into the batch axis before calling these layers, which is
exactly the "all the nodes are calculated individually in parallel" treatment
described in Sec. 5.2.
"""

from __future__ import annotations

from ..tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["GRUCell", "GRU", "LSTMCell", "LSTM"]


class GRUCell(Module):
    """Single-step gated recurrent unit (Cho et al. 2014; paper Eq. 10)."""

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_z = Parameter(init.xavier_uniform(input_dim, hidden_dim))
        self.u_z = Parameter(init.xavier_uniform(hidden_dim, hidden_dim))
        self.b_z = Parameter(init.zeros(hidden_dim))
        self.w_r = Parameter(init.xavier_uniform(input_dim, hidden_dim))
        self.u_r = Parameter(init.xavier_uniform(hidden_dim, hidden_dim))
        self.b_r = Parameter(init.zeros(hidden_dim))
        self.w_h = Parameter(init.xavier_uniform(input_dim, hidden_dim))
        self.u_h = Parameter(init.xavier_uniform(hidden_dim, hidden_dim))
        self.b_h = Parameter(init.zeros(hidden_dim))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance the hidden state by one time step.

        ``x``: (batch, input_dim); ``h``: (batch, hidden_dim).
        """
        z = (x @ self.w_z + h @ self.u_z + self.b_z).sigmoid()
        r = (x @ self.w_r + h @ self.u_r + self.b_r).sigmoid()
        candidate = (x @ self.w_h + r * (h @ self.u_h + self.b_h)).tanh()
        return (1.0 - z) * h + z * candidate


class GRU(Module):
    """Unrolled GRU over a batch-first sequence.

    Returns the full hidden-state sequence ``(batch, time, hidden)`` and the
    final state — both are needed: the inherent model feeds the sequence to
    self-attention, and its forecast branch continues from the final state.
    """

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.cell = GRUCell(input_dim, hidden_dim)

    def forward(self, x: Tensor, h0: Tensor | None = None) -> tuple[Tensor, Tensor]:
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else Tensor.zeros((batch, self.hidden_dim))
        outputs = []
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), h


class LSTMCell(Module):
    """Single-step LSTM (Hochreiter & Schmidhuber), for the FC-LSTM baseline."""

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # One fused weight per source keeps the op count (and tape) small:
        # gates are [input, forget, cell, output] stacked on the last axis.
        self.w = Parameter(init.xavier_uniform(input_dim, 4 * hidden_dim))
        self.u = Parameter(init.xavier_uniform(hidden_dim, 4 * hidden_dim))
        self.b = Parameter(init.zeros(4 * hidden_dim))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = x @ self.w + h @ self.u + self.b
        d = self.hidden_dim
        i = gates[:, 0 * d : 1 * d].sigmoid()
        f = gates[:, 1 * d : 2 * d].sigmoid()
        g = gates[:, 2 * d : 3 * d].tanh()
        o = gates[:, 3 * d : 4 * d].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Unrolled LSTM over a batch-first sequence."""

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.cell = LSTMCell(input_dim, hidden_dim)

    def forward(
        self,
        x: Tensor,
        state: tuple[Tensor, Tensor] | None = None,
        *,
        return_sequence: bool = True,
    ) -> tuple[Tensor | None, tuple[Tensor, Tensor]]:
        """Unroll over ``x``; returns ``(sequence, (h, c))``.

        Callers that only continue from the final state (the FC-LSTM
        encoder) pass ``return_sequence=False`` and get ``None`` instead of
        the stacked sequence — stacking hidden states nobody reads is dead
        compute the tape audit (rule T003) rejects.
        """
        batch, steps, _ = x.shape
        if state is None:
            h = Tensor.zeros((batch, self.hidden_dim))
            c = Tensor.zeros((batch, self.hidden_dim))
        else:
            h, c = state
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            if return_sequence:
                outputs.append(h)
        sequence = Tensor.stack(outputs, axis=1) if return_sequence else None
        return sequence, (h, c)
