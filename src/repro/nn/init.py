"""Weight initialisation schemes.

All functions return float32 numpy arrays drawn from the library-wide RNG
(:mod:`repro.utils.seed`), so model construction is deterministic after
``set_seed``.
"""

from __future__ import annotations

import math

import numpy as np

from ..utils.seed import get_rng

__all__ = [
    "zeros",
    "ones",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
]


def zeros(*shape: int) -> np.ndarray:
    """All-zero float32 array (biases)."""
    return np.zeros(shape, dtype=np.float32)


def ones(*shape: int) -> np.ndarray:
    """All-one float32 array (LayerNorm gains)."""
    return np.ones(shape, dtype=np.float32)


def uniform(*shape: int, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform values in ``[low, high)``."""
    return get_rng().uniform(low, high, size=shape).astype(np.float32)


def normal(*shape: int, std: float = 0.02) -> np.ndarray:
    """Zero-mean Gaussian values with the given standard deviation."""
    return (get_rng().standard_normal(shape) * std).astype(np.float32)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(*shape: int, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform; the default for linear / attention projections."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return get_rng().uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(*shape: int, gain: float = 1.0) -> np.ndarray:
    """Glorot normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return (get_rng().standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(*shape: int) -> np.ndarray:
    """He uniform; suited to ReLU stacks (backcast/forecast branches)."""
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return get_rng().uniform(-bound, bound, size=shape).astype(np.float32)
