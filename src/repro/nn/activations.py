"""Activation-function modules (for use inside :class:`~repro.nn.Sequential`)."""

from __future__ import annotations

from ..tensor import Tensor
from .module import Module

__all__ = ["ReLU", "Sigmoid", "Tanh", "LeakyReLU"]


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic function: ``1 / (1 + exp(-x))``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class LeakyReLU(Module):
    """ReLU with a small slope for negative inputs."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)
