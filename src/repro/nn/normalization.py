"""Normalisation layers."""

from __future__ import annotations

from ..tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis.

    Used after the self-attention block of the inherent model and in several
    attention-based baselines (GMAN, ASTGCN).
    """

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones(dim))
        self.beta = Parameter(init.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta
