"""Lookup-table embeddings.

The paper's estimation gate and dynamic graph learner rely on four such
tables: time-of-day slots (T^D), day-of-week slots (T^W), and source/target
node embeddings (E^u, E^d) — all "randomly initialized with learnable
parameters" (Sec. 4.2).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Embedding"]


class Embedding(Module):
    """Map integer indices to learned d-dimensional vectors."""

    def __init__(self, num_embeddings: int, dim: int) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.xavier_uniform(num_embeddings, dim))

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return self.weight[idx]
