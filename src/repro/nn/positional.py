"""Sinusoidal positional encoding (paper Eq. 12; not trainable)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .module import Module

__all__ = ["sinusoidal_encoding", "PositionalEncoding"]


def sinusoidal_encoding(length: int, dim: int) -> np.ndarray:
    """Return the (length, dim) table of Eq. 12.

    Even feature indices carry ``sin``, odd indices ``cos``, with geometric
    wavelengths from 2π to 10000·2π.
    """
    positions = np.arange(length, dtype=np.float64)[:, None]
    feature = np.arange(dim, dtype=np.float64)[None, :]
    angles = positions / np.power(10000.0, 2.0 * np.floor(feature / 2.0) / dim)
    table = np.where(feature % 2 == 0, np.sin(angles), np.cos(angles))
    return table.astype(np.float32)


class PositionalEncoding(Module):
    """Add the sinusoidal table to a batch-first ``(batch, time, dim)`` input.

    The table is cached per (length, dim); it carries no parameters, matching
    the paper's "the positional encoding is not trainable".
    """

    def __init__(self, dim: int, max_length: int = 512) -> None:
        super().__init__()
        self.dim = dim
        self._table = sinusoidal_encoding(max_length, dim)

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[1]
        if length > self._table.shape[0]:
            self._table = sinusoidal_encoding(length, self.dim)
        return x + Tensor(self._table[:length])
