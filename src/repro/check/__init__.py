"""Correctness tooling for the autodiff engine and the model zoo.

Three passes, complementing the observability layer (:mod:`repro.obs`) with
enforcement (see ``docs/static-analysis.md``):

* :mod:`repro.check.sanitizers` — runtime autodiff sanitizers:
  :func:`guard_mutations` certifies that no tensor saved for backward was
  mutated in place between forward and backward (version counters), and
  :func:`detect_anomaly` raises on the first NaN/Inf naming the originating
  forward op.  Both follow the PR 1 method-swap pattern: zero overhead when
  not active.
* :mod:`repro.check.analyzer` — static model analysis: runs every registered
  model against dataset presets on a minimal probe batch and reports shape
  contract breaks, float64 drift inside the op graph, and dead parameters
  (registered but unreachable by gradients).
* :mod:`repro.check.linter` — AST linter with repo-specific rules
  (R001–R008): global RNG use, missing ``super().__init__``, unregistered
  parameters, raw ``.data`` writes, wall-clock access outside the shared
  timer, non-atomic writes of persistent state, per-sample Python loops
  over batch indices, and model forwards inside :mod:`repro.serve` outside
  the micro-batcher.

Entry points: ``repro check`` / ``repro lint`` on the command line,
``make lint`` / ``make ci`` in the build, and the functions re-exported
here in code.
"""

from .analyzer import (
    ANALYZER_SCHEMA,
    ModelCheck,
    analyze_model,
    analyze_models,
    format_model_report,
    model_report_dict,
)
from .linter import (
    DEFAULT_LINT_PATHS,
    Finding,
    LINT_RULES,
    format_findings,
    lint_file,
    lint_paths,
)
from .sanitizers import (
    AnomalyError,
    InplaceMutationError,
    SanitizerError,
    detect_anomaly,
    guard_mutations,
    set_event_sink,
)

__all__ = [
    "ANALYZER_SCHEMA",
    "AnomalyError",
    "DEFAULT_LINT_PATHS",
    "Finding",
    "InplaceMutationError",
    "LINT_RULES",
    "ModelCheck",
    "SanitizerError",
    "analyze_model",
    "analyze_models",
    "detect_anomaly",
    "format_findings",
    "format_model_report",
    "guard_mutations",
    "lint_file",
    "lint_paths",
    "model_report_dict",
    "set_event_sink",
]
