"""Correctness tooling for the autodiff engine and the model zoo.

Four passes, complementing the observability layer (:mod:`repro.obs`) with
enforcement (see ``docs/static-analysis.md`` and ``docs/tape-analysis.md``):

* :mod:`repro.check.sanitizers` — runtime autodiff sanitizers:
  :func:`guard_mutations` certifies that no tensor saved for backward was
  mutated in place between forward and backward (version counters), and
  :func:`detect_anomaly` raises on the first NaN/Inf naming the originating
  forward op.  Both follow the PR 1 method-swap pattern: zero overhead when
  not active.
* :mod:`repro.check.analyzer` — static model analysis: runs every registered
  model against dataset presets on a minimal probe batch and reports shape
  contract breaks, float64 drift inside the op graph, and dead parameters
  (registered but unreachable by gradients).
* :mod:`repro.check.tape` — static tape-IR analysis: records one
  forward+backward per (model, preset) into a flat SSA-like program and
  proves lifetime/arena, mutation-hazard, dead-value, and fusion
  properties over it (rules T001–T004).
* :mod:`repro.check.linter` — AST linter with repo-specific rules
  (R001–R010): global RNG use, missing ``super().__init__``, unregistered
  parameters, raw ``.data`` writes, wall-clock access outside the shared
  timer, non-atomic writes of persistent state, per-sample Python loops
  over batch indices, model forwards inside :mod:`repro.serve` outside
  the micro-batcher, and evaluation/serving forwards outside
  ``inference_mode()``.

Entry points: ``repro check`` / ``repro check tape`` / ``repro lint`` on
the command line, ``make lint`` / ``make check-tape`` / ``make ci`` in the
build, and the functions re-exported here in code.
"""

from .analyzer import (
    ANALYZER_SCHEMA,
    ModelCheck,
    analyze_model,
    analyze_models,
    format_model_report,
    model_report_dict,
)
from .linter import (
    DEFAULT_LINT_PATHS,
    Finding,
    LINT_RULES,
    LintRun,
    format_findings,
    lint_file,
    lint_file_report,
    lint_paths,
    lint_paths_report,
)
from .sanitizers import (
    AnomalyError,
    InplaceMutationError,
    SanitizerError,
    detect_anomaly,
    guard_mutations,
    set_event_sink,
)
from .tape import (
    TAPE_RULES,
    TAPE_SCHEMA,
    TapeAudit,
    TapeFinding,
    TapeProgram,
    audit_model,
    audit_models,
    format_tape_report,
    record_program,
    tape_report_dict,
)

__all__ = [
    "ANALYZER_SCHEMA",
    "AnomalyError",
    "DEFAULT_LINT_PATHS",
    "Finding",
    "InplaceMutationError",
    "LINT_RULES",
    "LintRun",
    "ModelCheck",
    "SanitizerError",
    "TAPE_RULES",
    "TAPE_SCHEMA",
    "TapeAudit",
    "TapeFinding",
    "TapeProgram",
    "analyze_model",
    "analyze_models",
    "audit_model",
    "audit_models",
    "detect_anomaly",
    "format_findings",
    "format_model_report",
    "format_tape_report",
    "guard_mutations",
    "lint_file",
    "lint_file_report",
    "lint_paths",
    "lint_paths_report",
    "model_report_dict",
    "record_program",
    "set_event_sink",
    "tape_report_dict",
]
