"""Static model analysis: shape contract, dtype drift, dead parameters.

:func:`analyze_models` instantiates every registered neural model against
dataset presets and certifies three properties per (model, dataset) pair —
without training, on a minimal probe batch, in seconds for the whole zoo:

* **shape contract** — the forward output must be ``(batch, horizon,
  num_nodes, channels)``, the invariant every trainer, metric and benchmark
  in this repository assumes;
* **dtype discipline** — all parameters are float32 and no op inside the
  forward/backward graph computes in float64.  The engine silently downcasts
  float64 results at tensor creation (:class:`repro.tensor.Tensor`), so
  float64 intermediates never surface as wrong dtypes — they surface as 2×
  memory traffic.  The analyzer intercepts op results *before* that downcast
  by swapping ``Tensor._make`` while the probe runs;
* **dead parameters** — parameters that are registered (so the optimizer
  updates them and checkpoints store them) but unreachable by gradients from
  the output.  Dead parameters silently inflate model size claims and
  invalidate "number of parameters" comparisons across baselines.

Reports are both machine-readable (:func:`model_report_dict`, schema
:data:`ANALYZER_SCHEMA`) and human-readable (:func:`format_model_report`);
``repro check`` is the CLI front end and exits non-zero on findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import PRESETS, build_forecasting_data, load_dataset
from ..models import NEURAL, build_model, canonical_model
from ..nn.module import Module
from ..tensor.tensor import Tensor
from ..utils.seed import set_seed

__all__ = [
    "ANALYZER_SCHEMA",
    "ModelCheck",
    "analyze_model",
    "analyze_models",
    "format_model_report",
    "model_report_dict",
]

ANALYZER_SCHEMA = "repro.check.models/v1"


@dataclass
class ModelCheck:
    """The analyzer's verdict for one (model, dataset) pair."""

    model: str
    dataset: str
    num_parameters: int
    output_shape: tuple[int, ...]
    expected_shape: tuple[int, ...]
    dead_parameters: list[str] = field(default_factory=list)
    dtype_violations: list[str] = field(default_factory=list)
    float64_ops: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the pair passed every check."""
        return not self.findings()

    def findings(self) -> list[str]:
        """Human-readable description of every violated property."""
        found = []
        if self.output_shape != self.expected_shape:
            found.append(
                f"output shape {self.output_shape} breaks the "
                f"(batch, horizon, nodes, channels) contract {self.expected_shape}"
            )
        for name in self.dead_parameters:
            found.append(f"dead parameter {name!r}: registered but unreachable by gradients")
        for violation in self.dtype_violations:
            found.append(f"dtype violation: {violation}")
        for op in self.float64_ops:
            found.append(f"float64 compute: {op}")
        return found

    def to_dict(self) -> dict:
        """JSON-ready mapping for the machine-readable report."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "num_parameters": self.num_parameters,
            "output_shape": list(self.output_shape),
            "expected_shape": list(self.expected_shape),
            "dead_parameters": self.dead_parameters,
            "dtype_violations": self.dtype_violations,
            "float64_ops": self.float64_ops,
            "ok": self.ok,
        }


def analyze_model(
    model: Module,
    *,
    name: str,
    dataset: str,
    x: np.ndarray,
    tod: np.ndarray,
    dow: np.ndarray,
    horizon: int,
) -> ModelCheck:
    """Run the three checks on one constructed model with one probe batch.

    The model is put in eval mode, run forward once with op-level float64
    interception and module-scope tracking, then backpropagated from
    ``output.sum()`` to establish gradient reachability of every parameter.
    """
    check = ModelCheck(
        model=name,
        dataset=dataset,
        num_parameters=model.num_parameters(),
        output_shape=(),
        expected_shape=(x.shape[0], horizon, x.shape[2], x.shape[3]),
    )
    for param_name, param in model.named_parameters():
        if param.dtype != np.float32:
            check.dtype_violations.append(f"parameter {param_name!r} is {param.dtype}")

    # Intercept op results before Tensor.__init__'s float64 downcast, and
    # track which module scope was executing, via temporary swaps.
    float64_hits: dict[tuple[str, str], None] = {}
    scope_stack: list[str] = []
    original_call = Module.__call__
    original_make = Tensor.__dict__["_make"]
    original_make_fn = original_make.__func__

    def tracking_call(module, *args, **kwargs):
        scope_stack.append(type(module).__name__)
        try:
            return original_call(module, *args, **kwargs)
        finally:
            scope_stack.pop()

    def checking_make(data, parents, backward, op):
        if getattr(data, "dtype", None) == np.float64:
            scope = scope_stack[-1] if scope_stack else "<top>"
            float64_hits[(op, scope)] = None
        return original_make_fn(data, parents, backward, op)

    Module.__call__ = tracking_call
    Tensor._make = staticmethod(checking_make)
    try:
        model.eval()
        model.zero_grad()
        output = model(x, tod, dow)
        check.output_shape = tuple(output.shape)
        if np.issubdtype(output.dtype, np.floating) and output.dtype != np.float32:
            check.dtype_violations.append(f"forward output is {output.dtype}")
        output.sum().backward()
    finally:
        Module.__call__ = original_call
        Tensor._make = original_make

    check.float64_ops = [f"op '{op}' in scope '{scope}'" for op, scope in sorted(float64_hits)]
    check.dead_parameters = [
        param_name
        for param_name, param in model.named_parameters()
        if param.grad is None
    ]
    model.zero_grad()
    return check


def analyze_models(
    models: list[str] | None = None,
    datasets: list[str] | None = None,
    *,
    num_nodes: int = 6,
    num_steps: int = 420,
    hidden: int = 8,
    layers: int = 1,
    batch_size: int = 2,
    seed: int = 0,
) -> list[ModelCheck]:
    """Analyze registered neural models against dataset presets.

    Defaults cover the full grid — every neural model × every preset — at
    probe size (6 nodes, 420 steps, batch 2), which keeps the whole sweep in
    the seconds range.  Statistical models carry no tensor graph and are
    skipped (requesting one raises ``ValueError``).
    """
    names = [canonical_model(name) for name in models] if models else list(NEURAL)
    for name in names:
        if name not in NEURAL:
            raise ValueError(f"{name} is a statistical model: nothing to analyze")
    checks = []
    for dataset_name in datasets or list(PRESETS):
        data = build_forecasting_data(
            load_dataset(dataset_name, num_nodes=num_nodes, num_steps=num_steps)
        )
        batch = next(iter(data.loader("train", batch_size=batch_size, shuffle=False)))
        horizon = data.windows.horizon
        for name in names:
            set_seed(seed)
            model, _ = build_model(name, data, hidden=hidden, layers=layers)
            checks.append(
                analyze_model(
                    model, name=name, dataset=dataset_name,
                    x=batch.x, tod=batch.tod, dow=batch.dow, horizon=horizon,
                )
            )
    return checks


def model_report_dict(checks: list[ModelCheck]) -> dict:
    """Machine-readable report (schema :data:`ANALYZER_SCHEMA`)."""
    return {
        "schema": ANALYZER_SCHEMA,
        "generated_by": "repro check",
        "checks": [check.to_dict() for check in checks],
        "findings_total": sum(len(check.findings()) for check in checks),
    }


def format_model_report(checks: list[ModelCheck]) -> str:
    """Human-readable table plus one line per finding."""
    lines = [f"{'model':<14} {'dataset':<14} {'params':>8} {'output':<18} {'status'}"]
    for check in checks:
        status = "ok" if check.ok else f"{len(check.findings())} finding(s)"
        lines.append(
            f"{check.model:<14} {check.dataset:<14} {check.num_parameters:>8,} "
            f"{str(check.output_shape):<18} {status}"
        )
    for check in checks:
        for finding in check.findings():
            lines.append(f"  {check.model} @ {check.dataset}: {finding}")
    total = sum(len(check.findings()) for check in checks)
    lines.append(f"check: {total} finding(s)")
    return "\n".join(lines)
