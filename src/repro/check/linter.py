"""AST linter with repo-specific rules the generic tools cannot express.

Eleven rules (R001–R011), each encoding an invariant this codebase relies on
for reproducibility or correctness — see ``docs/static-analysis.md`` for the
full rationale table:

========  ==============================================================
R001      no global numpy RNG (``np.random.*`` module state, or an
          unseeded ``np.random.default_rng()``) — randomness must flow
          from :mod:`repro.utils.seed` so runs are reproducible
R002      every ``nn.Module`` subclass that defines ``__init__`` must
          call ``super().__init__()`` — otherwise the registration dicts
          do not exist and parameters silently vanish
R003      learnable arrays in a Module ``__init__`` must be wrapped in
          :class:`~repro.nn.Parameter` — a bare ``init.*`` result or a
          ``Tensor(..., requires_grad=True)`` is invisible to
          ``parameters()``, the optimizer and ``state_dict()``
R004      no writes to ``.data`` outside the optimizer package and the
          engine itself — use :meth:`~repro.tensor.Tensor.copy_`, which
          bumps the version counter the mutation sanitizer checks
R005      no direct wall-clock reads (``time.time()`` etc.) outside
          :mod:`repro.utils.timer` — profiles and telemetry must share
          one clock
R006      persistent state must be written atomically — no raw
          ``np.savez*`` outside :mod:`repro.utils.atomic`, and no
          truncating ``open(..., "w")`` inside the state-persisting
          modules; a crash mid-write must never corrupt a checkpoint
R007      no per-sample Python loops over batch indices inside the data
          and training packages — batches must be assembled with one
          vectorized gather (fancy indexing), not a ``for i in
          indices`` / ``range(num_samples)`` loop, which dominates the
          train-step time (see BENCH_train_step.json)
R008      no model forwards inside :mod:`repro.serve` outside the
          micro-batcher — every serving-path forward must flow through
          ``microbatch.py`` so requests coalesce into one batched pass
          and the throughput gate in ``BENCH_serve.json`` stays honest
R009      no model forwards in the sharded serving modules (router,
          transport, shard, loadgen) — requests must cross the
          engine/transport seam as ops and forwards stay inside each
          worker's micro-batcher; also catches invoking a freshly
          ``instantiate()``-d model directly, which R008's name
          heuristic cannot see
R010      model forwards in the evaluation/serving entry points
          (``evaluate_split``/``predict_split`` and the serving
          micro-batcher) must run under ``inference_mode()`` (or
          ``Module.inference()``) — an unguarded forward there records
          graph nodes and pollutes the backward-tape cache (the PR 5
          tape-hygiene invariant)
R011      every event class in :mod:`repro.data.events` must declare an
          explicit ``seed``/``rng`` field, and the module must not draw
          from an argless ``default_rng()`` — scenario schedules are
          replayed for conditional evaluation, so an event with hidden
          randomness can never reproduce the stream it perturbed
========  ==============================================================

Suppression: append ``# lint: disable`` (all rules) or
``# lint: disable=R004`` (one rule) to the offending line.  Suppressed
findings are not silently dropped: :class:`LintRun` carries them so
``repro lint`` can report the suppression count while still exiting 0.

The linter parses files with :mod:`ast` — it never imports them — so it is
safe on any tree, and runs over :data:`DEFAULT_LINT_PATHS` in well under a
second.  Entry points: :func:`lint_paths`, ``repro lint``, ``make lint``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DEFAULT_LINT_PATHS",
    "Finding",
    "LINT_RULES",
    "LintRun",
    "format_findings",
    "lint_file",
    "lint_file_report",
    "lint_paths",
    "lint_paths_report",
]

DEFAULT_LINT_PATHS = ("src", "examples", "benchmarks")

LINT_RULES = {
    "R001": "use the seeded RNG from repro.utils.seed, not global numpy random state",
    "R002": "nn.Module subclass __init__ must call super().__init__()",
    "R003": "learnable arrays must be registered as nn.Parameter",
    "R004": "no .data writes outside optim/ and the engine; use Tensor.copy_",
    "R005": "use repro.utils.timer.now(), not direct wall-clock reads",
    "R006": "persist state via repro.utils.atomic, not raw np.savez/open-for-write",
    "R007": "no per-sample Python loops over batch indices; use one vectorized gather",
    "R008": "no model forwards in repro.serve outside the micro-batcher",
    "R009": "no model forwards in the sharded serving modules; cross the transport as ops",
    "R010": "evaluation/serving model forwards must run under inference_mode()",
    "R011": "event classes must declare an explicit seed/rng field; no argless default_rng()",
}

# Paths (posix, repo-relative prefixes) where a rule legitimately does not
# apply: the optimizer and the engine own .data (R004); the shared timer is
# the one place allowed to read the wall clock (R005).
_DATA_WRITE_ALLOWED = ("src/repro/optim/", "src/repro/tensor/tensor.py")
_WALL_CLOCK_ALLOWED = ("src/repro/utils/timer.py",)

# R006: atomic persistence.  np.savez* may only appear inside the atomic
# write helper; the modules that persist state (checkpoints, datasets,
# telemetry) must additionally not truncate files with open(..., "w") —
# append-mode logs and reads are fine.
_ATOMIC_WRITE_ALLOWED = ("src/repro/utils/atomic.py",)
_PERSIST_STATE_PATHS = (
    "src/repro/utils/checkpoint.py",
    "src/repro/data/io.py",
    "src/repro/obs/sinks.py",
)

# np.random attributes that touch the module-global RandomState.
_GLOBAL_RNG_ATTRS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "standard_normal",
    "binomial", "poisson", "beta", "gamma", "exponential", "get_state",
    "set_state", "RandomState",
})

_WALL_CLOCK_FNS = frozenset({"time", "perf_counter", "monotonic", "process_time"})

# R007 applies only where batches are assembled and consumed — the hot paths
# the train-step benchmark gates.
_PER_SAMPLE_LOOP_PATHS = ("src/repro/data/", "src/repro/training/")

# Iterable names that denote per-sample batch indices.
_BATCH_INDEX_NAMES = frozenset({"indices", "idx", "idxs", "batch_indices", "sample_indices"})

# R008: inside the serving package every model forward must go through the
# micro-batcher, so single-request forwards sprinkled elsewhere in the
# package cannot silently bypass request coalescing.
_SERVE_PATHS = ("src/repro/serve/",)
_SERVE_FORWARD_ALLOWED = ("src/repro/serve/microbatch.py",)
_SERVE_MODEL_NAMES = frozenset({"model", "servable"})

# R009: the sharded serving modules sit on the caller side of the
# engine/transport seam and must never run a forward themselves — not even
# one R008's name heuristic misses, like calling an ``instantiate()`` result
# in place.  Reported instead of (not alongside) R008 in these files.
_SCALE_PATHS = (
    "src/repro/serve/router.py",
    "src/repro/serve/transport.py",
    "src/repro/serve/shard.py",
    "src/repro/serve/loadgen.py",
    "src/repro/serve/supervise.py",
)
_INSTANTIATE_NAMES = frozenset({"instantiate", "instantiate_fresh"})

# R010: the inference entry points — split evaluation/prediction and the
# serving micro-batcher (the one sanctioned forward site in repro.serve).
# Forwards here must sit inside `with inference_mode():` (or the
# `Module.inference()` shorthand) so no graph nodes are recorded and the
# backward-tape cache stays clean.
_INFERENCE_REQUIRED_PATHS = (
    "src/repro/training/evaluation.py",
    "src/repro/serve/microbatch.py",
)
_INFERENCE_CONTEXT_NAMES = frozenset({"inference_mode", "inference", "no_grad"})

# R011: the event model.  Scenario events are seeded and replayed (the same
# schedule must perturb the stream and build its ground-truth effect masks),
# so every concrete event class must carry its randomness explicitly — a
# declared ``seed``/``rng`` field — and the module may never reach for an
# argless ``default_rng()``.
_EVENT_PATHS = ("src/repro/data/events.py",)
_EVENT_BASE_NAMES = frozenset({"Event"})
_EVENT_SEED_FIELDS = frozenset({"seed", "rng"})

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable(?:=(?P<rules>[\w,\s]+))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line: RULE message`` — the one-line report form."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _suppressed_rules(source_lines: list[str]) -> dict[int, set[str] | None]:
    """Map line number -> suppressed rule set (``None`` = all rules)."""
    suppressed: dict[int, set[str] | None] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            rules = match.group("rules")
            suppressed[lineno] = (
                {r.strip() for r in rules.split(",")} if rules else None
            )
    return suppressed


def _is_np_random(node: ast.expr) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _is_module_base(base: ast.expr) -> bool:
    """True when a class base names the nn ``Module`` class."""
    if isinstance(base, ast.Name):
        return base.id == "Module"
    return isinstance(base, ast.Attribute) and base.attr == "Module"


def _calls_super_init(init_fn: ast.FunctionDef) -> bool:
    for node in ast.walk(init_fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


def _is_learnable_value(node: ast.expr) -> bool:
    """True when an expression builds a learnable array outside Parameter.

    Matches calls to the initializers (``init.xavier_uniform(...)`` etc.)
    and explicit ``Tensor(..., requires_grad=True)``; conditional
    expressions are checked on both branches.
    """
    if isinstance(node, ast.IfExp):
        return _is_learnable_value(node.body) or _is_learnable_value(node.orelse)
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "init":
        return True
    if isinstance(func, ast.Name) and func.id == "Tensor":
        return any(
            kw.arg == "requires_grad"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._data_write_allowed = any(path.startswith(p) for p in _DATA_WRITE_ALLOWED)
        self._wall_clock_allowed = any(path.startswith(p) for p in _WALL_CLOCK_ALLOWED)
        self._atomic_write_allowed = any(path.startswith(p) for p in _ATOMIC_WRITE_ALLOWED)
        self._persists_state = any(path.startswith(p) for p in _PERSIST_STATE_PATHS)
        self._batch_loop_scoped = any(path.startswith(p) for p in _PER_SAMPLE_LOOP_PATHS)
        self._serve_forward_scoped = any(
            path.startswith(p) for p in _SERVE_PATHS
        ) and not any(path.startswith(p) for p in _SERVE_FORWARD_ALLOWED)
        self._scale_scoped = path in _SCALE_PATHS
        self._inference_required = path in _INFERENCE_REQUIRED_PATHS
        self._inference_depth = 0
        self._event_scoped = path in _EVENT_PATHS

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, rule, message))

    # -- R001 ----------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_np_random(node.value) and node.attr in _GLOBAL_RNG_ATTRS:
            self._report(
                node, "R001",
                f"np.random.{node.attr} uses global RNG state; "
                "use repro.utils.seed.get_rng()/spawn_rng()",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # R001: unseeded default_rng() — reproducible only by accident.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "default_rng"
            and _is_np_random(node.func.value)
            and not node.args
            and not node.keywords
        ):
            self._report(
                node, "R001",
                "unseeded np.random.default_rng(); "
                "use repro.utils.seed.get_rng()/spawn_rng()",
            )
        # R005: direct wall-clock reads.
        if (
            not self._wall_clock_allowed
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _WALL_CLOCK_FNS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            self._report(
                node, "R005",
                f"time.{node.func.attr}() bypasses the shared clock; "
                "use repro.utils.timer.now()",
            )
        # R006: raw np.savez* anywhere outside the atomic-write helper.
        if (
            not self._atomic_write_allowed
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("savez", "savez_compressed")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("np", "numpy")
        ):
            self._report(
                node, "R006",
                f"np.{node.func.attr} is not crash-safe; "
                "use repro.utils.atomic.atomic_savez",
            )
        # R008/R009: model forwards inside repro.serve outside the
        # micro-batcher.  The sharded serving modules get the stricter,
        # more specific R009 instead of R008.
        if self._serve_forward_scoped and self._is_model_forward(node):
            if self._scale_scoped:
                self._report(
                    node, "R009",
                    "model forward on the caller side of the transport seam; "
                    "send a forecast op to the worker instead",
                )
            else:
                self._report(
                    node, "R008",
                    "model forward outside the micro-batcher; "
                    "submit requests through repro.serve.MicroBatcher",
                )
        # R009: invoking a freshly instantiated model in place —
        # bundle.instantiate()(x) — which the name heuristic cannot see.
        if self._scale_scoped and self._is_instantiate_forward(node):
            self._report(
                node, "R009",
                "calling an instantiate() result runs a forward here; "
                "forwards belong inside the worker's micro-batcher",
            )
        # R010: forwards in the inference entry points must be guarded.
        if (
            self._inference_required
            and self._inference_depth == 0
            and self._is_model_forward(node)
        ):
            self._report(
                node, "R010",
                "model forward in an inference entry point outside "
                "inference_mode(); wrap it in `with inference_mode():` "
                "(or Module.inference())",
            )
        # R011: an argless default_rng() inside the event module draws from
        # OS entropy — the schedule can never be replayed.  (R001 catches
        # the np.random-qualified spelling; this catches the bare import.)
        if (
            self._event_scoped
            and isinstance(node.func, ast.Name)
            and node.func.id == "default_rng"
            and not node.args
            and not node.keywords
        ):
            self._report(
                node, "R011",
                "argless default_rng() in the event module; "
                "draw from the event's declared seed field",
            )
        # R006: truncating open() inside the state-persisting modules.
        if (
            self._persists_state
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and self._opens_for_write(node)
        ):
            self._report(
                node, "R006",
                "open-for-write truncates on crash; "
                "use repro.utils.atomic.atomic_write",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_model_forward(node: ast.Call) -> bool:
        """True when a call invokes a model directly (R008).

        Matches ``model(...)`` / ``servable(...)`` calls through a bare name
        or a terminal attribute (``self.model(...)``), plus any explicit
        ``something.forward(...)`` invocation.
        """
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _SERVE_MODEL_NAMES
        if isinstance(func, ast.Attribute):
            return func.attr in _SERVE_MODEL_NAMES or func.attr == "forward"
        return False

    @staticmethod
    def _is_instantiate_forward(node: ast.Call) -> bool:
        """True for ``bundle.instantiate(...)(x)``-shaped calls (R009)."""
        func = node.func
        return (
            isinstance(func, ast.Call)
            and isinstance(func.func, ast.Attribute)
            and func.func.attr in _INSTANTIATE_NAMES
        )

    @staticmethod
    def _opens_for_write(node: ast.Call) -> bool:
        """True when an ``open`` call passes a mode string containing ``w``."""
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and "w" in mode.value
        )

    # -- R010 ----------------------------------------------------------
    @staticmethod
    def _is_inference_context(expr: ast.expr) -> bool:
        """True for ``inference_mode()`` / ``model.inference()`` / ``no_grad()``."""
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        if isinstance(func, ast.Name):
            return func.id in _INFERENCE_CONTEXT_NAMES
        return isinstance(func, ast.Attribute) and func.attr in _INFERENCE_CONTEXT_NAMES

    def _visit_with(self, node) -> None:
        guarded = self._inference_required and any(
            self._is_inference_context(item.context_expr) for item in node.items
        )
        if guarded:
            self._inference_depth += 1
        self.generic_visit(node)
        if guarded:
            self._inference_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- R011 ----------------------------------------------------------
    @staticmethod
    def _is_event_base(base: ast.expr) -> bool:
        """True when a class base names the events ``Event`` base class."""
        if isinstance(base, ast.Name):
            return base.id in _EVENT_BASE_NAMES
        return isinstance(base, ast.Attribute) and base.attr in _EVENT_BASE_NAMES

    @staticmethod
    def _declares_seed_field(node: ast.ClassDef) -> bool:
        """True when the class declares a ``seed``/``rng`` dataclass field
        or takes one as an ``__init__`` parameter."""
        for item in node.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and item.target.id in _EVENT_SEED_FIELDS
            ):
                return True
            if isinstance(item, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id in _EVENT_SEED_FIELDS
                for t in item.targets
            ):
                return True
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                args = item.args
                names = [a.arg for a in args.args + args.kwonlyargs]
                if any(name in _EVENT_SEED_FIELDS for name in names):
                    return True
        return False

    # -- R002 / R003 ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if (
            self._event_scoped
            and any(self._is_event_base(base) for base in node.bases)
            and not self._declares_seed_field(node)
        ):
            self._report(
                node, "R011",
                f"event class {node.name} declares no explicit seed/rng "
                "field; scenario events must carry their randomness so "
                "schedules replay bit-identically",
            )
        if any(_is_module_base(base) for base in node.bases):
            init_fn = next(
                (
                    item for item in node.body
                    if isinstance(item, ast.FunctionDef) and item.name == "__init__"
                ),
                None,
            )
            if init_fn is not None:
                if not _calls_super_init(init_fn):
                    self._report(
                        init_fn, "R002",
                        f"{node.name}.__init__ never calls super().__init__(); "
                        "parameter/submodule registration will not work",
                    )
                self._check_parameter_registration(node.name, init_fn)
        self.generic_visit(node)

    def _check_parameter_registration(self, class_name: str, init_fn: ast.FunctionDef) -> None:
        for stmt in ast.walk(init_fn):
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in stmt.targets
            ):
                continue
            if _is_learnable_value(stmt.value):
                self._report(
                    stmt, "R003",
                    f"learnable array assigned raw in {class_name}.__init__; "
                    "wrap it in nn.Parameter so it is registered",
                )

    # -- R007 ----------------------------------------------------------
    @staticmethod
    def _is_batch_index_iterable(node: ast.expr) -> bool:
        """True when a loop iterates per-sample over batch indices.

        Matches iteration over a name/attribute called ``indices`` (and
        friends) and ``range(...)`` driven by ``num_samples``.
        """
        if isinstance(node, ast.Name) and node.id in _BATCH_INDEX_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BATCH_INDEX_NAMES:
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"
        ):
            for arg in node.args:
                terminal = (
                    arg.attr if isinstance(arg, ast.Attribute)
                    else arg.id if isinstance(arg, ast.Name)
                    else None
                )
                if terminal == "num_samples":
                    return True
        return False

    def _check_per_sample_loop(self, iter_node: ast.expr, report_node: ast.AST) -> None:
        if self._batch_loop_scoped and self._is_batch_index_iterable(iter_node):
            self._report(
                report_node, "R007",
                "per-sample Python loop over batch indices; "
                "assemble the batch with one vectorized gather (fancy indexing)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_per_sample_loop(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_per_sample_loop(generator.iter, node)
        self.generic_visit(node)

    visit_GeneratorExp = _visit_comprehension
    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- R004 ----------------------------------------------------------
    def _is_data_write_target(self, target: ast.expr) -> bool:
        # `self.data = ...` is a container storing an attribute that happens
        # to be called "data" (e.g. Trainer.data), not a tensor mutation —
        # every real violation writes through a tensor-valued name instead
        # (`param.data`, `target.data`, ...).
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "data"
            and not (isinstance(target.value, ast.Name) and target.value.id == "self")
        ):
            return True
        # t.data[...] = x — the slice write the version counter cannot see.
        return (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "data"
            and not (
                isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._data_write_allowed:
            for target in node.targets:
                if self._is_data_write_target(target):
                    self._report(
                        node, "R004",
                        ".data write bypasses the version counter; use Tensor.copy_",
                    )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._data_write_allowed and self._is_data_write_target(node.target):
            self._report(
                node, "R004",
                "in-place .data update bypasses the version counter; use Tensor.copy_",
            )
        self.generic_visit(node)


@dataclass(frozen=True)
class LintRun:
    """Result of a lint pass: surviving findings plus what was suppressed.

    ``findings`` decide the exit code; ``suppressed`` exist so a run where
    every finding carries a ``# lint: disable`` still *reports* how much
    was waved through instead of silently printing "clean".
    """

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]

    @property
    def ok(self) -> bool:
        """True when no finding survived suppression (exit code 0)."""
        return not self.findings


def lint_file_report(
    path: str | Path, *, relative_to: str | Path | None = None
) -> LintRun:
    """Lint one python file, keeping suppressed findings on the side.

    ``relative_to`` controls the repo-relative path used for reports and the
    R004/R005/R006 allowlists (defaults to the path as given).
    """
    path = Path(path)
    rel = path.relative_to(relative_to).as_posix() if relative_to else path.as_posix()
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    visitor = _Visitor(rel)
    visitor.visit(tree)
    suppressions = _suppressed_rules(source.splitlines())
    kept: list[Finding] = []
    silenced: list[Finding] = []
    for finding in visitor.findings:
        rules = suppressions.get(finding.line, ())
        if rules is None or (rules and finding.rule in rules):
            silenced.append(finding)
        else:
            kept.append(finding)
    return LintRun(findings=tuple(kept), suppressed=tuple(silenced))


def lint_file(path: str | Path, *, relative_to: str | Path | None = None) -> list[Finding]:
    """Lint one python file; returns surviving (non-suppressed) findings."""
    return list(lint_file_report(path, relative_to=relative_to).findings)


def lint_paths_report(
    paths: tuple[str, ...] | list[str] = DEFAULT_LINT_PATHS,
    *,
    root: str | Path = ".",
) -> LintRun:
    """Lint every ``*.py`` file under ``paths``, with suppression stats.

    Missing paths are skipped, so the default set works from any checkout.
    Both finding lists come back sorted by (path, line, rule).
    """
    root = Path(root)
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for entry in paths:
        base = root / entry
        if base.is_file():
            files = [base]
        elif base.is_dir():
            files = sorted(base.rglob("*.py"))
        else:
            continue
        for file in files:
            run = lint_file_report(file, relative_to=root)
            findings.extend(run.findings)
            suppressed.extend(run.suppressed)
    key = lambda f: (f.path, f.line, f.rule)  # noqa: E731
    return LintRun(
        findings=tuple(sorted(findings, key=key)),
        suppressed=tuple(sorted(suppressed, key=key)),
    )


def lint_paths(
    paths: tuple[str, ...] | list[str] = DEFAULT_LINT_PATHS,
    *,
    root: str | Path = ".",
) -> list[Finding]:
    """Lint every ``*.py`` file under ``paths`` (relative to ``root``)."""
    return list(lint_paths_report(paths, root=root).findings)


def format_findings(findings: list[Finding], *, suppressed: int = 0) -> str:
    """Human-readable report: one line per finding plus a summary line.

    ``suppressed`` is the count of findings silenced by ``# lint:
    disable`` comments; it is always mentioned in the summary when
    non-zero, so a fully suppressed run does not masquerade as clean.
    """
    note = f", {suppressed} suppressed" if suppressed else ""
    if not findings:
        return f"lint: clean{note}" if note else "lint: clean"
    lines = [finding.format() for finding in findings]
    lines.append(f"lint: {len(findings)} finding(s){note}")
    return "\n".join(lines)
